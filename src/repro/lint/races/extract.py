"""Reduce one parsed file to a :class:`RaceFileSummary`.

Same contract as the dataflow/effects extractors it reuses helpers
from: extraction is file-local (a pure function of path, module and
source, so the result can be content-hash cached), and the precision
stance is *prefer silence over guessing* — an access on a plain local
is not shared state, an unresolvable callback produces a registration
with an empty target, a computed delay is ``unknown`` rather than a
guessed coincidence class.

What is collected per function:

- **accesses** — shared-state reads and writes (``self``/param/
  closure/global roots), each tagged with its yield-delimited segment,
  a commutativity verdict for writes (exact integer accumulation,
  extremum folds and set membership commute; float accumulation,
  sequence mutation and plain stores do not), and a use class for
  reads (control flow, recorded metric, iteration, plain value);
- **registrations** — every same-instant scheduling action: timer
  registrations (``sim.schedule``), process spawns, zero-delay event
  triggers/interrupts, raw wakeup pushes, and a sim process's own
  ``yield Timeout(d)`` self-continuation, each with a normalized
  delay class and a best-effort resolved callback target.

Nested ``def``s (the ``spawn_kv_faults``-style ``_process`` idiom) are
summarized as their own functions; names they capture from the
enclosing scope are classified as param-kind shared state, because a
closure over an enclosing function's parameter aliases exactly what
that parameter aliases.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.dataflow.extract import (
    _NameResolver,
    _own_nodes,
    _parent_map,
    _snippet,
    build_aliases,
)
from repro.lint.effects.extract import (
    MUTATING_METHOD_TAILS,
    _float_evidence,
    _names_stored,
    _target_root,
    classify_iter,
)
from repro.lint.effects.model import (
    ITER_SORTED,
    MUT_GLOBAL,
    MUT_PARAM,
    MUT_SELF,
)
from repro.lint.races.model import (
    Access,
    COMM_EXTREMUM,
    COMM_INT_ACCUM,
    COMM_SET,
    FunctionAccesses,
    ORDERED_CALL,
    ORDERED_DICT,
    ORDERED_FLOAT,
    ORDERED_SEQ,
    ORDERED_STORE,
    RaceFileSummary,
    Registration,
    USE_CONTROL,
    USE_ITERATION,
    USE_METRIC,
    USE_VALUE,
)
from repro.lint.rules.base import dotted_name

#: Yielded command constructors that mark a generator as a sim process.
SIM_COMMAND_TAILS: Set[str] = {"Timeout", "Wait", "Acquire", "Release"}

#: Call tails that register work for a (possibly shared) instant.
#: Maps tail -> (op, delay_arg_position, delay_keyword, target_arg_position).
_REGISTRATION_TAILS: Dict[str, Tuple[str, Optional[int], str, Optional[int]]] = {
    "schedule": ("schedule", 0, "delay", 1),
    "spawn": ("spawn", None, "", 0),
    "trigger": ("trigger", 2, "delay", 0),
    "interrupt": ("interrupt", None, "", None),
    "push_wakeup": ("wakeup", None, "", None),
}

#: Method tails whose receiver mutation commutes with a concurrent
#: copy of itself (membership / monotone counting).
_COMMUTING_METHOD_TAILS: Set[str] = {"add", "discard", "observe", "observe_many"}

#: Method tails that encode position/insertion order in the receiver.
_SEQ_METHOD_TAILS: Set[str] = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "sort",
    "reverse",
    "appendleft",
    "popleft",
    "push",
    "record",
    "submit",
}

#: Method tails that insert/overwrite dict keys.
_DICT_METHOD_TAILS: Set[str] = {"update", "setdefault"}

#: Call tails that sink a read into a recorded metric.
_METRIC_SINK_TAILS: Set[str] = {
    "record",
    "observe",
    "observe_many",
    "add",
    "set",
    "inc",
}

#: Every method tail that marks its receiver as written (union of the
#: effects layer's set and the order-classified sets above — the
#: effects set misses e.g. ``record``/``submit``, ours classifies
#: them).
_ALL_MUTATING_TAILS: Set[str] = (
    MUTATING_METHOD_TAILS
    | _COMMUTING_METHOD_TAILS
    | _SEQ_METHOD_TAILS
    | _DICT_METHOD_TAILS
)

#: Wrappers unwrapped when locating the container a loop iterates.
_ITER_UNWRAP_TAILS: Set[str] = {
    "enumerate",
    "list",
    "tuple",
    "reversed",
    "iter",
    "sorted",
}


def _chain_parts(node: ast.AST) -> Tuple[str, str]:
    """(root, head) of an attribute/subscript chain.

    ``self.stats.hits[k]`` -> ("self", "stats"); ``table[k]`` ->
    ("table", ""); non-chains -> ("", "").
    """
    parts: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return "", ""
    return node.id, (parts[-1] if parts else "")


def _delay_class(node: Optional[ast.AST]) -> str:
    """Normalize a delay expression into a coincidence class."""
    if node is None:
        return "unknown"
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = node.operand
        if isinstance(inner, ast.Constant) and isinstance(inner.value, (int, float)):
            return f"const:{-float(inner.value)!r}"
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        # A literal constant, not a computed float: exact zero is the
        # intended classification.  # repro-lint: disable=RL006
        if float(node.value) == 0.0:
            return "zero"
        return f"const:{float(node.value)!r}"
    if isinstance(node, (ast.Name, ast.Attribute)):
        return f"name:{_snippet(node)}"
    return "unknown"


def _iter_container(node: ast.AST) -> ast.AST:
    """Unwrap wrappers/views down to the container a loop iterates."""
    while True:
        if (
            isinstance(node, ast.Call)
            and dotted_name(node.func).split(".")[-1] in _ITER_UNWRAP_TAILS
            and node.args
        ):
            node = node.args[0]
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "values", "keys")
        ):
            node = node.func.value
            continue
        return node


class _RacesExtractor:
    """Collects access + registration facts for one function body."""

    def __init__(
        self,
        resolver: _NameResolver,
        qualname: str,
        node: Optional[ast.AST],
        param_names: Sequence[str],
        is_method: bool,
        class_ctx: str,
        module_globals: Set[str],
        local_defs: Set[str],
        closure_names: Optional[Set[str]] = None,
        nested_defs: Optional[Dict[str, str]] = None,
    ) -> None:
        self.resolver = resolver
        self.class_ctx = class_ctx
        self.param_names = set(param_names)
        self.closure_names = set(closure_names or ())
        self.module_globals = module_globals
        #: Module-level *data* names (defs excluded) — read targets.
        self.data_globals = module_globals - local_defs
        self.nested_defs = dict(nested_defs or {})
        self.global_decls: Set[str] = set()
        self.segment = 0
        #: (lineno, col) of extremum-fold guard reads to suppress.
        self._fold_guards: Set[Tuple[int, int]] = set()
        self.fn = FunctionAccesses(
            qualname=qualname,
            lineno=getattr(node, "lineno", 0) if node is not None else 0,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            is_method=is_method,
            class_ctx=class_ctx,
        )

    # -- classification ----------------------------------------------------
    def _access_kind(self, root: str) -> str:
        if root in ("self", "cls"):
            return MUT_SELF
        if root in self.param_names or root in self.closure_names:
            return MUT_PARAM
        if root in self.global_decls:
            return MUT_GLOBAL
        if root in self.module_globals:
            return MUT_GLOBAL
        return ""

    def _add_write(
        self,
        target: ast.AST,
        root: str,
        via: str,
        commutes: bool,
        reason: str,
    ) -> None:
        kind = self._access_kind(root)
        if not kind:
            return
        _, head = _chain_parts(target)
        if not head and isinstance(target, ast.Name):
            head = ""
            root = target.id
        self.fn.accesses.append(
            Access(
                write=True,
                kind=kind,
                root=root,
                head=head,
                target=_snippet(target),
                lineno=getattr(target, "lineno", 0),
                col=getattr(target, "col_offset", 0),
                segment=self.segment,
                via=via,
                commutes=commutes,
                comm_reason=reason,
            )
        )

    def _add_read(
        self, node: ast.AST, root: str, head: str, use: str, iter_order: str = ""
    ) -> None:
        kind = self._access_kind(root)
        if not kind:
            return
        self.fn.accesses.append(
            Access(
                write=False,
                kind=kind,
                root=root,
                head=head,
                target=_snippet(node),
                lineno=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                segment=self.segment,
                via="read",
                use=use,
                iter_order=iter_order,
            )
        )

    # -- loop context ------------------------------------------------------
    @staticmethod
    def _loop_of(
        node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[ast.For]:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.For):
                return current
            current = parents.get(current)
        return None

    # -- extremum folds ----------------------------------------------------
    def _extremum_fold(
        self,
        node: ast.Assign,
        target: ast.AST,
        parents: Dict[ast.AST, ast.AST],
    ) -> bool:
        """``x = max(x, v)`` or ``if v > x: x = v``."""
        target_text = _snippet(target)
        value = node.value
        if (
            isinstance(value, ast.Call)
            and dotted_name(value.func).split(".")[-1] in ("max", "min")
            and any(_snippet(arg) == target_text for arg in value.args)
        ):
            return True
        current = parents.get(node)
        while current is not None and not isinstance(current, ast.If):
            current = parents.get(current)
        if isinstance(current, ast.If) and isinstance(current.test, ast.Compare):
            test = current.test
            if len(test.ops) == 1 and isinstance(
                test.ops[0], (ast.Gt, ast.GtE, ast.Lt, ast.LtE)
            ):
                value_text = _snippet(value)
                sides = [test.left, test.comparators[0]]
                texts = [_snippet(s) for s in sides]
                if target_text in texts and value_text in texts:
                    for side, text in zip(sides, texts):
                        if text == target_text:
                            self._fold_guards.add(
                                (side.lineno, side.col_offset)
                            )
                    return True
        return False

    # -- statement handlers ------------------------------------------------
    def _handle_assign_target(
        self,
        node: ast.AST,
        target: ast.AST,
        value: Optional[ast.AST],
        parents: Dict[ast.AST, ast.AST],
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                if (
                    isinstance(node, ast.Assign)
                    and value is not None
                    and self._extremum_fold(node, target, parents)
                ):
                    self._add_write(
                        target, target.id, "assign", True, COMM_EXTREMUM
                    )
                    return
                via = "assign"
                if value is not None and self._reads_bound_args(value):
                    via = "assign:arg"
                self._add_write(target, target.id, via, False, ORDERED_STORE)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_assign_target(node, element, value, parents)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _target_root(target)
        if isinstance(target, ast.Subscript):
            commutes, reason = self._classify_subscript_store(node, target)
            self._add_write(target, root, "assign", commutes, reason)
            return
        if (
            isinstance(node, ast.Assign)
            and value is not None
            and self._extremum_fold(node, target, parents)
        ):
            self._add_write(target, root, "assign", True, COMM_EXTREMUM)
            return
        # Stores whose value reads a parameter/closure binding differ
        # between two pending instances of the same callback (each
        # registration binds its own arguments); stores computed from
        # `self`/constants are identical and therefore symmetric.
        via = "assign"
        if value is not None and self._reads_bound_args(value):
            via = "assign:arg"
        self._add_write(target, root, via, False, ORDERED_STORE)

    def _reads_bound_args(self, value: ast.AST) -> bool:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Name) and (
                sub.id in self.param_names or sub.id in self.closure_names
            ):
                return True
        return False

    def _classify_subscript_store(
        self, node: ast.AST, target: ast.Subscript
    ) -> Tuple[bool, str]:
        """``d[k] = ...``: a reduction in disguise, or a key insert."""
        if not isinstance(node, ast.Assign):
            return False, ORDERED_DICT
        base_text = _snippet(target.value)
        reads_base = False
        has_add = False
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, (ast.Add, ast.Sub)):
                has_add = True
            if isinstance(sub, ast.Subscript) and _snippet(sub.value) == base_text:
                reads_base = True
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "get"
                and _snippet(sub.func.value) == base_text
            ):
                reads_base = True
        if reads_base and has_add:
            if _float_evidence(target, node.value):
                return False, ORDERED_FLOAT
            return True, COMM_INT_ACCUM
        return False, ORDERED_DICT

    def _handle_augassign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            if target.id not in self.global_decls:
                return
            root = target.id
        else:
            root = _target_root(target)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if _float_evidence(node.target, node.value):
                self._add_write(target, root, "augassign", False, ORDERED_FLOAT)
            else:
                self._add_write(target, root, "augassign", True, COMM_INT_ACCUM)
            return
        self._add_write(target, root, "augassign", False, ORDERED_STORE)

    def _handle_mutating_call(self, node: ast.Call, tail: str) -> None:
        receiver = node.func.value  # type: ignore[union-attr]
        root = _target_root(receiver)
        via = f"method:{tail}"
        if tail in _COMMUTING_METHOD_TAILS:
            self._add_write(receiver, root, via, True, COMM_SET)
        elif tail in _SEQ_METHOD_TAILS:
            self._add_write(receiver, root, via, False, ORDERED_SEQ)
        elif tail in _DICT_METHOD_TAILS:
            self._add_write(receiver, root, via, False, ORDERED_DICT)
        elif tail == "set":
            self._add_write(receiver, root, via, False, ORDERED_STORE)
        else:
            self._add_write(receiver, root, via, False, ORDERED_CALL)

    # -- callback resolution -----------------------------------------------
    def _resolve_callable(self, node: ast.AST) -> str:
        """Best-effort qualname of a scheduled callback/process."""
        if isinstance(node, ast.Lambda):
            body = node.body
            if isinstance(body, ast.Call):
                return self._resolve_callable(body.func)
            return ""
        if isinstance(node, ast.Call):
            # spawn(self._proc(...)) — a generator constructor call.
            return self._resolve_callable(node.func)
        if isinstance(node, ast.Attribute):
            root = _target_root(node)
            raw = dotted_name(node)
            if root in ("self", "cls") and self.class_ctx:
                parts = raw.split(".")
                if len(parts) == 2:
                    return f"{self.class_ctx}.{parts[1]}"
                return ""
            return self.resolver.resolve(raw, self.class_ctx) if raw else ""
        if isinstance(node, ast.Name):
            if node.id in self.nested_defs:
                return self.nested_defs[node.id]
            return self.resolver.resolve(node.id, self.class_ctx)
        return ""

    def _sim_receiver(self, node: ast.Call, tail: str) -> bool:
        """Does this registration-shaped call target the simulator?

        ``spawn``/``schedule``/``trigger`` tails collide with unrelated
        APIs (``SeedSequence.spawn``, cron-style schedulers), so the
        receiver must look like a simulator handle: ``sim``/``*.sim``,
        the kernel's own ``self``, or the raw event queue.
        ``interrupt`` targets a *process* handle, so it passes as-is.
        """
        if tail == "interrupt":
            return True
        text = _snippet(node.func.value)  # type: ignore[union-attr]
        return (
            text in ("sim", "self", "cls")
            or text.endswith(".sim")
            or text.endswith("_queue")
        )

    def _call_arg(
        self, node: ast.Call, position: Optional[int], keyword: str
    ) -> Optional[ast.AST]:
        if keyword:
            for kw in node.keywords:
                if kw.arg == keyword:
                    return kw.value
        if position is not None and len(node.args) > position:
            return node.args[position]
        return None

    def _handle_registration(
        self, node: ast.Call, tail: str, parents: Dict[ast.AST, ast.AST]
    ) -> None:
        op, delay_pos, delay_kw, target_pos = _REGISTRATION_TAILS[tail]
        delay_node = self._call_arg(node, delay_pos, delay_kw)
        if op in ("spawn", "interrupt", "trigger") and delay_node is None:
            delay_class = "zero"
        elif op == "wakeup":
            delay_class = "unknown"
        else:
            delay_class = _delay_class(delay_node)
        target = ""
        target_text = ""
        if target_pos is not None:
            target_node = self._call_arg(node, target_pos, "")
            if target_node is None and target_pos == 1:
                target_node = self._call_arg(node, None, "callback")
            if target_node is not None:
                target = self._resolve_callable(target_node)
                target_text = _snippet(target_node)
        elif op == "interrupt" and isinstance(node.func, ast.Attribute):
            target_text = _snippet(node.func.value)
        loop = self._loop_of(node, parents)
        loop_order, loop_text = ("", "")
        if loop is not None:
            loop_order, loop_text = classify_iter(loop.iter)
        self.fn.registrations.append(
            Registration(
                op=op,
                delay_class=delay_class,
                target=target,
                target_text=target_text,
                lineno=node.lineno,
                col=node.col_offset,
                segment=self.segment,
                in_loop=loop is not None,
                loop_order=loop_order,
                loop_text=loop_text,
            )
        )

    # -- reads -------------------------------------------------------------
    def _use_of(
        self, node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> str:
        child = node
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.If, ast.While, ast.IfExp)):
                if current.test is child:
                    return USE_CONTROL
                # Falling out of the test subtree means we were in a
                # branch body, not the condition — stop classifying.
                if not isinstance(current, ast.IfExp):
                    return USE_VALUE
            if isinstance(current, ast.Assert) and current.test is child:
                return USE_CONTROL
            if isinstance(current, ast.Compare) or isinstance(
                current, (ast.BoolOp, ast.UnaryOp, ast.BinOp)
            ):
                child = current
                current = parents.get(current)
                continue
            if isinstance(current, ast.Call):
                func_tail = (
                    current.func.attr
                    if isinstance(current.func, ast.Attribute)
                    else dotted_name(current.func).split(".")[-1]
                )
                in_args = child in current.args or any(
                    kw.value is child for kw in current.keywords
                )
                if in_args and func_tail in _METRIC_SINK_TAILS:
                    return USE_METRIC
            child = current
            current = parents.get(current)
        return USE_VALUE

    def _handle_read(
        self, node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> None:
        parent = parents.get(node)
        if isinstance(parent, (ast.Attribute, ast.Subscript)) and parent.value is node:
            return  # inner part of a longer chain
        if isinstance(parent, ast.Call) and parent.func is node:
            return  # method/function reference, not a data read
        if isinstance(node, ast.Name):
            root, head = node.id, ""
            if root not in self.data_globals or root in self.global_decls:
                if root not in self.global_decls:
                    return
        else:
            root, head = _chain_parts(node)
            if not root:
                return
        if (getattr(node, "lineno", 0), getattr(node, "col_offset", 0)) in self._fold_guards:
            return
        self._add_read(node, root, head, self._use_of(node, parents))

    def _handle_iteration(self, iter_node: ast.AST) -> None:
        order, _text = classify_iter(iter_node)
        container = _iter_container(iter_node)
        if isinstance(container, ast.Name):
            root, head = container.id, ""
            if root not in self.data_globals and root not in self.param_names and root not in self.closure_names:
                return
        elif isinstance(container, (ast.Attribute, ast.Subscript)):
            root, head = _chain_parts(container)
        else:
            return
        if order == ITER_SORTED:
            # Sorted iteration never observes container order.
            return
        self._add_read(container, root, head, USE_ITERATION, iter_order=order)

    # -- the walk ----------------------------------------------------------
    def run(self, root: ast.AST) -> FunctionAccesses:
        own = _own_nodes(root)
        parents = _parent_map(own)
        for node in own:
            if isinstance(node, ast.Global):
                self.global_decls |= set(node.names)
        for node in own:
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self.fn.has_yield = True
                value = getattr(node, "value", None)
                if isinstance(value, ast.Call):
                    tail = dotted_name(value.func).split(".")[-1]
                    if tail in SIM_COMMAND_TAILS:
                        self.fn.is_sim_process = True
                    if tail == "Timeout":
                        delay_node = value.args[0] if value.args else None
                        loop = self._loop_of(node, parents)
                        loop_order, loop_text = ("", "")
                        if loop is not None:
                            loop_order, loop_text = classify_iter(loop.iter)
                        self.fn.registrations.append(
                            Registration(
                                op="timeout",
                                delay_class=_delay_class(delay_node),
                                target=self.fn.qualname,
                                target_text=_snippet(value),
                                lineno=node.lineno,
                                col=node.col_offset,
                                segment=self.segment,
                                in_loop=loop is not None,
                                loop_order=loop_order,
                                loop_text=loop_text,
                            )
                        )
                self.segment += 1
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._handle_assign_target(node, target, node.value, parents)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._handle_assign_target(node, node.target, node.value, parents)
            elif isinstance(node, ast.AugAssign):
                self._handle_augassign(node)
            elif isinstance(node, ast.Call):
                raw = dotted_name(node.func)
                tail = raw.split(".")[-1] if raw else ""
                if isinstance(node.func, ast.Attribute):
                    if tail in _REGISTRATION_TAILS and self._sim_receiver(
                        node, tail
                    ):
                        self._handle_registration(node, tail, parents)
                    elif tail in _ALL_MUTATING_TAILS:
                        self._handle_mutating_call(node, tail)
            elif isinstance(node, ast.For):
                self._handle_iteration(node.iter)
            elif isinstance(node, ast.comprehension):
                self._handle_iteration(node.iter)
            elif isinstance(node, (ast.Attribute, ast.Subscript, ast.Name)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                self._handle_read(node, parents)
        self.fn.segments = self.segment + 1
        return self.fn


def extract_accesses(
    display_path: str,
    module: str,
    source: str,
    tree: Optional[ast.Module] = None,
) -> RaceFileSummary:
    """Summarize one file.  Pure function of (path, module, source)."""
    if tree is None:
        tree = ast.parse(source, filename=display_path)
    aliases = build_aliases(tree, module)
    local_defs = {
        n.name
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    module_globals = set(local_defs)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            module_globals |= {
                t.id for t in node.targets if isinstance(t, ast.Name)
            }
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            module_globals.add(node.target.id)
    resolver = _NameResolver(module, aliases, local_defs)
    prefix = module or display_path
    summary = RaceFileSummary(path=display_path, module=module)

    def param_names_of(node: ast.AST, is_method: bool) -> List[str]:
        args = node.args
        names = [
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        ]
        if is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def _direct_children(node: ast.AST) -> List[ast.AST]:
        found: List[ast.AST] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append(child)
                continue
            if isinstance(child, (ast.Lambda, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(child))
        return sorted(found, key=lambda n: (n.lineno, n.col_offset))

    def summarize_function(
        node: ast.AST,
        qual_prefix: str,
        class_ctx: str,
        closure_names: Set[str],
    ) -> None:
        is_method = bool(class_ctx) and qual_prefix == class_ctx
        qualname = f"{qual_prefix}.{node.name}"
        params = param_names_of(node, is_method)
        children = _direct_children(node)
        nested_defs = {c.name: f"{qualname}.{c.name}" for c in children}
        extractor = _RacesExtractor(
            resolver,
            qualname,
            node,
            params,
            is_method,
            class_ctx,
            module_globals,
            local_defs,
            closure_names=closure_names,
            nested_defs=nested_defs,
        )
        summary.functions.append(extractor.run(node))
        # Names a directly-nested def can capture: our params plus any
        # local stores in our own body (closure aliasing — see module
        # docstring).
        inner_closure = set(params) | set(closure_names)
        for own_node in _own_nodes(node):
            inner_closure |= _names_stored(own_node)
        for child in children:
            summarize_function(child, qualname, class_ctx, inner_closure)

    module_extractor = _RacesExtractor(
        resolver,
        f"{prefix}.<module>",
        None,
        [],
        False,
        "",
        module_globals,
        local_defs,
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarize_function(node, prefix, "", set())
        elif isinstance(node, ast.ClassDef):
            class_qual = f"{prefix}.{node.name}"
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summarize_function(item, class_qual, class_qual, set())
        else:
            own = [node] + _own_nodes(node)
            parents = _parent_map(own)
            for sub in own:
                if isinstance(sub, ast.Call):
                    raw = dotted_name(sub.func)
                    tail = raw.split(".")[-1] if raw else ""
                    if isinstance(sub.func, ast.Attribute) and tail in _REGISTRATION_TAILS:
                        module_extractor._handle_registration(sub, tail, parents)
    summary.functions.append(module_extractor.fn)
    return summary
