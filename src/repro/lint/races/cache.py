"""Content-hash cache for per-file access summaries.

Same design (and same on-disk directory, ``.repro-lint-cache/``) as
the dataflow and effects summary caches: the key hashes (races
schema, module, path, source), entries are written atomically, and
unreadable or schema-mismatched entries count as misses.  The
``races-schema=`` prefix keeps this key namespace disjoint from both
``summary-schema=`` (dataflow) and ``effects-schema=`` (effects) even
though all three layers share one cache directory, so each layer's
hit statistics stay meaningful on their own (CI asserts 100% warm
hits per layer).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.lint.races.model import RACES_SCHEMA, RaceFileSummary


def races_key(source: str, module: str, path: str) -> str:
    """Content address of one file's access summary."""
    digest = hashlib.sha256()
    digest.update(
        f"races-schema={RACES_SCHEMA}\nmodule={module}\npath={path}\n".encode()
    )
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class RacesCache:
    """On-disk access-summary store rooted at ``directory``.

    ``directory=None`` disables persistence: every lookup is a miss and
    writes are dropped (guaranteed-cold runs for tests).
    """

    def __init__(self, directory: Optional[os.PathLike]) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RaceFileSummary]:
        if self.directory is None:
            self.misses += 1
            return None
        try:
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
            summary = RaceFileSummary.from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if summary.schema != RACES_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, key: str, summary: RaceFileSummary) -> None:
        if self.directory is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(summary.to_json(), separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- accounting --------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests
