"""Rule plumbing: the context a rule sees and the base class it extends.

A rule is a class with a ``rule_id`` (``RL001``...), a ``severity``, a
one-line ``summary`` (shown by ``--list-rules``) and a ``check`` method
yielding :class:`~repro.lint.findings.Finding` objects.  Rules are
stateless between files; everything file- or repo-scoped arrives in the
:class:`RuleContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set

from repro.lint.findings import Finding, Severity


@dataclass
class RuleContext:
    """Everything a rule may consult while checking one file."""

    path: str
    tree: ast.Module
    lines: Sequence[str]
    #: Dotted module name (``repro.sim.kernel``) or None outside repro.
    module: Optional[str] = None
    #: Modules under the determinism contract (see repro.lint.imports).
    determinism_critical: Set[str] = field(default_factory=set)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def is_determinism_critical(self) -> bool:
        return self.module is not None and self.module in self.determinism_critical

    @property
    def in_package(self) -> str:
        """The sub-package under repro (``sim``, ``devices``, ...)."""
        if not self.module or not self.module.startswith("repro."):
            return ""
        return self.module.split(".")[1] if "." in self.module else ""

    def line_has_comment(self, lineno: int) -> bool:
        """True if the physical line carries a ``#`` comment (cheap
        textual check; good enough for provenance annotations)."""
        return "#" in self.source_line(lineno)


class Rule:
    """Base class for all lint rules."""

    rule_id: str = "RL000"
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        ctx: RuleContext,
        node: ast.AST,
        message: str,
        fix_hint: str = "",
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            path=ctx.path,
            line=lineno,
            col=col,
            message=message,
            fix_hint=fix_hint or f"or suppress: # repro-lint: disable={self.rule_id}",
            source_line=ctx.source_line(lineno),
        )


def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; '' for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def numeric_value(node: ast.AST) -> Optional[float]:
    """The numeric value of a literal or +/- of one, else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = numeric_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None
