"""Parallelism rule (RL009).

:mod:`repro.parallel` is the library's *only* sanctioned fan-out
surface: it spawns per-point seeds from one root ``SeedSequence`` and
collects results in submission order, which is what keeps parallel
sweeps bit-identical to serial ones.  Ad-hoc ``multiprocessing`` or
``ProcessPoolExecutor`` use anywhere else reintroduces exactly the
hazards the engine exists to remove — worker-order-dependent results,
unseeded per-process RNG state, and pickling surprises — without
tripping any test.

RL009 therefore flags imports of :mod:`multiprocessing` (and its
submodules), imports of ``ProcessPoolExecutor`` from
:mod:`concurrent.futures`, and direct ``ProcessPoolExecutor(...)``
construction, everywhere except inside ``repro.parallel`` itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, dotted_name

_ALLOWED_PACKAGE = "repro.parallel"

_FIX_HINT = (
    "route the fan-out through repro.parallel.run_sweep / SweepEngine "
    "(deterministic per-point seeds, order-preserving collection)"
)


def _in_allowed_package(ctx: RuleContext) -> bool:
    module = ctx.module or ""
    return module == _ALLOWED_PACKAGE or module.startswith(
        _ALLOWED_PACKAGE + "."
    )


class AdHocParallelismRule(Rule):
    """RL009: process fan-out outside the sanctioned sweep engine."""

    rule_id = "RL009"
    severity = Severity.ERROR
    summary = (
        "ProcessPoolExecutor/multiprocessing use outside repro.parallel — "
        "unseeded ad-hoc fan-out breaks the determinism contract"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if _in_allowed_package(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "multiprocessing":
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} outside "
                            f"{_ALLOWED_PACKAGE}",
                            fix_hint=_FIX_HINT,
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "multiprocessing":
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {module!r} outside {_ALLOWED_PACKAGE}",
                        fix_hint=_FIX_HINT,
                    )
                elif module == "concurrent.futures" and any(
                    alias.name == "ProcessPoolExecutor"
                    for alias in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "import of ProcessPoolExecutor outside "
                        f"{_ALLOWED_PACKAGE}",
                        fix_hint=_FIX_HINT,
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                if name == "ProcessPoolExecutor" or name.endswith(
                    ".ProcessPoolExecutor"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}(...) constructed outside {_ALLOWED_PACKAGE}",
                        fix_hint=_FIX_HINT,
                    )
