"""Observability determinism rule (RL011).

The obs contract (``docs/OBSERVABILITY.md``) is that a metrics
snapshot or trace is a *pure function of (config, seed)* — that is
what makes golden-snapshot tests and the serial-vs-parallel
bit-identity check possible.  The contract dies quietly the moment a
host-identity value leaks into a metric name, label, value, or span
attribute:

- wall-clock reads (``time.time()``, ``datetime.now()``) stamp every
  run differently (RL004 already bans these library-wide; RL011
  re-flags them at obs call sites with the obs-specific diagnosis);
- ``id()`` / ``hash()`` / ``uuid.*`` / ``os.getpid()`` /
  ``threading.get_ident()`` vary per process or per run
  (``PYTHONHASHSEED``), so a label like ``worker=id(engine)`` splits
  one logical series into a fresh series every run and no two
  snapshots ever merge or diff clean.

The rule fires on any call to an obs recording method — name/label
positions (``counter``/``gauge``/``histogram``/``info``/``begin``/
``span``/``instant``) and value positions (``add``/``set``/
``observe``/``observe_many``) — whose arguments contain one of the
forbidden calls, including inside f-strings.  Because those method
names are generic (sets also have ``.add``), the rule only runs in
files that import ``repro.obs`` (or live inside it); elsewhere the
identity builtins are legal Python.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, dotted_name
from repro.lint.rules.determinism import _WALL_CLOCK_CALLS

#: Obs methods taking metric/span names and ``**labels`` / ``**attrs``.
_NAME_METHODS: Set[str] = {
    "counter",
    "gauge",
    "histogram",
    "info",
    "begin",
    "span",
    "instant",
}

#: Obs methods taking recorded values.
_VALUE_METHODS: Set[str] = {"add", "set", "observe", "observe_many"}

_OBS_METHODS: Set[str] = _NAME_METHODS | _VALUE_METHODS

#: Per-process / per-run identity sources (beyond the wall clocks).
_IDENTITY_CALLS: Set[str] = {
    "id",
    "hash",
    "uuid.uuid1",
    "uuid.uuid3",
    "uuid.uuid4",
    "uuid.uuid5",
    "os.getpid",
    "os.getppid",
    "getpid",
    "threading.get_ident",
    "threading.current_thread",
}

_FORBIDDEN: Set[str] = _WALL_CLOCK_CALLS | _IDENTITY_CALLS


def _imports_obs(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.startswith("repro.obs") for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro.obs"):
                return True
    return False


class ObsDeterminismRule(Rule):
    """RL011: host identity or wall clock fed into an obs position."""

    rule_id = "RL011"
    severity = Severity.ERROR
    summary = (
        "wall-clock or per-process identity (time.time, id, hash, uuid, "
        "getpid) in a repro.obs metric/trace position; snapshots must be "
        "pure functions of (config, seed)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        in_obs_package = bool(ctx.module) and ctx.module.startswith("repro.obs")
        if not in_obs_package and not _imports_obs(ctx.tree):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in _OBS_METHODS:
                continue
            position = "label" if method in _NAME_METHODS else "value"
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                for inner in ast.walk(argument):
                    if not isinstance(inner, ast.Call):
                        continue
                    bad = dotted_name(inner.func)
                    if bad in _FORBIDDEN:
                        yield self.finding(
                            ctx,
                            inner,
                            f"{bad}() in a .{method}() {position} position — "
                            "the snapshot stops being a pure function of "
                            "(config, seed), so goldens, diffs and the "
                            "serial-vs-parallel identity all break",
                            fix_hint="derive labels/values from config or "
                            "seed; stamp times from simulated clocks only",
                        )
