"""Exception-hygiene rule (RL010).

The fault-injection layer's contract is that failures *propagate with
context* (see :class:`repro.sim.SimProcessError` and
``docs/ROBUSTNESS.md``): a fault that disappears into a silent handler
produces a run that "succeeds" with wrong numbers — the worst failure
mode a reproduction can have.  Inside determinism-critical modules
(the RL005 scope: the sim kernel plus everything that runs inside or
drives it) this rule flags:

- bare ``except:`` — catches everything including ``KeyboardInterrupt``
  and ``SystemExit``, and hides which failures the author anticipated;
- swallowed broad handlers — ``except Exception:`` / ``BaseException:``
  (alone or in a tuple) whose body neither re-raises nor does any work
  (only ``pass`` / ``...`` / ``continue`` / a docstring).

Narrow swallows (``except OSError: pass`` around a best-effort close)
are legal: naming the type documents exactly which failure is safe to
ignore.  Broad handlers that *handle* — log, wrap-and-raise, record a
failure result — are also legal; it is the catch-everything-do-nothing
combination that erases faults.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, dotted_name

#: Exception names too broad to swallow silently.
BROAD_TYPES = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    """Type names a handler catches ('' entries for non-name nodes)."""
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    return [dotted_name(e).split(".")[-1] for e in elts]


def _is_inert(body: List[ast.stmt]) -> bool:
    """True when the handler body does nothing with the exception:
    only ``pass``, ``...``, ``continue`` or bare string constants."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


class SwallowedExceptionRule(Rule):
    """RL010: bare ``except:`` / silently swallowed broad handlers in
    determinism-critical modules."""

    rule_id = "RL010"
    severity = Severity.ERROR
    summary = (
        "bare `except:` or a swallowed broad handler (`except Exception: "
        "pass`) in a determinism-critical module; faults must propagate "
        "with context, not vanish"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.is_determinism_critical:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches everything (KeyboardInterrupt "
                    "and SystemExit included) and hides which failures "
                    "were anticipated",
                    fix_hint="name the exception types this site can "
                    "actually handle",
                )
            elif (
                set(_caught_names(node)) & BROAD_TYPES
                and _is_inert(node.body)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "broad handler swallows the exception: a fault erased "
                    "here yields a run that 'succeeds' with wrong numbers",
                    fix_hint="narrow the type, or handle it (log, record "
                    "a failed result, wrap and re-raise)",
                )
