"""Rule registry.

Adding a rule is three steps (see ``docs/STATIC_ANALYSIS.md``):

1. subclass :class:`~repro.lint.rules.base.Rule` in a module here,
2. give it the next free ``RL0xx`` id, a severity and a summary,
3. append the class to :data:`RULE_CLASSES`.

Ids are never reused: a retired rule's id stays retired so baselines
and suppressions keep meaning what they meant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.lint.rules.base import Rule, RuleContext
from repro.lint.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.lint.rules.exceptions import SwallowedExceptionRule
from repro.lint.rules.floats import FloatEqualityRule
from repro.lint.rules.obs import ObsDeterminismRule
from repro.lint.rules.parallelism import AdHocParallelismRule
from repro.lint.rules.provenance import DeviceProvenanceRule
from repro.lint.rules.simhygiene import SimProcessHygieneRule
from repro.lint.rules.units import MagicUnitLiteralRule, MixedSizeUnitsRule

#: Every registered rule, in id order.
RULE_CLASSES: List[Type[Rule]] = [
    MagicUnitLiteralRule,  # RL001
    MixedSizeUnitsRule,  # RL002
    UnseededRandomRule,  # RL003
    WallClockRule,  # RL004
    SetIterationRule,  # RL005
    FloatEqualityRule,  # RL006
    SimProcessHygieneRule,  # RL007
    DeviceProvenanceRule,  # RL008
    AdHocParallelismRule,  # RL009
    SwallowedExceptionRule,  # RL010
    ObsDeterminismRule,  # RL011
]


def get_rule_classes(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Type[Rule]]:
    """The registry filtered by ``--select`` / ``--ignore`` id lists."""
    classes = list(RULE_CLASSES)
    if select:
        wanted = {s.upper() for s in select}
        unknown = wanted - {c.rule_id for c in classes}
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        classes = [c for c in classes if c.rule_id in wanted]
    if ignore:
        dropped = {s.upper() for s in ignore}
        classes = [c for c in classes if c.rule_id not in dropped]
    return classes


def rule_catalog() -> Dict[str, str]:
    """``{rule_id: summary}`` for ``--list-rules`` and the docs test."""
    return {cls.rule_id: cls.summary for cls in RULE_CLASSES}


__all__ = [
    "Rule",
    "RuleContext",
    "RULE_CLASSES",
    "get_rule_classes",
    "rule_catalog",
]
