"""Rule registry.

Adding a rule is three steps (see ``docs/STATIC_ANALYSIS.md``):

1. subclass :class:`~repro.lint.rules.base.Rule` in a module here,
2. give it the next free ``RL0xx`` id, a severity and a summary,
3. append the class to :data:`RULE_CLASSES`.

Ids are never reused: a retired rule's id stays retired so baselines
and suppressions keep meaning what they meant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.rules.base import Rule, RuleContext
from repro.lint.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.lint.rules.exceptions import SwallowedExceptionRule
from repro.lint.rules.floats import FloatEqualityRule
from repro.lint.rules.obs import ObsDeterminismRule
from repro.lint.rules.parallelism import AdHocParallelismRule
from repro.lint.rules.provenance import DeviceProvenanceRule
from repro.lint.rules.retries import UnboundedResilienceRule
from repro.lint.rules.simhygiene import SimProcessHygieneRule
from repro.lint.rules.units import MagicUnitLiteralRule, MixedSizeUnitsRule

#: Every registered rule, in id order.
RULE_CLASSES: List[Type[Rule]] = [
    MagicUnitLiteralRule,  # RL001
    MixedSizeUnitsRule,  # RL002
    UnseededRandomRule,  # RL003
    WallClockRule,  # RL004
    SetIterationRule,  # RL005
    FloatEqualityRule,  # RL006
    SimProcessHygieneRule,  # RL007
    DeviceProvenanceRule,  # RL008
    AdHocParallelismRule,  # RL009
    SwallowedExceptionRule,  # RL010
    ObsDeterminismRule,  # RL011
    UnboundedResilienceRule,  # RL020 (RL012-RL019 are interprocedural)
]


def all_rule_ids() -> Set[str]:
    """Every registered id: per-file (RL001-RL011, RL020), dataflow
    (RL012-RL015), effects (RL016-RL019), races (RL021-RL025)."""
    # Imported lazily: dataflow/effects/races modules use rules.base
    # helpers, so a top-level import here would be circular.
    from repro.lint.dataflow.rules import DATAFLOW_RULE_IDS
    from repro.lint.effects.rules import EFFECTS_RULE_IDS
    from repro.lint.races.rules import RACES_RULE_IDS

    return (
        {c.rule_id for c in RULE_CLASSES}
        | set(DATAFLOW_RULE_IDS)
        | set(EFFECTS_RULE_IDS)
        | set(RACES_RULE_IDS)
    )


def split_selection(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Type[Rule]], Set[str]]:
    """Resolve ``--select`` / ``--ignore`` across all rule families.

    Returns ``(per_file_rule_classes, interprocedural_rule_ids)``; the
    second element mixes dataflow (RL012-RL015), effects (RL016-RL019)
    and races (RL021-RL025) ids — the CLI partitions it by family.
    Unknown ids in either list raise ``ValueError`` — a typo'd
    ``--select RL013`` silently matching nothing would defeat the
    point of selecting.
    """
    from repro.lint.dataflow.rules import DATAFLOW_RULE_IDS
    from repro.lint.effects.rules import EFFECTS_RULE_IDS
    from repro.lint.races.rules import RACES_RULE_IDS

    known = all_rule_ids()
    wanted = {s.upper() for s in select} if select else None
    dropped = {s.upper() for s in ignore} if ignore else set()
    for ids, flag in ((wanted or set(), "--select"), (dropped, "--ignore")):
        unknown = ids - known
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    classes = [
        c
        for c in RULE_CLASSES
        if (wanted is None or c.rule_id in wanted) and c.rule_id not in dropped
    ]
    inter_ids = {
        rid
        for rid in (*DATAFLOW_RULE_IDS, *EFFECTS_RULE_IDS, *RACES_RULE_IDS)
        if (wanted is None or rid in wanted) and rid not in dropped
    }
    return classes, inter_ids


def get_rule_classes(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Type[Rule]]:
    """The per-file registry filtered by ``--select`` / ``--ignore``."""
    classes, _ = split_selection(select, ignore)
    return classes


def rule_catalog() -> Dict[str, str]:
    """``{rule_id: summary}`` for ``--list-rules`` and the docs test,
    covering per-file, dataflow, effects, and races rules."""
    from repro.lint.dataflow.rules import dataflow_catalog
    from repro.lint.effects.rules import effects_catalog
    from repro.lint.races.rules import races_catalog

    catalog = {cls.rule_id: cls.summary for cls in RULE_CLASSES}
    catalog.update(dataflow_catalog())
    catalog.update(effects_catalog())
    catalog.update(races_catalog())
    return dict(sorted(catalog.items()))


__all__ = [
    "Rule",
    "RuleContext",
    "RULE_CLASSES",
    "all_rule_ids",
    "get_rule_classes",
    "rule_catalog",
    "split_selection",
]
