"""Resilience hygiene rule (RL020).

Serving and fault-injection code retries, hedges and waits; each of
those needs a budget, or one stuck dependency turns into a silent hang.
Two patterns this rule flags inside ``repro.inference`` and
``repro.faults`` modules:

- **unbounded retry loops** — a ``while True:`` whose body manipulates
  retry state (names containing ``retry``/``retries``/``attempt``/
  ``backoff``) but never compares that state against a budget and never
  raises: nothing in the loop can conclude "give up";
- **blocking waits without a timeout** — calls named ``wait`` /
  ``wait_for`` / ``acquire`` that pass neither a ``timeout=`` /
  ``deadline=`` keyword nor a positional timeout: against a crashed
  peer these block forever.  (The sim kernel's ``yield Wait(event)``
  command objects are not calls and are unaffected.)

Retry loops bounded structurally (``for attempt in range(n)``) never
match — the pattern is specifically the ``while True`` shape whose exit
condition lives nowhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, dotted_name

#: Sub-packages under ``repro`` this rule applies to.
RESILIENCE_PACKAGES: Set[str] = {"inference", "faults"}

#: Identifier fragments that mark retry/backoff state.
RETRY_FRAGMENTS = ("retry", "retries", "attempt", "backoff")

#: Call names that block until an external party acts.
BLOCKING_WAIT_NAMES: Set[str] = {"wait", "wait_for", "acquire"}

#: Keywords that bound a blocking wait.
TIMEOUT_KEYWORDS: Set[str] = {"timeout", "deadline", "timeout_s", "deadline_s"}


def _names_in(node: ast.AST) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _is_retry_name(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in RETRY_FRAGMENTS)


def _loop_body_nodes(loop: ast.While) -> List[ast.AST]:
    """Every node in the loop body, excluding nested function defs
    (their control flow is not this loop's exit condition)."""
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


class UnboundedResilienceRule(Rule):
    """RL020: unbounded retry loops / blocking waits without timeout in
    serving and fault code."""

    rule_id = "RL020"
    severity = Severity.ERROR
    summary = (
        "serving/faults code retries without a budget (while True over "
        "retry state with no bound check) or blocks without a timeout "
        "(wait/wait_for/acquire with no timeout= or deadline=)"
    )

    def _check_retry_loop(
        self, ctx: RuleContext, loop: ast.While
    ) -> Iterator[Finding]:
        test = loop.test
        if not (isinstance(test, ast.Constant) and test.value is True):
            return
        body = _loop_body_nodes(loop)
        retry_names = {
            name for node in body for name in _names_in(node)
            if _is_retry_name(name)
        }
        if not retry_names:
            return
        # A budget exists if any comparison in the loop involves retry
        # state, or the loop can raise its way out.
        for node in body:
            if isinstance(node, ast.Raise):
                return
            if isinstance(node, ast.Compare) and any(
                _is_retry_name(name) for name in _names_in(node)
            ):
                return
        yield self.finding(
            ctx,
            loop,
            f"`while True` retry loop over {sorted(retry_names)[0]!r} "
            "never compares its retry state against a budget and never "
            "raises; a persistent failure loops forever",
            fix_hint="bound it: `while attempts < max_retries` (or raise "
            "after a budget check)",
        )

    def _check_blocking_wait(
        self, ctx: RuleContext, call: ast.Call
    ) -> Iterator[Finding]:
        name = dotted_name(call.func)
        if not name:
            return
        leaf = name.split(".")[-1]
        if leaf not in BLOCKING_WAIT_NAMES:
            return
        if any(
            kw.arg in TIMEOUT_KEYWORDS for kw in call.keywords if kw.arg
        ):
            return
        # A positional timeout also bounds the wait: wait(5.0),
        # acquire(True, 5.0), wait_for(pred, 5.0).
        expected_positional = 2 if leaf == "wait_for" else 1
        if len(call.args) >= expected_positional:
            return
        yield self.finding(
            ctx,
            call,
            f"{name}() blocks with no timeout; against a crashed peer "
            "this waits forever",
            fix_hint=f"pass timeout=/deadline= to {leaf}() and handle "
            "the expiry",
        )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.in_package not in RESILIENCE_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.While):
                yield from self._check_retry_loop(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_blocking_wait(ctx, node)
