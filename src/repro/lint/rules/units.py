"""Unit-discipline rules (RL001, RL002).

Everything in this library is SI at every boundary (see
:mod:`repro.units`).  The two ways that discipline silently rots:

- magic scale factors (``1024**3``, ``86400``) re-deriving a constant
  that already has a name — one typo'd zero and a capacity claim is
  off by 1000x;
- mixing binary (``GiB``) and decimal (``GB``) size constants in one
  expression, which is exactly the 7.4% error class the paper's
  capacity arithmetic cannot absorb.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, numeric_value

#: Literal values that re-derive a named repro.units constant.  This
#: table IS the definition the rule compares against, so it must spell
#: the raw values out rather than import them.
UNIT_LITERALS: Dict[float, str] = {
    1024.0: "KiB",
    1024.0**2: "MiB",  # repro-lint: disable=RL001 -- the rule's own lookup table
    1024.0**3: "GiB",  # repro-lint: disable=RL001 -- the rule's own lookup table
    1024.0**4: "TiB",  # repro-lint: disable=RL001 -- the rule's own lookup table
    3600.0: "HOUR",
    86400.0: "DAY",
    604800.0: "7 * DAY",
    31536000.0: "365 * DAY",
    31557600.0: "YEAR",
    3.6e6: "KWH",
}

#: Exponent -> constant for ``1024 ** n`` / ``2 ** (10 n)`` rewrites.
_POW_1024: Dict[int, str] = {1: "KiB", 2: "MiB", 3: "GiB", 4: "TiB"}
_POW_2: Dict[int, str] = {10: "KiB", 20: "MiB", 30: "GiB", 40: "TiB"}

#: Keyword/attribute suffixes that mark a physical-quantity position.
QUANTITY_SUFFIXES: Tuple[str, ...] = (
    "_s",
    "_seconds",
    "_bytes",
    "_j",
    "_joules",
    "_w",
    "_watts",
)

BINARY_SIZE_NAMES: Set[str] = {"KiB", "MiB", "GiB", "TiB"}
DECIMAL_SIZE_NAMES: Set[str] = {"KB", "MB", "GB", "TB"}


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _is_quantity_position(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """Is ``node`` the value of a keyword / assignment whose name has a
    unit suffix (``capacity_bytes=...``, ``retention_s = ...``)?"""
    parent = parents.get(node)
    if isinstance(parent, ast.keyword) and parent.arg:
        return parent.arg.endswith(QUANTITY_SUFFIXES)
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        targets = parent.targets if isinstance(parent, ast.Assign) else [parent.target]
        for target in targets:
            name = target.id if isinstance(target, ast.Name) else getattr(target, "attr", "")
            if name.endswith(QUANTITY_SUFFIXES):
                return True
    return False


class MagicUnitLiteralRule(Rule):
    """RL001: a magic number re-derives a named ``repro.units`` constant."""

    rule_id = "RL001"
    severity = Severity.ERROR
    summary = (
        "magic scale factor (1024**3, 86400, ...) in a physical-quantity "
        "position; use the repro.units constant"
    )

    def _pow_rewrite(self, node: ast.BinOp) -> Optional[str]:
        if not isinstance(node.op, ast.Pow):
            return None
        base = numeric_value(node.left)
        exp = numeric_value(node.right)
        if base is None or exp is None or exp != int(exp):
            return None
        # Exact compares are right here: `base` was read out of a source
        # literal, not computed.
        if base == 1024.0:  # repro-lint: disable=RL006
            return _POW_1024.get(int(exp))
        if base == 2.0:  # repro-lint: disable=RL006
            return _POW_2.get(int(exp))
        return None

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.module == "repro.units":  # the definitions themselves
            return
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                constant = self._pow_rewrite(node)
                if constant:
                    yield self.finding(
                        ctx,
                        node,
                        f"magic size factor "
                        f"{ast.unparse(node)!s}; repro.units already names it",
                        fix_hint=f"use repro.units.{constant.split()[0]} "
                        f"(i.e. `{constant}`)",
                    )
                continue
            if not isinstance(node, ast.Constant):
                continue
            value = numeric_value(node)
            if value is None or value not in UNIT_LITERALS:
                continue
            parent = parents.get(node)
            # Skip the exponent/base of a power we already flag whole.
            if isinstance(parent, ast.BinOp) and isinstance(parent.op, ast.Pow):
                continue
            in_arithmetic = isinstance(parent, ast.BinOp) and isinstance(
                parent.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)
            )
            if in_arithmetic or _is_quantity_position(node, parents):
                constant = UNIT_LITERALS[value]
                yield self.finding(
                    ctx,
                    node,
                    f"magic unit literal {node.value!r} used as a scale "
                    "factor or physical quantity",
                    fix_hint=f"use repro.units ({constant})",
                )


class MixedSizeUnitsRule(Rule):
    """RL002: binary and decimal size constants mixed in one expression."""

    rule_id = "RL002"
    severity = Severity.ERROR
    summary = "binary (GiB) and decimal (GB) size constants mixed in one expression"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.module == "repro.units":
            return
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            # Only inspect maximal arithmetic expressions, once each.
            if not isinstance(node, ast.BinOp) or isinstance(
                parents.get(node), ast.BinOp
            ):
                continue
            names = {
                n.id
                for n in ast.walk(node)
                if isinstance(n, ast.Name)
            }
            binary = names & BINARY_SIZE_NAMES
            decimal = names & DECIMAL_SIZE_NAMES
            if binary and decimal:
                yield self.finding(
                    ctx,
                    node,
                    f"expression mixes binary ({', '.join(sorted(binary))}) and "
                    f"decimal ({', '.join(sorted(decimal))}) size constants "
                    "— a silent ~2-10% capacity error",
                    fix_hint="pick one base; convert explicitly at the boundary",
                )
