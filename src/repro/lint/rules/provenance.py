"""Device-parameter provenance rule (RL008).

MRM hardware does not exist; every number under ``src/repro/devices/``
stands in for a datasheet the paper cites or a literature
demonstration.  A number with no provenance cannot be audited, and an
unauditable number in the catalog silently re-parameterises every
experiment built on it.  Two obligations:

- every ``TechnologyProfile(...)`` / ``.with_overrides(...)`` call must
  pass a non-empty ``source=`` citation;
- any other numeric-literal keyword argument or numeric class-attribute
  default in a devices module must carry a comment on its line saying
  where the number comes from (calls that already pass ``source=``
  cover all their arguments).

Zero-valued defaults (``0``, ``0.0``) are exempt: zero means "absent" /
"initial accounting state", not a measured device number.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, dotted_name, numeric_value

DEVICES_PACKAGE = "devices"


def _source_kwarg(call: ast.Call) -> Optional[ast.keyword]:
    for kw in call.keywords:
        if kw.arg == "source":
            return kw
    return None


def _is_profile_call(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return name.split(".")[-1] in ("TechnologyProfile", "with_overrides")


def _empty_source(kw: ast.keyword) -> bool:
    return isinstance(kw.value, ast.Constant) and not str(kw.value.value or "").strip()


class DeviceProvenanceRule(Rule):
    """RL008: device numbers without a citation."""

    rule_id = "RL008"
    severity = Severity.ERROR
    summary = (
        "device parameter without provenance: profile missing source=, or "
        "numeric constant without a citation comment (devices/ only)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.in_package != DEVICES_PACKAGE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_profile_call(node):
                kw = _source_kwarg(node)
                if kw is None or _empty_source(kw):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted_name(node.func)}(...) without a source= "
                        "citation; these numbers stand in for hardware that "
                        "does not exist",
                        fix_hint="add source=\"<datasheet / paper ref>\"",
                    )
                continue
            if isinstance(node, ast.Call):
                yield from self._check_numeric_kwargs(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_defaults(ctx, node)

    def _check_numeric_kwargs(self, ctx: RuleContext, call: ast.Call) -> Iterator[Finding]:
        if _source_kwarg(call) is not None:
            return  # the call cites its numbers wholesale
        for kw in call.keywords:
            if kw.arg is None:
                continue
            value = numeric_value(kw.value)
            if value is None or value == 0:
                continue
            line = getattr(kw.value, "lineno", 0)
            if not ctx.line_has_comment(line):
                yield self.finding(
                    ctx,
                    kw.value,
                    f"numeric device parameter {kw.arg}={ast.unparse(kw.value)} "
                    "has no citation comment on its line",
                    fix_hint="append `# <where the number comes from>`",
                )

    def _check_class_defaults(self, ctx: RuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                continue
            value = numeric_value(stmt.value)
            if value is None or value == 0:
                continue
            line = stmt.value.lineno
            target = getattr(stmt.target, "id", "?")
            if not ctx.line_has_comment(line):
                yield self.finding(
                    ctx,
                    stmt.value,
                    f"numeric field default {target}={ast.unparse(stmt.value)} "
                    "has no citation comment on its line",
                    fix_hint="append `# <where the number comes from>`",
                )
