"""Float-hygiene rule (RL006).

``==``/``!=`` against a float literal is almost always a latent bug in
numerical code: the value being compared was computed, and computed
floats hit exact constants only by luck.  Where an exact sentinel is
genuinely meant (an input validated to lie in [0, 1] being tested at
its endpoints), prefer an ordered comparison (``<=``/``>=``) which says
the same thing without the fragility — or suppress with a justification.

Whitelisted idioms (not flagged):

- comparisons inside ``assert`` statements (tests and invariants
  legitimately pin exact values);
- ``math.isclose(...)`` / ``np.isclose(...)`` are calls, not
  comparisons, so they never trigger.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return _is_float_literal(node.operand)
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _nodes_inside_asserts(tree: ast.AST) -> Set[int]:
    inside: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            for sub in ast.walk(node):
                inside.add(id(sub))
    return inside


class FloatEqualityRule(Rule):
    """RL006: ``==``/``!=`` with a float literal operand."""

    rule_id = "RL006"
    severity = Severity.ERROR
    summary = "float equality comparison (== / != with a float literal)"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        in_assert = _nodes_inside_asserts(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare) or id(node) in in_assert:
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(_is_float_literal(side) for side in operands):
                    literal = next(
                        ast.unparse(s) for s in operands if _is_float_literal(s)
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"exact float comparison against {literal}; computed "
                        "floats rarely hit exact constants",
                        fix_hint="use an ordered guard (<=, >=), math.isclose, "
                        "or an explicit tolerance",
                    )
                    break
