"""Sim-process hygiene rule (RL007).

Simulation processes are generators driven by the kernel; each
``yield`` must hand the kernel a command (``Timeout``, ``Wait``,
``Acquire``, ``Release``, a ``Process`` or an ``Event``).  Two bugs
this rule catches statically:

- a process generator that yields a bare literal (``yield 5`` meaning
  ``yield Timeout(5)``) — a ``TypeError`` at runtime, but only on the
  path that executes it;
- blocking calls (``time.sleep``, ``input``, ``subprocess.run``...)
  anywhere in library code: between events, callbacks run at a frozen
  simulated instant, so real-world blocking is always a bug.

A generator counts as a *process* only if it also yields at least one
recognised command constructor — plain data generators (trace readers,
token streams) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, dotted_name

#: Constructors whose presence marks a generator as a sim process.
COMMAND_CONSTRUCTORS: Set[str] = {
    "Timeout",
    "Wait",
    "Acquire",
    "Release",
}

#: Calls that block the real world (never legal in model code).
BLOCKING_CALLS: Set[str] = {
    "time.sleep",
    "input",
    "os.system",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
}


def _yields_of(func: ast.AST) -> List[ast.expr]:
    """Yield expressions belonging to ``func`` itself (not to nested
    function definitions)."""
    yields: List[ast.expr] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Yield):
            yields.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return yields


class SimProcessHygieneRule(Rule):
    """RL007: process generators yielding non-commands; blocking calls."""

    rule_id = "RL007"
    severity = Severity.ERROR
    summary = (
        "sim process yields a non-command literal, or model code calls a "
        "blocking function (time.sleep, input, subprocess)"
    )

    def _check_generator(self, ctx: RuleContext, func: ast.AST) -> Iterator[Finding]:
        yields = _yields_of(func)
        if not yields:
            return
        is_process = any(
            isinstance(y.value, ast.Call)
            and dotted_name(y.value.func).split(".")[-1] in COMMAND_CONSTRUCTORS
            for y in yields
        )
        if not is_process:
            return
        for y in yields:
            value = y.value
            if value is None:
                yield self.finding(
                    ctx,
                    y,
                    "bare `yield` in a sim process; the kernel needs a "
                    "command to know what to wait for",
                    fix_hint="yield Timeout(0.0) to cede the current instant",
                )
            elif isinstance(value, ast.Constant) and value.value is not None:
                yield self.finding(
                    ctx,
                    y,
                    f"sim process yields the literal {value.value!r}; the "
                    "kernel raises TypeError on non-command values",
                    fix_hint="wrap it: yield Timeout(delay) / Wait(event)",
                )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_generator(ctx, node)
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in BLOCKING_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() blocks the real world; between events, "
                        "model code runs at a frozen simulated instant",
                        fix_hint="model the delay with Timeout / "
                        "Simulator.schedule instead",
                    )
