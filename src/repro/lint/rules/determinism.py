"""Determinism rules (RL003-RL005).

The sim kernel documents determinism as a contract ("same schedule
order in, same execution order out") and every experiment's
reproducibility leans on it.  Three ways Python code breaks the
contract without failing a single test:

- RL003: drawing randomness from hidden global state (``random.*``
  module functions, ``random.Random()`` with no seed, numpy's legacy
  ``np.random.*`` globals, ``default_rng()`` with no seed);
- RL004: reading the wall clock (``time.time()``, ``datetime.now()``)
  — simulated time is the only clock a model may consult;
- RL005: iterating a ``set`` (hash-order, perturbed by
  ``PYTHONHASHSEED``) where the iteration order can reach an
  observable result.

RL003/RL004 apply to the whole library — it is a deterministic
modeling library; code that genuinely needs entropy must take an
explicit seeded generator.  RL005 applies only to determinism-critical
modules (see :mod:`repro.lint.imports`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding, Severity
from repro.lint.rules.base import Rule, RuleContext, dotted_name

#: numpy.random attributes that are constructors, not global draws.
_NUMPY_SEEDABLE: Set[str] = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
    "RandomState",  # still flagged separately if called without a seed
}

_WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}


def _call_has_seed(node: ast.Call) -> bool:
    """True if the call passes any positional arg or a seed= kwarg."""
    if node.args:
        return True
    return any(kw.arg in ("seed", "x") for kw in node.keywords)


class UnseededRandomRule(Rule):
    """RL003: randomness drawn from hidden global state."""

    rule_id = "RL003"
    severity = Severity.ERROR
    summary = (
        "unseeded randomness: module-level random.*, random.Random()/"
        "default_rng() without a seed, or numpy legacy np.random.* globals"
    )

    def __init__(self) -> None:
        self._random_aliases: Set[str] = set()

    def _scan_imports(self, ctx: RuleContext) -> Set[str]:
        """Names bound by ``from random import Random [as R]``."""
        aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name == "Random":
                        aliases.add(alias.asname or alias.name)
        return aliases

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        random_ctor_aliases = self._scan_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            # random.Random() / Random() without a seed argument.
            if name in ("random.Random", *random_ctor_aliases):
                if not _call_has_seed(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() constructed without a seed — seeded from "
                        "OS entropy, so runs are not reproducible",
                        fix_hint="pass an explicit seed: random.Random(seed)",
                    )
                continue
            # Module-level random.* draws (random.random, random.choice...).
            if name.startswith("random.") and name.count(".") == 1:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() draws from the hidden module-global RNG",
                    fix_hint="thread an explicit random.Random(seed) / "
                    "np.random.Generator through the call site",
                )
                continue
            # numpy: default_rng()/RandomState() without a seed.
            if name.endswith((".random.default_rng", ".random.RandomState")):
                if not _call_has_seed(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() without a seed — every run draws a fresh "
                        "entropy-based stream",
                        fix_hint="pass a seed (or accept an rng parameter)",
                    )
                continue
            # numpy legacy globals: np.random.rand, np.random.shuffle, ...
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[1] == "random"
                and parts[0] in ("np", "numpy")
                and parts[2] not in _NUMPY_SEEDABLE
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses numpy's legacy global RNG state",
                    fix_hint="use a seeded np.random.default_rng(seed) Generator",
                )


class WallClockRule(Rule):
    """RL004: wall-clock reads inside a simulated-time codebase."""

    rule_id = "RL004"
    severity = Severity.ERROR
    summary = "wall-clock call (time.time, datetime.now); simulated time is the only clock"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads the wall clock; model code must use "
                    "simulated time (Simulator.now) or take time as an argument",
                    fix_hint="pass `now`/timestamps in explicitly",
                )


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically-certain sets: literals, comprehensions, set()/frozenset()
    calls, and set operators on those."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class SetIterationRule(Rule):
    """RL005: iteration order of a set leaks into results."""

    rule_id = "RL005"
    severity = Severity.ERROR
    summary = (
        "iterating a set (hash order) in determinism-critical code; "
        "wrap in sorted()"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.is_determinism_critical:
            return
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                # list(set(...)) / tuple(set(...)) materialise hash order.
                if dotted_name(node.func) in ("list", "tuple") and node.args:
                    iters.append(node.args[0])
            for candidate in iters:
                if _is_set_expression(candidate):
                    yield self.finding(
                        ctx,
                        candidate,
                        "iteration over a set depends on hash order "
                        "(perturbed by PYTHONHASHSEED) — results may differ "
                        "between runs",
                        fix_hint="iterate sorted(the_set) or keep a list",
                    )
