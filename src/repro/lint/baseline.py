"""The checked-in baseline of accepted, pre-existing findings.

A baseline entry acknowledges a finding without fixing it — every entry
must carry a human-written ``justification`` explaining why the code is
right as written.  The file is JSON so diffs review cleanly:

.. code-block:: json

    {
      "version": 1,
      "entries": [
        {
          "fingerprint": "9f3c2a1b8d4e5f60",
          "rule_id": "RL001",
          "path": "src/repro/devices/base.py",
          "line": 359,
          "source_line": "* (self.capacity_bytes / (1024**3))",
          "justification": "repr-only formatting; not a model quantity"
        }
      ]
    }

Matching is by :meth:`repro.lint.findings.Finding.fingerprint` (path +
rule + stripped source text), so unrelated edits that shift line numbers
do not invalidate the baseline; the recorded ``line`` is informational.
Duplicate identical lines are handled by count: N entries with the same
fingerprint absorb at most N findings.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing justification)."""


class Baseline:
    """An in-memory baseline: fingerprint -> allowed count."""

    def __init__(self, entries: Optional[List[dict]] = None) -> None:
        self.entries: List[dict] = list(entries or [])
        for entry in self.entries:
            if not str(entry.get("justification", "")).strip():
                raise BaselineError(
                    f"baseline entry {entry.get('fingerprint')!r} "
                    f"({entry.get('path')}:{entry.get('line')}) has no "
                    "justification — every baselined finding must say why"
                )
        self._budget = Counter(e["fingerprint"] for e in self.entries)

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON ({exc})") from exc
        if payload.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version {payload.get('version')!r}"
            )
        return cls(payload.get("entries", []))

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str
    ) -> "Baseline":
        """Build a baseline accepting ``findings``, all with one shared
        justification (meant to be refined by hand afterwards)."""
        entries = [
            {
                "fingerprint": f.fingerprint(),
                "rule_id": f.rule_id,
                "path": f.path,
                "line": f.line,
                "source_line": f.source_line.strip(),
                "justification": justification,
            }
            for f in findings
        ]
        return cls(entries)

    def dump(self, path: Path) -> None:
        payload = {"version": BASELINE_VERSION, "entries": self.entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, baselined).

        Consumes baseline budget in report order so duplicate lines are
        absorbed deterministically.
        """
        budget: Dict[str, int] = dict(self._budget)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def stale_entries(self, findings: Sequence[Finding]) -> List[dict]:
        """Entries whose finding no longer occurs (candidates to prune)."""
        seen = Counter(f.fingerprint() for f in findings)
        stale: List[dict] = []
        spent: Counter = Counter()
        for entry in self.entries:
            fp = entry["fingerprint"]
            spent[fp] += 1
            if spent[fp] > seen.get(fp, 0):
                stale.append(entry)
        return stale

    def __len__(self) -> int:
        return len(self.entries)
