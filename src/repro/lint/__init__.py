"""repro-lint: an AST-based invariant checker for this repository.

The paper's evaluation is quantitative modeling end to end, so the bugs
that matter here are not crashes — they are silent unit slips (GiB vs
GB, seconds vs hours), nondeterministic simulation runs, float-equality
surprises, and device numbers with no provenance.  ``repro.lint``
parses the codebase with :mod:`ast` and enforces those invariants as
pluggable rules (``RL001``...), each with a severity and a fix hint.

Usage::

    python -m repro.lint src/repro          # or: repro-lint src/repro
    python -m repro.lint --list-rules

Findings support inline suppressions (``# repro-lint: disable=RL003``)
and a checked-in baseline file for pre-existing, justified violations.
See ``docs/STATIC_ANALYSIS.md`` for the rule catalog.
"""

from __future__ import annotations

from repro.lint.findings import Finding, Severity
from repro.lint.engine import LintEngine, lint_paths
from repro.lint.rules import RULE_CLASSES, Rule, RuleContext, get_rule_classes

__all__ = [
    "Finding",
    "Severity",
    "LintEngine",
    "lint_paths",
    "Rule",
    "RuleContext",
    "RULE_CLASSES",
    "get_rule_classes",
]
