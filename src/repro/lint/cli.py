"""Command-line front end: ``repro-lint`` / ``python -m repro.lint``.

Exit codes: 0 clean (or everything suppressed/baselined), 1 new
findings, 2 usage errors, parse errors, or malformed/unknown-id
suppression pragmas.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline, BaselineError, DEFAULT_BASELINE_NAME
from repro.lint.dataflow.rules import DATAFLOW_RULE_IDS
from repro.lint.effects.rules import EFFECTS_RULE_IDS
from repro.lint.engine import AUTO_CACHE_DIR, LintEngine
from repro.lint.output import OUTPUT_FORMATS, render_json, render_sarif
from repro.lint.races.rules import RACES_RULE_IDS
from repro.lint.rules import rule_catalog, split_selection

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _find_repo_root(start: Path) -> Optional[Path]:
    """Nearest ancestor holding a .git dir or pyproject.toml."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        if (candidate / ".git").exists() or (candidate / "pyproject.toml").exists():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for this repo: unit discipline, "
            "determinism, float hygiene, sim-process hygiene, and device-"
            "parameter provenance."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RLxxx",
        help="run only these rule ids (repeatable / comma-separated)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RLxxx",
        help="skip these rule ids (repeatable / comma-separated)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file (default: <repo-root>/{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "accept all current findings into the baseline file and exit 0; "
            "each generated entry gets a TODO justification to fill in"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat WARNING findings as failures too",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings absorbed by the baseline",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit the fix-hint line under each finding",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--format",
        choices=OUTPUT_FORMATS,
        default="text",
        help="report format (default: text); json and sarif print one "
        "document to stdout",
    )
    parser.add_argument(
        "--dataflow",
        dest="dataflow",
        action="store_true",
        default=True,
        help="run the interprocedural dataflow pass, RL012-RL015 (default: on)",
    )
    parser.add_argument(
        "--no-dataflow",
        dest="dataflow",
        action="store_false",
        help="skip the dataflow pass (per-file rules only)",
    )
    parser.add_argument(
        "--dataflow-cache",
        metavar="DIR",
        help="summary cache directory (default: <repo-root>/.repro-lint-cache); "
        "'none' disables caching",
    )
    parser.add_argument(
        "--effects",
        dest="effects",
        action="store_true",
        default=True,
        help="run the effect-inference pass, RL016-RL019 (default: on)",
    )
    parser.add_argument(
        "--no-effects",
        dest="effects",
        action="store_false",
        help="skip the effects pass (and the kernel-readiness report)",
    )
    parser.add_argument(
        "--effects-report",
        metavar="FILE",
        help="write the kernel-readiness report JSON to FILE "
        "(requires the effects pass; parent directory must exist)",
    )
    parser.add_argument(
        "--races",
        dest="races",
        action="store_true",
        default=True,
        help="run the happens-before races pass, RL021-RL024 (default: on)",
    )
    parser.add_argument(
        "--no-races",
        dest="races",
        action="store_false",
        help="skip the races pass (and the cohort-conflict report)",
    )
    parser.add_argument(
        "--races-report",
        metavar="FILE",
        help="write the cohort-conflict report JSON to FILE — also the "
        "REPRO_SANITIZE=1 model (requires the races pass; parent "
        "directory must exist)",
    )
    return parser


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(rule_catalog().items()):
            print(f"{rule_id}  {summary}")
        return EXIT_CLEAN

    try:
        rule_classes, inter_ids = split_selection(
            _split_ids(args.select), _split_ids(args.ignore)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    dataflow_ids = {i for i in inter_ids if i in DATAFLOW_RULE_IDS}
    effects_ids = {i for i in inter_ids if i in EFFECTS_RULE_IDS}
    races_ids = {i for i in inter_ids if i in RACES_RULE_IDS}

    report_path: Optional[Path] = None
    if args.effects_report:
        if not args.effects:
            print(
                "error: --effects-report requires the effects pass "
                "(drop --no-effects)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        report_path = Path(args.effects_report)
        if report_path.is_dir():
            print(
                f"error: --effects-report target {report_path} is a directory",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if not report_path.parent.is_dir():
            print(
                f"error: --effects-report parent directory "
                f"{report_path.parent} does not exist",
                file=sys.stderr,
            )
            return EXIT_USAGE

    races_report_path: Optional[Path] = None
    if args.races_report:
        if not args.races:
            print(
                "error: --races-report requires the races pass "
                "(drop --no-races)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        races_report_path = Path(args.races_report)
        if races_report_path.is_dir():
            print(
                f"error: --races-report target {races_report_path} is a directory",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if not races_report_path.parent.is_dir():
            print(
                f"error: --races-report parent directory "
                f"{races_report_path.parent} does not exist",
                file=sys.stderr,
            )
            return EXIT_USAGE

    repo_root = _find_repo_root(Path.cwd())

    cache_dir: object = AUTO_CACHE_DIR
    if args.dataflow_cache:
        cache_dir = (
            None if args.dataflow_cache.lower() == "none"
            else Path(args.dataflow_cache)
        )

    baseline_path: Optional[Path] = None
    if args.baseline:
        baseline_path = Path(args.baseline)
    elif repo_root is not None:
        candidate = repo_root / DEFAULT_BASELINE_NAME
        if candidate.exists():
            baseline_path = candidate

    baseline = Baseline()
    if not args.no_baseline and not args.write_baseline and baseline_path:
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return EXIT_USAGE
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    engine = LintEngine(
        rule_classes=rule_classes,
        baseline=baseline,
        repo_root=repo_root,
        dataflow=args.dataflow and bool(dataflow_ids),
        dataflow_rule_ids=dataflow_ids,
        dataflow_cache_dir=cache_dir,
        effects=args.effects and bool(effects_ids),
        effects_rule_ids=effects_ids,
        races=args.races and bool(races_ids),
        races_rule_ids=races_ids,
    )
    result = engine.run([Path(p) for p in args.paths])

    if report_path is not None and result.effects_report is not None:
        report_path.write_text(
            json.dumps(result.effects_report, indent=2, sort_keys=False)
            + "\n",
            encoding="utf-8",
        )
    if races_report_path is not None and result.races_report is not None:
        races_report_path.write_text(
            json.dumps(result.races_report, indent=2, sort_keys=False)
            + "\n",
            encoding="utf-8",
        )

    for display, error in result.parse_errors:
        print(f"{display}: parse error: {error}", file=sys.stderr)
    for display, lineno, token in result.suppression_errors:
        print(
            f"{display}:{lineno}: bad suppression pragma: "
            f"unknown or malformed rule id {token!r}",
            file=sys.stderr,
        )

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        fresh = Baseline.from_findings(
            result.new + result.baselined,
            justification="TODO: justify or fix (auto-generated by --write-baseline)",
        )
        fresh.dump(target)
        print(f"wrote {len(fresh)} finding(s) to {target}")
        return EXIT_CLEAN

    failures = result.failures(strict=args.strict)

    if args.format == "json":
        sys.stdout.write(render_json(result))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(result))
    else:
        shown = list(result.new)
        if args.show_baselined:
            shown += result.baselined
        for finding in shown:
            tag = " (baselined)" if finding in result.baselined else ""
            print(finding.render(show_hint=not args.no_hints) + tag)

        summary = (
            f"repro-lint: {result.files_checked} file(s), "
            f"{len(result.new)} new finding(s), "
            f"{len(result.baselined)} baselined, "
            f"{len(result.suppressed)} suppressed"
        )
        if result.stale_baseline_entries:
            summary += (
                f"; {len(result.stale_baseline_entries)} stale baseline "
                "entry(ies) — prune them"
            )
        print(summary)
        if result.dataflow_stats is not None:
            stats = result.dataflow_stats
            print(
                f"dataflow: {stats.files} file(s) summarized, "
                f"cache {stats.cache_hits} hit(s) / "
                f"{stats.cache_misses} miss(es) "
                f"({stats.hit_rate():.0%} hit rate)"
            )
        if result.effects_stats is not None:
            estats = result.effects_stats
            print(
                f"effects: {estats.files} file(s) summarized, "
                f"cache {estats.cache_hits} hit(s) / "
                f"{estats.cache_misses} miss(es) "
                f"({estats.hit_rate():.0%} hit rate), "
                f"{estats.hot_functions} hot-path function(s)"
            )
        if result.races_stats is not None:
            rstats = result.races_stats
            print(
                f"races: {rstats.files} file(s) summarized, "
                f"cache {rstats.cache_hits} hit(s) / "
                f"{rstats.cache_misses} miss(es) "
                f"({rstats.hit_rate():.0%} hit rate), "
                f"{rstats.members} cohort member(s), "
                f"{rstats.pairs} may-co-schedule pair(s)"
            )

    if result.parse_errors or result.suppression_errors:
        return EXIT_USAGE
    return EXIT_FINDINGS if failures else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
