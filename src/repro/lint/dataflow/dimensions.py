"""Physical-dimension inference for expressions, names and annotations.

A *dimension* here is a coarse unit tag (``"bytes"``, ``"seconds"``,
``"joules"``, ``"watts"``, ``"ratio"``, ``"count"``, plus the scaled
size tags ``"gib"``/``"gb"``/... for values counted in whole units
rather than bytes).  A *base* is the size-constant family an expression
was built from: ``"binary"`` (KiB/MiB/GiB/TiB) or ``"decimal"``
(KB/MB/GB/TB).

Three inference sources, in priority order:

1. annotations — the ``repro.units`` quantity aliases (``Bytes``,
   ``Seconds``, ``Joules``, ``Watts``, ``Ratio``, ``Count``);
2. ``repro.units`` constants appearing in the expression (``3 * GiB``
   is bytes with a binary base);
3. naming conventions (``*_bytes``, ``*_s``, ``*_j``, ``*_gib``, ...).

Rates are deliberately out of the lattice: any name containing
``_per_`` infers nothing, so ``bandwidth_bytes_per_s`` is never
mistaken for seconds.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.lint.rules.base import dotted_name

# Dimension tags ------------------------------------------------------------
BYTES = "bytes"
SECONDS = "seconds"
JOULES = "joules"
WATTS = "watts"
RATIO = "ratio"
COUNT = "count"

#: Base tags for byte quantities.
BINARY = "binary"
DECIMAL = "decimal"

#: (dimension, base) — ``(None, None)`` means "no idea".
Quantity = Tuple[Optional[str], Optional[str]]

UNKNOWN: Quantity = (None, None)

#: repro.units size constants and the base family they belong to.
BINARY_SIZE_CONSTANTS: Set[str] = {"KiB", "MiB", "GiB", "TiB"}
DECIMAL_SIZE_CONSTANTS: Set[str] = {"KB", "MB", "GB", "TB"}

#: repro.units constant name -> dimension.
UNIT_CONSTANT_DIMENSIONS: Dict[str, str] = {
    **{name: BYTES for name in BINARY_SIZE_CONSTANTS},
    **{name: BYTES for name in DECIMAL_SIZE_CONSTANTS},
    "NANOSECOND": SECONDS,
    "MICROSECOND": SECONDS,
    "MILLISECOND": SECONDS,
    "SECOND": SECONDS,
    "MINUTE": SECONDS,
    "HOUR": SECONDS,
    "DAY": SECONDS,
    "YEAR": SECONDS,
    "PICOJOULE": JOULES,
    "NANOJOULE": JOULES,
    "MICROJOULE": JOULES,
    "MILLIJOULE": JOULES,
    "JOULE": JOULES,
    "KWH": JOULES,
    "WATT": WATTS,
    "KILOWATT": WATTS,
    "MEGAWATT": WATTS,
}

#: Name-suffix conventions, longest match first.  Scaled size suffixes
#: get their own dimension tag: passing ``capacity_gib`` (a count of
#: gibibytes) into a ``*_bytes`` parameter is a 2**30x slip even though
#: both are "sizes".
SUFFIX_DIMENSIONS: Tuple[Tuple[str, str], ...] = (
    ("_bytes", BYTES),
    ("_byte", BYTES),
    ("_kib", "kib"),
    ("_mib", "mib"),
    ("_gib", "gib"),
    ("_tib", "tib"),
    ("_kb", "kb"),
    ("_mb", "mb"),
    ("_gb", "gb"),
    ("_tb", "tb"),
    ("_seconds", SECONDS),
    ("_secs", SECONDS),
    ("_sec", SECONDS),
    ("_s", SECONDS),
    ("_ms", "milliseconds"),
    ("_us", "microseconds"),
    ("_ns", "nanoseconds"),
    ("_joules", JOULES),
    ("_j", JOULES),
    ("_pj", "picojoules"),
    ("_watts", WATTS),
    ("_w", WATTS),
    ("_ratio", RATIO),
    ("_fraction", RATIO),
    ("_frac", RATIO),
    ("_probability", RATIO),
    ("_prob", RATIO),
    ("_counts", COUNT),
    ("_count", COUNT),
)

#: ``repro.units`` annotation aliases -> dimension.
ANNOTATION_DIMENSIONS: Dict[str, str] = {
    "Bytes": BYTES,
    "Seconds": SECONDS,
    "Joules": JOULES,
    "Watts": WATTS,
    "Ratio": RATIO,
    "Count": COUNT,
}

#: Dimensions a conflict report can name meaningfully.
_DIMENSION_LABELS: Dict[str, str] = {
    BYTES: "bytes",
    SECONDS: "seconds",
    JOULES: "joules",
    WATTS: "watts",
    RATIO: "a ratio",
    COUNT: "a count",
    "kib": "KiB units",
    "mib": "MiB units",
    "gib": "GiB units",
    "tib": "TiB units",
    "kb": "KB units",
    "mb": "MB units",
    "gb": "GB units",
    "tb": "TB units",
    "milliseconds": "milliseconds",
    "microseconds": "microseconds",
    "nanoseconds": "nanoseconds",
    "picojoules": "picojoules",
}


def describe_dimension(dim: str) -> str:
    return _DIMENSION_LABELS.get(dim, dim)


def dimension_of_name(name: str) -> Optional[str]:
    """Dimension implied by a variable/parameter/field name, or None.

    ``_per_`` anywhere in the name marks a rate, which this lattice
    does not model — better silent than wrong.
    """
    if "_per_" in name or name.endswith("_per"):
        return None
    lowered = name.lower()
    for suffix, dim in SUFFIX_DIMENSIONS:
        if lowered.endswith(suffix) and len(lowered) > len(suffix):
            return dim
    if lowered.startswith(("n_", "num_")) or lowered in ("n", "count"):
        return COUNT
    return None


def dimension_of_annotation(annotation: Optional[ast.expr]) -> Optional[str]:
    """Dimension implied by a ``repro.units`` quantity alias annotation."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return ANNOTATION_DIMENSIONS.get(annotation.value)
    name = dotted_name(annotation)
    if not name:
        return None
    return ANNOTATION_DIMENSIONS.get(name.split(".")[-1])


def _unit_constant(name: str) -> Optional[str]:
    """The repro.units constant a bare or dotted name refers to."""
    tail = name.split(".")[-1]
    if tail in UNIT_CONSTANT_DIMENSIONS:
        return tail
    return None


def bases_in(node: ast.AST) -> Set[str]:
    """Size-constant base families referenced anywhere under ``node``."""
    bases: Set[str] = set()
    for sub in ast.walk(node):
        name = ""
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name in BINARY_SIZE_CONSTANTS:
            bases.add(BINARY)
        elif name in DECIMAL_SIZE_CONSTANTS:
            bases.add(DECIMAL)
    return bases


def base_of(node: ast.AST) -> Optional[str]:
    """The single base family under ``node``, or None (none, or mixed —
    mixing inside one expression is RL002's per-file territory)."""
    bases = bases_in(node)
    if len(bases) == 1:
        return next(iter(bases))
    return None


class ExpressionInferencer:
    """Infers a :data:`Quantity` for an expression.

    ``env`` maps local variable names to previously inferred quantities
    (straight-line assignments only — last write wins, no control-flow
    joins; this is a linter, not a verifier).
    """

    def __init__(self, env: Optional[Dict[str, Quantity]] = None) -> None:
        self.env = env or {}

    # -- leaves -----------------------------------------------------------
    def _name_quantity(self, name: str) -> Quantity:
        constant = _unit_constant(name)
        if constant is not None:
            dim = UNIT_CONSTANT_DIMENSIONS[constant]
            if constant in BINARY_SIZE_CONSTANTS:
                return (dim, BINARY)
            if constant in DECIMAL_SIZE_CONSTANTS:
                return (dim, DECIMAL)
            return (dim, None)
        dim = dimension_of_name(name.split(".")[-1])
        if dim is not None:
            return (dim, None)
        return UNKNOWN

    # -- the recursive walk ----------------------------------------------
    def infer(self, node: ast.AST) -> Quantity:
        if isinstance(node, ast.Name):
            q = self._name_quantity(node.id)
            if q is UNKNOWN and node.id in self.env:
                return self.env[node.id]
            return q
        if isinstance(node, ast.Attribute):
            return self._name_quantity(dotted_name(node) or node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            body, orelse = self.infer(node.body), self.infer(node.orelse)
            return body if body == orelse else UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, (ast.Call, ast.Subscript, ast.Constant)):
            return UNKNOWN
        return UNKNOWN

    def _binop(self, node: ast.BinOp) -> Quantity:
        (ldim, _), (rdim, _) = self.infer(node.left), self.infer(node.right)
        base = base_of(node)
        if isinstance(node.op, ast.Mult):
            dim = self._mult(ldim, rdim)
        elif isinstance(node.op, (ast.Div, ast.FloorDiv)):
            dim = self._div(ldim, rdim)
        elif isinstance(node.op, (ast.Add, ast.Sub)):
            if ldim is not None and rdim is not None:
                dim = ldim if ldim == rdim else None
            else:
                dim = ldim if ldim is not None else rdim
        else:
            dim = None
        return (dim, base)

    @staticmethod
    def _mult(a: Optional[str], b: Optional[str]) -> Optional[str]:
        if {a, b} == {WATTS, SECONDS}:
            return JOULES
        if a == COUNT:
            return b
        if b == COUNT:
            return a
        if a is not None and b is None:
            return a
        if b is not None and a is None:
            return b
        return None

    @staticmethod
    def _div(a: Optional[str], b: Optional[str]) -> Optional[str]:
        if a is not None and b is None:
            return a
        if a is not None and a == b:
            return RATIO
        if a == JOULES and b == SECONDS:
            return WATTS
        if a == JOULES and b == WATTS:
            return SECONDS
        return None


def conflict(a: str, b: str) -> bool:
    """Do two inferred dimensions disagree in a way worth flagging?

    Every pair of *different* known dimensions conflicts except
    count-vs-ratio, which naming conventions cannot reliably tell
    apart (``utilization`` vs ``slots``).
    """
    if a == b:
        return False
    if {a, b} == {COUNT, RATIO}:
        return False
    return True
