"""Interprocedural dataflow analysis for repro-lint (RL012-RL015).

The per-file rules (RL001-RL011) see one expression at a time; the
failure modes that corrupt the paper's numbers *flow*: a function
returns decimal GB into a caller that treats it as GiB, or an RNG is
seeded locally instead of deriving from the sweep's ``SeedSequence``
root.  This package builds a whole-program view on top of the
per-file parses:

- :mod:`~repro.lint.dataflow.extract` reduces each file to a
  :class:`~repro.lint.dataflow.model.FileSummary` — functions, their
  parameter/return dimensions, dataclass fields, resolved call sites,
  RNG constructions and wall-clock calls;
- :mod:`~repro.lint.dataflow.cache` content-hash caches those
  summaries so the in-pytest repo-tree lint stays fast;
- :mod:`~repro.lint.dataflow.linker` stitches summaries into a
  project symbol table and call graph (chasing re-export aliases);
- :mod:`~repro.lint.dataflow.rules` runs the four interprocedural
  rules over the linked program.

Entry point: :func:`run_dataflow` (used by the lint engine) or
:func:`analyze_tree` (standalone, parses files itself — used by the
timing tests and the CI dataflow step).
"""

from __future__ import annotations

from repro.lint.dataflow.model import DATAFLOW_SCHEMA
from repro.lint.dataflow.rules import (
    DATAFLOW_RULE_IDS,
    dataflow_catalog,
)
from repro.lint.dataflow.run import DataflowStats, analyze_tree, run_dataflow

__all__ = [
    "DATAFLOW_SCHEMA",
    "DATAFLOW_RULE_IDS",
    "DataflowStats",
    "analyze_tree",
    "dataflow_catalog",
    "run_dataflow",
]
