"""Content-hash cache for per-file dataflow summaries.

A summary is a pure function of (source bytes, module name, analysis
schema), so the cache key is a hash of exactly those three things.
Change a file — or bump :data:`~repro.lint.dataflow.model.
DATAFLOW_SCHEMA` — and the key changes; stale summaries are never
loaded.  Writes are atomic (temp file + ``os.replace``, the same
pattern as :mod:`repro.parallel.cache`) so an interrupted lint never
leaves a truncated entry; unreadable entries count as misses and are
overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.lint.dataflow.model import DATAFLOW_SCHEMA, FileSummary

#: Default cache directory name, created under the repo root.
DEFAULT_CACHE_DIR_NAME = ".repro-lint-cache"


def summary_key(source: str, module: str, path: str) -> str:
    """Content address of one file's summary.

    The display path is part of the key (findings embed it), so two
    identical files at different paths never share an entry; paths are
    repo-relative, so moving the checkout does not invalidate anything.
    """
    digest = hashlib.sha256()
    digest.update(
        f"schema={DATAFLOW_SCHEMA}\nmodule={module}\npath={path}\n".encode()
    )
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class SummaryCache:
    """On-disk summary store rooted at ``directory``.

    ``directory=None`` disables persistence: every lookup is a miss and
    writes are dropped (used by tests that need a guaranteed cold run).
    """

    def __init__(self, directory: Optional[os.PathLike]) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        # Two-level fan-out keeps directories small on big trees.
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[FileSummary]:
        if self.directory is None:
            self.misses += 1
            return None
        try:
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
            summary = FileSummary.from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if summary.schema != DATAFLOW_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, key: str, summary: FileSummary) -> None:
        if self.directory is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(summary.to_json(), separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- accounting --------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests
