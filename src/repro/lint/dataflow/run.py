"""Orchestration: summarize (with caching), link, check.

Two entry points:

- :func:`run_dataflow` — the lint engine's path.  Takes files the
  engine has already parsed (re-using its trees on cold extraction)
  and returns findings plus cache statistics.
- :func:`analyze_tree` — standalone.  Discovers and parses files
  itself; used by the CI dataflow step and the warm-vs-cold timing
  tests, where "cold" must include the parse cost a fresh process
  would pay.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.dataflow.cache import SummaryCache, summary_key
from repro.lint.dataflow.extract import extract_summary
from repro.lint.dataflow.linker import Program
from repro.lint.dataflow.model import FileSummary
from repro.lint.dataflow.rules import check_program
from repro.lint.findings import Finding, sort_findings


@dataclass
class DataflowStats:
    """What one dataflow pass did (surfaced by the CLI and CI)."""

    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


#: One input file: (display_path, module, source, optional parsed tree).
FileEntry = Tuple[str, str, str, Optional[ast.Module]]


def summarize_files(
    entries: Iterable[FileEntry], cache: SummaryCache
) -> List[FileSummary]:
    summaries: List[FileSummary] = []
    for display_path, module, source, tree in entries:
        key = summary_key(source, module, display_path)
        summary = cache.get(key)
        if summary is None:
            try:
                summary = extract_summary(display_path, module, source, tree)
            except SyntaxError:
                continue  # the engine reports parse errors separately
            cache.put(key, summary)
        summaries.append(summary)
    return summaries


def run_dataflow(
    entries: Sequence[FileEntry],
    cache_dir: Optional[Path] = None,
    rule_ids: Optional[Set[str]] = None,
) -> Tuple[List[Finding], DataflowStats]:
    """Summarize ``entries`` (cache-aware), link, and run RL012-RL015.

    Findings come back sorted and with ``source_line`` filled from the
    entry sources, so suppression and baseline fingerprinting work
    exactly as they do for per-file rules.
    """
    cache = SummaryCache(cache_dir)
    summaries = summarize_files(entries, cache)
    program = Program(summaries)
    findings = check_program(program, rule_ids)

    lines_by_path = {
        display_path: source.splitlines()
        for display_path, _, source, _ in entries
    }
    located: List[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, [])
        source_line = (
            lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
        )
        located.append(
            Finding(
                rule_id=finding.rule_id,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                fix_hint=finding.fix_hint,
                source_line=source_line,
            )
        )
    stats = DataflowStats(
        files=len(summaries),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
    return sort_findings(located), stats


def analyze_tree(
    paths: Sequence[Path],
    cache_dir: Optional[Path] = None,
    rule_ids: Optional[Set[str]] = None,
    repo_root: Optional[Path] = None,
) -> Tuple[List[Finding], DataflowStats]:
    """Standalone dataflow run: discover, read, summarize, check.

    Trees are passed as None, so extraction parses each file only on a
    cache miss — on a warm cache the parse (and every AST walk) is
    skipped entirely, which is what makes the warm run a small fraction
    of the cold one.
    """
    # Imported here: engine imports this package, not the reverse.
    from repro.lint.engine import _display_path, discover_files
    from repro.lint.imports import module_name_for

    entries: List[FileEntry] = []
    for path in discover_files([Path(p) for p in paths]):
        display = _display_path(path, repo_root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        module = module_name_for(path) or ""
        entries.append((display, module, source, None))
    return run_dataflow(entries, cache_dir=cache_dir, rule_ids=rule_ids)
