"""The interprocedural rules: RL012-RL015.

Each checker walks the linked :class:`~repro.lint.dataflow.linker.
Program` and yields :class:`~repro.lint.findings.Finding` objects
anchored at the *call site* (the place a human would edit).  Functions
are visited in sorted qualname order and call sites in source order,
so reports are deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.dataflow import dimensions as dims
from repro.lint.dataflow.linker import Program
from repro.lint.dataflow.model import (
    CallInfo,
    FunctionSummary,
    PROV_LITERAL,
    PROV_UNSEEDED,
)
from repro.lint.findings import Finding, Severity

#: Packages whose code a sweep's per-point SeedSequence must govern.
RNG_SCOPE_PACKAGES: Tuple[str, ...] = ("repro.sim", "repro.workload", "repro.faults")

DATAFLOW_RULE_IDS: Tuple[str, ...] = ("RL012", "RL013", "RL014", "RL015")

_SUMMARIES: Dict[str, str] = {
    "RL012": (
        "cross-function dimension conflict: an argument or returned value's "
        "inferred dimension (bytes, seconds, joules, ...) disagrees with the "
        "callee parameter / assignment target"
    ),
    "RL013": (
        "binary (GiB) and decimal (GB) byte bases mixed across a call "
        "boundary — the interprocedural RL002"
    ),
    "RL014": (
        "RNG not derived from a seed/SeedSequence parameter reaches "
        "sim/workload/faults code (pinned literal seed, or entropy through "
        "a helper's seed=None default) — the interprocedural RL003"
    ),
    "RL015": (
        "sim process transitively reaches a wall-clock or blocking call "
        "through helpers — the interprocedural RL004/RL007"
    ),
}


def dataflow_catalog() -> Dict[str, str]:
    """``{rule_id: summary}`` merged into ``--list-rules``."""
    return dict(_SUMMARIES)


def _finding(
    rule_id: str,
    path: str,
    lineno: int,
    col: int,
    message: str,
    fix_hint: str,
) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=path,
        line=lineno,
        col=col,
        message=message,
        fix_hint=fix_hint or f"or suppress: # repro-lint: disable={rule_id}",
    )


def _short(qualname: str) -> str:
    """Last two components: ``repro.energy.model.f`` -> ``model.f``."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


# ---------------------------------------------------------------------------
# RL012 — cross-function dimension conflicts
# ---------------------------------------------------------------------------
def check_dimension_conflicts(program: Program) -> Iterator[Finding]:
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        path = program.path_of_function.get(qualname, "")
        for call in fn.calls:
            resolved = program.resolve(call.callee)
            if not resolved:
                continue
            params = program.callee_params(resolved)
            if params:
                for param, arg in program.bind(params, call):
                    arg_dim = arg.dimension
                    if arg_dim is None and arg.call:
                        inner = program.resolve(arg.call)
                        if inner:
                            arg_dim, _ = program.return_quantity(inner)
                    if (
                        param.dimension is not None
                        and arg_dim is not None
                        and dims.conflict(param.dimension, arg_dim)
                    ):
                        yield _finding(
                            "RL012",
                            path,
                            call.lineno,
                            call.col,
                            f"argument `{arg.text}` ({dims.describe_dimension(arg_dim)}) "
                            f"flows into parameter `{param.name}` "
                            f"({dims.describe_dimension(param.dimension)}) of "
                            f"{_short(resolved)}()",
                            "convert at the boundary (repro.units) or rename "
                            "the parameter to match what it actually receives",
                        )
            # Return value consumed under a conflicting name.
            if call.target_dimension is not None:
                ret_dim, _ = program.return_quantity(resolved)
                if ret_dim is not None and dims.conflict(
                    call.target_dimension, ret_dim
                ):
                    yield _finding(
                        "RL012",
                        path,
                        call.lineno,
                        call.col,
                        f"{_short(resolved)}() returns "
                        f"{dims.describe_dimension(ret_dim)} but is assigned to "
                        f"`{call.target_text}` "
                        f"({dims.describe_dimension(call.target_dimension)})",
                        "convert the return value or rename the target",
                    )


# ---------------------------------------------------------------------------
# RL013 — byte-base mixing across call boundaries
# ---------------------------------------------------------------------------
def check_base_conflicts(program: Program) -> Iterator[Finding]:
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        path = program.path_of_function.get(qualname, "")
        for call in fn.calls:
            resolved = program.resolve(call.callee)
            if not resolved:
                continue
            params = program.callee_params(resolved)
            if params:
                for param, arg in program.bind(params, call):
                    arg_base = arg.base
                    if arg_base is None and arg.call:
                        inner = program.resolve(arg.call)
                        if inner:
                            _, arg_base = program.return_quantity(inner)
                    if (
                        param.base is not None
                        and arg_base is not None
                        and param.base != arg_base
                    ):
                        yield _finding(
                            "RL013",
                            path,
                            call.lineno,
                            call.col,
                            f"argument `{arg.text}` is built from "
                            f"{arg_base} size constants but {_short(resolved)}() "
                            f"treats `{param.name}` as {param.base} "
                            "— a silent ~2-10% capacity error across the call",
                            "pick one base for the boundary and convert "
                            "explicitly (repro.units)",
                        )
            # The call's result mixed with the other base in the
            # caller's own arithmetic: reserved_gib() + 4 * GB.
            if call.expr_bases:
                _, ret_base = program.return_quantity(resolved)
                if ret_base is not None:
                    others = [b for b in call.expr_bases if b != ret_base]
                    if others:
                        yield _finding(
                            "RL013",
                            path,
                            call.lineno,
                            call.col,
                            f"{_short(resolved)}() returns a {ret_base}-base "
                            f"byte count, mixed here with {others[0]} size "
                            "constants — the per-file RL002 cannot see across "
                            "the call",
                            "convert the return value at the boundary",
                        )


# ---------------------------------------------------------------------------
# RL014 — seed provenance
# ---------------------------------------------------------------------------
def _rng_scope(program: Program) -> Set[str]:
    """Functions whose RNGs a sweep's SeedSequence must govern: every
    function in the sim/workload/faults packages plus everything they
    transitively call."""
    seeds: Set[str] = set()
    scope_paths = {
        path
        for module, path in program.path_of_module.items()
        if any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in RNG_SCOPE_PACKAGES
        )
    }
    for qualname, path in program.path_of_function.items():
        if path in scope_paths and qualname in program.functions:
            seeds.add(qualname)
    return program.reachable_from(seeds)


def check_seed_provenance(program: Program) -> Iterator[Finding]:
    scope = _rng_scope(program)
    for qualname in sorted(scope):
        fn = program.functions.get(qualname)
        if fn is None:
            continue
        path = program.path_of_function.get(qualname, "")
        for event in fn.rng_events:
            if event.provenance == PROV_LITERAL:
                yield _finding(
                    "RL014",
                    path,
                    event.lineno,
                    event.col,
                    f"`{event.text}` pins a literal seed inside code a sweep "
                    "point executes — every point draws the same stream, "
                    "breaking the serial==parallel identity",
                    "derive the generator from a seed/SeedSequence parameter "
                    "(see repro.parallel.seeds)",
                )
            elif event.provenance == PROV_UNSEEDED and event.seed_text:
                yield _finding(
                    "RL014",
                    path,
                    event.lineno,
                    event.col,
                    f"`{event.text}` is seeded with None — OS entropy, a "
                    "different stream every run",
                    "derive the generator from a seed/SeedSequence parameter",
                )
        for call in fn.calls:
            prov, seed_name = program.effective_rng_at_call(call)
            if prov == PROV_UNSEEDED:
                yield _finding(
                    "RL014",
                    path,
                    call.lineno,
                    call.col,
                    f"call to RNG factory {_short(program.resolve(call.callee))}() "
                    f"leaves `{seed_name}` unset (defaults to None) — the "
                    "generator is entropy-seeded, untraceable to the sweep's "
                    "SeedSequence root",
                    f"pass {seed_name}= derived from the caller's seed "
                    "parameter",
                )
            elif prov == PROV_LITERAL:
                yield _finding(
                    "RL014",
                    path,
                    call.lineno,
                    call.col,
                    f"call to RNG factory {_short(program.resolve(call.callee))}() "
                    f"pins `{seed_name}` to a literal — every sweep point "
                    "shares one stream",
                    f"thread the point's seed into {seed_name}=",
                )


# ---------------------------------------------------------------------------
# RL015 — sim processes reaching wall clocks / blocking calls via helpers
# ---------------------------------------------------------------------------
def _taint_map(program: Program) -> Dict[str, Tuple[str, str]]:
    """qualname -> (next hop qualname or '', terminal wall-call name)
    for every function that directly or transitively reaches a
    wall-clock/blocking call."""
    taint: Dict[str, Tuple[str, str]] = {}
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        if fn.wall_calls:
            taint[qualname] = ("", fn.wall_calls[0].name)
    edges = program.call_edges()
    changed = True
    while changed:
        changed = False
        for caller in sorted(edges):
            if caller in taint:
                continue
            for call, callee in edges[caller]:
                if callee in taint:
                    taint[caller] = (callee, taint[callee][1])
                    changed = True
                    break
    return taint


def _chain(start: str, taint: Dict[str, Tuple[str, str]]) -> str:
    hops: List[str] = []
    current: Optional[str] = start
    for _ in range(16):
        if current is None or current not in taint:
            break
        hops.append(_short(current))
        nxt, terminal = taint[current]
        if not nxt:
            hops.append(f"{terminal}()")
            break
        current = nxt
    return " -> ".join(hops)


def check_process_purity(program: Program) -> Iterator[Finding]:
    taint = _taint_map(program)
    edges = program.call_edges()
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        if not fn.is_sim_process:
            continue
        path = program.path_of_function.get(qualname, "")
        for call, callee in edges.get(qualname, []):
            if callee not in taint:
                continue
            yield _finding(
                "RL015",
                path,
                call.lineno,
                call.col,
                f"sim process {_short(qualname)} calls "
                f"{_short(callee)}(), which reaches "
                f"{_chain(callee, taint)} — between events a process runs "
                "at a frozen simulated instant",
                "model the delay with Timeout / pass time in explicitly; "
                "the helper must not touch the real clock",
            )


_CHECKERS = {
    "RL012": check_dimension_conflicts,
    "RL013": check_base_conflicts,
    "RL014": check_seed_provenance,
    "RL015": check_process_purity,
}


def check_program(
    program: Program, rule_ids: Optional[Set[str]] = None
) -> List[Finding]:
    """Run the selected dataflow rules; deterministic order, deduped."""
    wanted = set(rule_ids) if rule_ids is not None else set(DATAFLOW_RULE_IDS)
    findings: List[Finding] = []
    seen: Set[Tuple[str, str, int, int, str]] = set()
    for rule_id in DATAFLOW_RULE_IDS:
        if rule_id not in wanted:
            continue
        for finding in _CHECKERS[rule_id](program):
            key = (
                finding.rule_id,
                finding.path,
                finding.line,
                finding.col,
                finding.message,
            )
            if key in seen:
                continue
            seen.add(key)
            findings.append(finding)
    return findings
