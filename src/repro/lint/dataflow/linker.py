"""Stitch per-file summaries into a whole-program view.

The linker owns everything extraction could not know file-locally:

- **alias chasing** — ``repro.workload.ArrivalProcess`` (a package
  re-export) resolves to ``repro.workload.requests.ArrivalProcess``
  by following each file's import-alias edges to a real definition;
- **the call graph** — resolved call edges between function summaries,
  with forward/backward reachability used for RL014's scope and
  RL015's taint;
- **return-quantity and RNG-provenance resolution** — chasing
  ``return helper(x)`` chains with memoization and cycle guards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lint.dataflow.model import (
    ArgInfo,
    CallInfo,
    ClassSummary,
    FileSummary,
    FunctionSummary,
    ParamInfo,
    PROV_DERIVED,
    PROV_LITERAL,
    PROV_UNKNOWN,
    PROV_UNSEEDED,
)
from repro.lint.dataflow.extract import SEED_PARAM_NAMES

_MAX_ALIAS_HOPS = 16
_MAX_RETURN_CHASE = 8


class Program:
    """The linked program: symbol tables plus resolution services."""

    def __init__(self, summaries: List[FileSummary]) -> None:
        self.summaries = summaries
        #: fq function name -> summary.
        self.functions: Dict[str, FunctionSummary] = {}
        #: fq class name -> summary.
        self.classes: Dict[str, ClassSummary] = {}
        #: fq local name -> fq target (import/re-export edges).
        self.alias_edges: Dict[str, str] = {}
        #: display path by module, for findings.
        self.path_of_module: Dict[str, str] = {}
        #: owning file path by function qualname.
        self.path_of_function: Dict[str, str] = {}
        for summary in summaries:
            if summary.module:
                self.path_of_module[summary.module] = summary.path
            for fn in summary.functions:
                self.functions[fn.qualname] = fn
                self.path_of_function[fn.qualname] = summary.path
            for klass in summary.classes:
                self.classes[klass.qualname] = klass
                self.path_of_function[klass.qualname] = summary.path
            if summary.module:
                for alias, target in summary.aliases.items():
                    self.alias_edges[f"{summary.module}.{alias}"] = target
        self._return_quantity_cache: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        self._rng_provenance_cache: Dict[str, Tuple[str, str]] = {}
        self._edges: Optional[Dict[str, List[Tuple[CallInfo, str]]]] = None

    # -- name resolution ---------------------------------------------------
    def resolve(self, name: str) -> str:
        """Chase alias edges until ``name`` names a known function or
        class (or a method of a known class); '' when unresolvable."""
        current = name
        for _ in range(_MAX_ALIAS_HOPS):
            if current in self.functions or current in self.classes:
                return current
            # `Alias.method` where Alias itself is re-exported.
            head, _, tail = current.rpartition(".")
            if head in self.alias_edges and tail:
                current = f"{self.alias_edges[head]}.{tail}"
                continue
            if current in self.alias_edges:
                current = self.alias_edges[current]
                continue
            return ""
        return ""

    def callee_params(self, resolved: str) -> Optional[List[ParamInfo]]:
        """The parameter list a call binds against: a function's params
        or a class's constructor surface.  None for unknown callees."""
        if resolved in self.functions:
            return self.functions[resolved].params
        if resolved in self.classes:
            return self.classes[resolved].init_params
        return None

    # -- call-site argument binding ---------------------------------------
    @staticmethod
    def bind(
        params: List[ParamInfo], call: CallInfo
    ) -> List[Tuple[ParamInfo, ArgInfo]]:
        """Pair call arguments with callee parameters (positional by
        index, keywords by name; unmatched args are skipped)."""
        by_name = {p.name: p for p in params}
        bound: List[Tuple[ParamInfo, ArgInfo]] = []
        for arg in call.args:
            if arg.keyword:
                param = by_name.get(arg.keyword)
                if param is not None:
                    bound.append((param, arg))
            elif 0 <= arg.position < len(params):
                bound.append((params[arg.position], arg))
        return bound

    # -- return-quantity resolution ---------------------------------------
    def return_quantity(self, resolved: str) -> Tuple[Optional[str], Optional[str]]:
        """(dimension, base) of a callable's return value, chasing
        ``return helper(...)`` forwarding with a cycle guard."""
        if resolved in self._return_quantity_cache:
            return self._return_quantity_cache[resolved]
        self._return_quantity_cache[resolved] = (None, None)  # cycle guard
        dim: Optional[str] = None
        base: Optional[str] = None
        seen: Set[str] = set()
        current = resolved
        for _ in range(_MAX_RETURN_CHASE):
            fn = self.functions.get(current)
            if fn is None or current in seen:
                break
            seen.add(current)
            dim = dim or fn.return_dimension
            base = base or fn.return_base
            if dim is not None and base is not None:
                break
            if not fn.returns_call:
                break
            current = self.resolve(fn.returns_call)
            if not current:
                break
        self._return_quantity_cache[resolved] = (dim, base)
        return dim, base

    # -- RNG factory resolution -------------------------------------------
    def rng_factory_provenance(self, resolved: str) -> Tuple[str, str]:
        """('' , '') when ``resolved`` does not return an RNG; else the
        provenance tag of the RNG it builds plus its seed parameter name
        (for PROV_DERIVED factories)."""
        if resolved in self._rng_provenance_cache:
            return self._rng_provenance_cache[resolved]
        self._rng_provenance_cache[resolved] = ("", "")  # cycle guard
        result: Tuple[str, str] = ("", "")
        fn = self.functions.get(resolved)
        if fn is not None:
            if fn.returns_rng:
                result = (fn.returns_rng, fn.rng_seed_param)
            elif fn.returns_call:
                inner = self.resolve(fn.returns_call)
                if inner:
                    prov, _ = self.rng_factory_provenance(inner)
                    if prov:
                        # A chained factory: we cannot track how the
                        # seed threads through, so only a definitely
                        # bad inner provenance survives the chain.
                        result = (
                            (prov, "")
                            if prov in (PROV_LITERAL, PROV_UNSEEDED)
                            else (PROV_UNKNOWN, "")
                        )
        self._rng_provenance_cache[resolved] = result
        return result

    def effective_rng_at_call(
        self, call: CallInfo
    ) -> Tuple[str, str]:
        """Provenance of the RNG a call to a factory produces at *this*
        site, accounting for which seed argument the caller passed.

        Returns ``("", "")`` when the callee is not an RNG factory or
        when the site is fine (seed derived / defaulted to a literal).
        The second element names the factory's seed parameter, for
        messages.
        """
        resolved = self.resolve(call.callee)
        if not resolved:
            return "", ""
        prov, seed_param = self.rng_factory_provenance(resolved)
        if not prov:
            return "", ""
        if prov in (PROV_LITERAL, PROV_UNSEEDED):
            # The factory pins or drops the seed no matter what the
            # caller passes — that is flagged once, at the factory's own
            # construction site, not at every call.
            return "", ""
        if prov != PROV_DERIVED:
            return "", ""
        fn = self.functions.get(resolved)
        if fn is None:
            return "", ""
        params = fn.params
        seed_name = seed_param or next(
            (p.name for p in params if p.name in SEED_PARAM_NAMES), ""
        )
        if not seed_name:
            return "", ""
        bound = {p.name: a for p, a in self.bind(params, call)}
        arg = bound.get(seed_name)
        if arg is not None:
            if arg.rng in (PROV_LITERAL, PROV_UNSEEDED):
                return arg.rng, seed_name
            return "", ""
        # Seed omitted: the factory's default decides.
        param = next((p for p in params if p.name == seed_name), None)
        if param is not None and param.default_is_none:
            return PROV_UNSEEDED, seed_name
        return "", ""

    # -- call graph --------------------------------------------------------
    def call_edges(self) -> Dict[str, List[Tuple[CallInfo, str]]]:
        """caller qualname -> [(call site, resolved callee qualname)],
        computed once and memoized."""
        if self._edges is not None:
            return self._edges
        edges: Dict[str, List[Tuple[CallInfo, str]]] = {}
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            out: List[Tuple[CallInfo, str]] = []
            for call in fn.calls:
                resolved = self.resolve(call.callee)
                if not resolved:
                    continue
                targets: List[str] = []
                if resolved in self.functions:
                    targets.append(resolved)
                elif resolved in self.classes:
                    # Constructing a class executes its __init__.
                    init = f"{resolved}.__init__"
                    if init in self.functions:
                        targets.append(init)
                for target in targets:
                    out.append((call, target))
            if out:
                edges[qualname] = out
        self._edges = edges
        return edges

    def reachable_from(self, seeds: Set[str]) -> Set[str]:
        """Functions transitively callable from ``seeds`` (inclusive)."""
        edges = self.call_edges()
        closure = set(seeds)
        frontier = list(seeds)
        while frontier:
            current = frontier.pop()
            for _, callee in edges.get(current, []):
                if callee not in closure:
                    closure.add(callee)
                    frontier.append(callee)
        return closure
