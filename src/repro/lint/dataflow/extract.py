"""Reduce one parsed file to a :class:`FileSummary`.

Extraction is deliberately file-local: the only inputs are the source
text and the module's dotted name, so the result can be content-hash
cached.  Name resolution uses the file's own imports (``from
repro.workload.requests import ArrivalProcess`` makes the bare name
resolvable here); chasing re-export chains across files is the
linker's job.

Precision stance: this is a linter, so the inferencer prefers silence
over guessing — straight-line local assignments are tracked (last
write wins), control flow is not joined, and anything ambiguous
infers ``None`` and can never produce a finding.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.dataflow import dimensions as dims
from repro.lint.dataflow.model import (
    ArgInfo,
    CallInfo,
    ClassSummary,
    FileSummary,
    FunctionSummary,
    ParamInfo,
    RngEvent,
    WallCall,
    PROV_DERIVED,
    PROV_LITERAL,
    PROV_UNKNOWN,
    PROV_UNSEEDED,
)
from repro.lint.rules.base import dotted_name
from repro.lint.rules.determinism import _WALL_CLOCK_CALLS
from repro.lint.rules.simhygiene import BLOCKING_CALLS, COMMAND_CONSTRUCTORS

#: Parameter names that identify the seed input of an RNG factory.
SEED_PARAM_NAMES: Set[str] = {
    "seed",
    "root_seed",
    "seed_seq",
    "seed_sequence",
    "rng",
    "generator",
}

#: Constructor names that build a generator (after alias resolution).
_RNG_CTOR_TAILS: Tuple[str, ...] = (
    "random.default_rng",
    "random.RandomState",
)

#: Helpers whose result is seed-derived by construction.
_SEED_DERIVING_TAILS: Set[str] = {"SeedSequence", "spawn", "spawn_seeds"}

_MAX_SNIPPET = 48


def _snippet(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""
    return text if len(text) <= _MAX_SNIPPET else text[: _MAX_SNIPPET - 3] + "..."


def build_aliases(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name -> fully-qualified dotted target, from this file's
    imports (relative imports resolved against ``module``'s package)."""
    package_parts = module.split(".")[:-1] if module else []
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # `import a.b` binds `a`; attribute chains keep the path.
                    head = alias.name.split(".")[0]
                    aliases.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - (node.level - 1)]
                prefix = ".".join(base)
                if node.module:
                    prefix = f"{prefix}.{node.module}" if prefix else node.module
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{prefix}.{alias.name}"
    return aliases


class _NameResolver:
    """Resolves a dotted name written in this file to a fully-qualified
    candidate, using imports, module-level definitions, and (for
    ``self.x``) the enclosing class."""

    def __init__(
        self, module: str, aliases: Dict[str, str], local_defs: Set[str]
    ) -> None:
        self.module = module
        self.aliases = aliases
        self.local_defs = local_defs

    def resolve(self, name: str, class_ctx: str = "") -> str:
        if not name:
            return ""
        head, _, rest = name.partition(".")
        if head in ("self", "cls") and class_ctx:
            if rest and "." not in rest:
                return f"{class_ctx}.{rest}"
            return ""
        if head in self.aliases:
            target = self.aliases[head]
            return f"{target}.{rest}" if rest else target
        if head in self.local_defs and self.module:
            return f"{self.module}.{name}"
        return ""


def _param_infos(
    args: ast.arguments, is_method: bool
) -> List[ParamInfo]:
    """ParamInfo list in binding order (``self``/``cls`` dropped)."""
    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[ast.expr]] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    infos: List[ParamInfo] = []
    for arg, default in zip(positional, defaults):
        infos.append(_one_param(arg, default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        infos.append(_one_param(arg, default))
    if is_method and infos and infos[0].name in ("self", "cls"):
        infos = infos[1:]
    return infos


def _one_param(arg: ast.arg, default: Optional[ast.expr]) -> ParamInfo:
    dim = dims.dimension_of_annotation(arg.annotation)
    if dim is None:
        dim = dims.dimension_of_name(arg.arg)
    return ParamInfo(
        name=arg.arg,
        dimension=dim,
        has_default=default is not None,
        default_is_none=isinstance(default, ast.Constant)
        and default.value is None,
    )


def _own_nodes(root: ast.AST) -> List[ast.AST]:
    """Nodes belonging to ``root``'s body in source order, stopping at
    nested function/class boundaries (they get their own summaries)."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(reversed(list(ast.iter_child_nodes(root))))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        out.append(node)
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
    return out


def _parent_map(nodes: Sequence[ast.AST]) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in nodes:
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _maximal_binop(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> Optional[ast.BinOp]:
    """The outermost BinOp enclosing ``node``, or None."""
    top: Optional[ast.BinOp] = None
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.BinOp):
            top = current
        elif top is not None:
            break
        current = parents.get(current)
    return top


def _bases_excluding(root: ast.AST, excluded: ast.AST) -> List[str]:
    """Size-constant bases under ``root``, skipping the ``excluded``
    subtree (so a call's own arguments don't count as 'mixed with' its
    result)."""
    bases: Set[str] = set()
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if node is excluded:
            continue
        name = ""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in dims.BINARY_SIZE_CONSTANTS:
            bases.add(dims.BINARY)
        elif name in dims.DECIMAL_SIZE_CONSTANTS:
            bases.add(dims.DECIMAL)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(bases)


class _FunctionExtractor:
    """Summarizes one function body (or the module's top-level code)."""

    def __init__(
        self,
        resolver: _NameResolver,
        qualname: str,
        node: Optional[ast.AST],
        params: List[ParamInfo],
        is_method: bool,
        class_ctx: str,
    ) -> None:
        self.resolver = resolver
        self.class_ctx = class_ctx
        self.param_names = {p.name for p in params}
        if is_method:
            self.param_names |= {"self", "cls"}
        self.env: Dict[str, dims.Quantity] = {}
        #: local var -> (provenance, seed_param) for rng-valued locals.
        self.env_rng: Dict[str, Tuple[str, str]] = {}
        #: local var -> True when the value derives from a seed param.
        self.env_seed_derived: Set[str] = set()
        self.inferencer = dims.ExpressionInferencer(self.env)
        self.summary = FunctionSummary(
            qualname=qualname,
            lineno=getattr(node, "lineno", 0) if node is not None else 0,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            is_method=is_method,
            params=params,
        )

    # -- seed/rng classification ------------------------------------------
    def _names_in(self, node: ast.AST) -> Set[str]:
        return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}

    def classify_seed_expr(self, node: Optional[ast.AST]) -> Tuple[str, str]:
        """(provenance, seed_param) of a seed-like expression."""
        if node is None:
            return PROV_UNSEEDED, ""
        if isinstance(node, ast.Constant):
            if node.value is None:
                return PROV_UNSEEDED, ""
            return PROV_LITERAL, ""
        names = self._names_in(node)
        param_hits = sorted(names & self.param_names)
        if param_hits:
            hit = next((p for p in param_hits if p not in ("self", "cls")), "")
            return PROV_DERIVED, hit
        if names & self.env_seed_derived:
            return PROV_DERIVED, ""
        for name in names:
            if name in self.env_rng:
                return self.env_rng[name][0], self.env_rng[name][1]
        if not names:
            # Pure-constant arithmetic (e.g. SeedSequence(2**32 - 1)).
            return PROV_LITERAL, ""
        return PROV_UNKNOWN, ""

    def _rng_ctor(self, call: ast.Call) -> bool:
        raw = dotted_name(call.func)
        if not raw:
            return False
        resolved = self.resolver.resolve(raw, self.class_ctx) or raw
        if resolved == "random.Random" or raw == "random.Random":
            return True
        return resolved.endswith(_RNG_CTOR_TAILS) or raw.endswith(_RNG_CTOR_TAILS)

    def _seed_expr_of_ctor(self, call: ast.Call) -> Optional[ast.expr]:
        if call.args:
            return call.args[0]
        for kw in call.keywords:
            if kw.arg in ("seed", "x"):
                return kw.value
        return None

    def classify_value(self, node: ast.AST) -> Tuple[str, str]:
        """Seed provenance of an arbitrary value expression: an rng
        construction classifies its seed; a seed-ish derivation
        (SeedSequence/.spawn) classifies its inputs; a bare name looks
        up the local environment."""
        if isinstance(node, ast.Call):
            if self._rng_ctor(node):
                return self.classify_seed_expr(self._seed_expr_of_ctor(node))
            tail = dotted_name(node.func).split(".")[-1]
            if tail in _SEED_DERIVING_TAILS:
                if not node.args and not node.keywords:
                    return PROV_UNSEEDED, ""
                provs = [self.classify_seed_expr(a) for a in node.args] + [
                    self.classify_seed_expr(k.value) for k in node.keywords
                ]
                for wanted in (PROV_DERIVED, PROV_UNSEEDED, PROV_UNKNOWN):
                    for prov, param in provs:
                        if prov == wanted:
                            return prov, param
                return PROV_LITERAL, ""
        return self.classify_seed_expr(node)

    # -- the walk ----------------------------------------------------------
    def run(self, root: ast.AST) -> FunctionSummary:
        nodes = _own_nodes(root)
        parents = _parent_map(nodes)
        returns: List[ast.Return] = []
        yields: List[ast.Yield] = []
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._track_assignment(node)
            elif isinstance(node, ast.Return):
                returns.append(node)
            elif isinstance(node, ast.Yield):
                yields.append(node)
            if isinstance(node, ast.Call):
                self._record_call(node, parents)
        self._finish_returns(returns)
        self._finish_sim_process(yields)
        self._infer_param_bases(nodes)
        return self.summary

    def _assign_targets(self, node: ast.AST) -> List[str]:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]  # type: ignore[attr-defined]
        names: List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
        return names

    def _track_assignment(self, node: ast.AST) -> None:
        value = getattr(node, "value", None)
        if value is None:
            return
        names = self._assign_targets(node)
        if not names:
            return
        quantity = self.inferencer.infer(value)
        prov, seed_param = self.classify_value(value)
        is_rng = isinstance(value, ast.Call) and self._rng_ctor(value)
        tail = (
            dotted_name(value.func).split(".")[-1]
            if isinstance(value, ast.Call)
            else ""
        )
        seed_derived = prov == PROV_DERIVED or (
            isinstance(value, ast.AST)
            and bool(self._names_in(value) & (self.param_names | self.env_seed_derived))
        )
        for name in names:
            if quantity != dims.UNKNOWN:
                self.env[name] = quantity
            if is_rng or tail in _SEED_DERIVING_TAILS:
                self.env_rng[name] = (prov, seed_param)
            if seed_derived:
                self.env_seed_derived.add(name)

    def _record_call(
        self, node: ast.Call, parents: Dict[ast.AST, ast.AST]
    ) -> None:
        raw = dotted_name(node.func)
        resolved = self.resolver.resolve(raw, self.class_ctx)
        # Direct wall-clock / blocking calls (RL015's taint sources).
        if raw in _WALL_CLOCK_CALLS or raw in BLOCKING_CALLS:
            self.summary.wall_calls.append(
                WallCall(name=raw, lineno=node.lineno, col=node.col_offset)
            )
        # Direct RNG constructions (RL014's direct events).
        if self._rng_ctor(node):
            seed_expr = self._seed_expr_of_ctor(node)
            prov, _ = self.classify_seed_expr(seed_expr)
            self.summary.rng_events.append(
                RngEvent(
                    lineno=node.lineno,
                    col=node.col_offset,
                    provenance=prov,
                    text=_snippet(node),
                    seed_text=_snippet(seed_expr) if seed_expr is not None else "",
                )
            )
        if not resolved:
            return
        info = CallInfo(
            callee=resolved,
            callee_text=raw,
            lineno=node.lineno,
            col=node.col_offset,
        )
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            info.args.append(self._arg_info(arg, position=position))
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs
                continue
            info.args.append(self._arg_info(kw.value, keyword=kw.arg))
        top = _maximal_binop(node, parents)
        if top is not None:
            info.expr_bases = _bases_excluding(top, node)
        parent = parents.get(node)
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            names = self._assign_targets(parent)
            if names:
                info.target_text = names[0]
                info.target_dimension = dims.dimension_of_name(names[0])
            elif isinstance(parent, ast.Assign) and isinstance(
                parent.targets[0], ast.Attribute
            ):
                info.target_text = parent.targets[0].attr
                info.target_dimension = dims.dimension_of_name(
                    parent.targets[0].attr
                )
        self.summary.calls.append(info)

    def _arg_info(
        self, node: ast.expr, position: int = -1, keyword: str = ""
    ) -> ArgInfo:
        dim, base = self.inferencer.infer(node)
        prov, _ = self.classify_value(node)
        inner_call = ""
        if isinstance(node, ast.Call):
            inner_call = self.resolver.resolve(
                dotted_name(node.func), self.class_ctx
            )
        return ArgInfo(
            position=position,
            keyword=keyword,
            dimension=dim,
            base=base,
            call=inner_call,
            rng=prov,
            text=_snippet(node),
        )

    def _finish_returns(self, returns: List[ast.Return]) -> None:
        dims_seen: List[str] = []
        bases_seen: List[str] = []
        for ret in returns:
            if ret.value is None:
                continue
            dim, base = self.inferencer.infer(ret.value)
            if dim is not None:
                dims_seen.append(dim)
            if base is not None:
                bases_seen.append(base)
            if isinstance(ret.value, ast.Call):
                resolved = self.resolver.resolve(
                    dotted_name(ret.value.func), self.class_ctx
                )
                if resolved and not self.summary.returns_call:
                    self.summary.returns_call = resolved
            if not self.summary.returns_rng:
                prov, seed_param = self._returned_rng(ret.value)
                if prov:
                    self.summary.returns_rng = prov
                    self.summary.rng_seed_param = seed_param
        if dims_seen and len(set(dims_seen)) == 1:
            self.summary.return_dimension = dims_seen[0]
        if bases_seen and len(set(bases_seen)) == 1:
            self.summary.return_base = bases_seen[0]

    def _returned_rng(self, value: ast.expr) -> Tuple[str, str]:
        if isinstance(value, ast.Call) and self._rng_ctor(value):
            return self.classify_seed_expr(self._seed_expr_of_ctor(value))
        if isinstance(value, ast.Name) and value.id in self.env_rng:
            return self.env_rng[value.id]
        return "", ""

    def _finish_sim_process(self, yields: List[ast.Yield]) -> None:
        self.summary.is_sim_process = any(
            isinstance(y.value, ast.Call)
            and dotted_name(y.value.func).split(".")[-1] in COMMAND_CONSTRUCTORS
            for y in yields
        )

    def _infer_param_bases(self, nodes: Sequence[ast.AST]) -> None:
        """A parameter used in arithmetic with exactly one size-constant
        family inherits that family as its byte base."""
        candidates: Dict[str, Set[str]] = {}
        for node in nodes:
            if not isinstance(node, ast.BinOp):
                continue
            bases = dims.bases_in(node)
            if len(bases) != 1:
                continue
            base = next(iter(bases))
            for name in self._names_in(node):
                candidates.setdefault(name, set()).add(base)
        for param in self.summary.params:
            seen = candidates.get(param.name)
            if seen and len(seen) == 1 and param.base is None:
                param.base = next(iter(seen))


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if dotted_name(target).split(".")[-1] == "dataclass":
            return True
    return False


def _field_base_usage(
    node: ast.ClassDef, fields: List[ParamInfo]
) -> None:
    """Byte base of ``self.<field>`` usage across the class's methods."""
    wanted = {f.name for f in fields}
    candidates: Dict[str, Set[str]] = {}
    for sub in ast.walk(node):
        if not isinstance(sub, ast.BinOp):
            continue
        bases = dims.bases_in(sub)
        if len(bases) != 1:
            continue
        base = next(iter(bases))
        for attr in ast.walk(sub):
            if (
                isinstance(attr, ast.Attribute)
                and isinstance(attr.value, ast.Name)
                and attr.value.id == "self"
                and attr.attr in wanted
            ):
                candidates.setdefault(attr.attr, set()).add(base)
    for field_info in fields:
        seen = candidates.get(field_info.name)
        if seen and len(seen) == 1 and field_info.base is None:
            field_info.base = next(iter(seen))


def extract_summary(
    display_path: str,
    module: str,
    source: str,
    tree: Optional[ast.Module] = None,
) -> FileSummary:
    """Summarize one file.  Pure function of (path, module, source)."""
    if tree is None:
        tree = ast.parse(source, filename=display_path)
    aliases = build_aliases(tree, module)
    local_defs = {
        n.name
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    resolver = _NameResolver(module, aliases, local_defs)
    prefix = module or display_path
    summary = FileSummary(path=display_path, module=module, aliases=dict(aliases))

    module_extractor = _FunctionExtractor(
        resolver, f"{prefix}.<module>", None, [], False, ""
    )

    def summarize_function(
        node: ast.FunctionDef, qual_prefix: str, class_ctx: str
    ) -> None:
        is_method = bool(class_ctx) and qual_prefix == class_ctx
        params = _param_infos(node.args, is_method)
        extractor = _FunctionExtractor(
            resolver,
            f"{qual_prefix}.{node.name}",
            node,
            params,
            is_method,
            class_ctx,
        )
        summary.functions.append(extractor.run(node))
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _encloses_directly(node, child):
                    summarize_function(
                        child, f"{qual_prefix}.{node.name}", class_ctx
                    )

    def _encloses_directly(outer: ast.AST, inner: ast.AST) -> bool:
        """Is ``inner`` a function nested in ``outer`` with no other
        function/class definition in between?"""
        stack: List[ast.AST] = list(ast.iter_child_nodes(outer))
        while stack:
            node = stack.pop()
            if node is inner:
                return True
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarize_function(node, prefix, "")
        elif isinstance(node, ast.ClassDef):
            class_qual = f"{prefix}.{node.name}"
            init_params: List[ParamInfo] = []
            explicit_init = None
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "__init__"
                ):
                    explicit_init = item
            if explicit_init is not None:
                init_params = _param_infos(explicit_init.args, is_method=True)
            elif _is_dataclass_decorated(node):
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        dim = dims.dimension_of_annotation(item.annotation)
                        if dim is None:
                            dim = dims.dimension_of_name(item.target.id)
                        init_params.append(
                            ParamInfo(
                                name=item.target.id,
                                dimension=dim,
                                has_default=item.value is not None,
                                default_is_none=isinstance(
                                    item.value, ast.Constant
                                )
                                and item.value.value is None,
                            )
                        )
            _field_base_usage(node, init_params)
            summary.classes.append(
                ClassSummary(
                    qualname=class_qual,
                    lineno=node.lineno,
                    is_dataclass=_is_dataclass_decorated(node),
                    init_params=init_params,
                )
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summarize_function(item, class_qual, class_qual)
        else:
            # Module-level statements share one pseudo-function.
            parents = _parent_map(_own_nodes_of_stmt(node))
            for sub in _own_nodes_of_stmt(node):
                if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    module_extractor._track_assignment(sub)
                if isinstance(sub, ast.Call):
                    module_extractor._record_call(sub, parents)
    summary.functions.append(module_extractor.summary)
    return summary


def _own_nodes_of_stmt(node: ast.AST) -> List[ast.AST]:
    """``node`` plus its descendants, stopping at def/class boundaries."""
    return [node] + _own_nodes(node)
