"""Per-file analysis summaries: the unit the dataflow cache stores.

A :class:`FileSummary` is a pure function of one file's source text —
no cross-file facts leak in, so summaries can be content-hash cached
and recomputed independently.  Everything interprocedural (alias
chasing, call-graph closure, dimension conflicts) happens later in the
linker over a set of summaries.

All structures round-trip through JSON exactly (lists, dicts, strings,
ints, None), so a cache hit is indistinguishable from a fresh
extraction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Bump when the summary shape or the extraction logic changes; part of
#: every cache key, so stale summaries are never loaded.
DATAFLOW_SCHEMA = 1

# RNG provenance tags -------------------------------------------------------
#: Seed derives from a function parameter or a SeedSequence value.
PROV_DERIVED = "derived"
#: Seed is a non-None literal constant (a locally pinned stream).
PROV_LITERAL = "literal"
#: No seed / literal None: OS entropy, different every run.
PROV_UNSEEDED = "unseeded"
#: Seed expression references something we cannot classify.
PROV_UNKNOWN = "unknown"


@dataclass
class ParamInfo:
    """One parameter (or dataclass field) of a callable."""

    name: str
    #: Dimension from annotation or name suffix, else None.
    dimension: Optional[str] = None
    #: Byte base the callee's own body treats this value as
    #: ("binary"/"decimal"), inferred from arithmetic with size
    #: constants; None when unused or ambiguous.
    base: Optional[str] = None
    has_default: bool = False
    #: The default is the literal ``None`` (matters for seed params:
    #: an omitted seed defaulting to None means OS entropy).
    default_is_none: bool = False


@dataclass
class ArgInfo:
    """One argument expression at a call site, reduced to facts the
    linker can join against the callee's parameters."""

    #: Positional index, or -1 for keywords.
    position: int = -1
    #: Keyword name, or "" for positionals.
    keyword: str = ""
    dimension: Optional[str] = None
    base: Optional[str] = None
    #: Resolved callee name when the argument is itself a bare call
    #: (``f(g())``) — the linker substitutes g's return quantity.
    call: str = ""
    #: RNG provenance when the argument builds or forwards a generator.
    rng: str = ""
    #: Short source snippet for messages.
    text: str = ""


@dataclass
class CallInfo:
    """One call site inside a function body."""

    #: Best-effort fully-qualified callee ("repro.energy.model.hbm_refresh")
    #: after local import/alias resolution; "" when unresolvable.
    callee: str = ""
    #: The name as written at the call site, for messages.
    callee_text: str = ""
    lineno: int = 0
    col: int = 0
    args: List[ArgInfo] = field(default_factory=list)
    #: Base families of size constants in the maximal arithmetic
    #: expression enclosing this call — joined against the callee's
    #: return base to catch ``reserved_gib() + 4 * GB``.
    expr_bases: List[str] = field(default_factory=list)
    #: Dimension of the assignment target consuming this call's result
    #: (``refresh_s = total_bytes(...)``), else None.
    target_dimension: Optional[str] = None
    #: Name of the assignment target, for messages.
    target_text: str = ""


@dataclass
class RngEvent:
    """A direct RNG construction (``default_rng(...)``, ``Random(...)``)."""

    lineno: int = 0
    col: int = 0
    #: One of the PROV_* tags.
    provenance: str = PROV_UNKNOWN
    #: The constructor as written, for messages.
    text: str = ""
    #: The seed expression as written ("" when omitted).
    seed_text: str = ""


@dataclass
class WallCall:
    """A direct wall-clock or blocking call (RL004/RL007's name sets)."""

    name: str = ""
    lineno: int = 0
    col: int = 0


@dataclass
class FunctionSummary:
    """Everything the linker needs to know about one function."""

    #: Module-qualified name: ``repro.energy.model.refresh_power`` or
    #: ``repro.sim.kernel.Simulator.run`` (``<module>`` for top-level code).
    qualname: str = ""
    lineno: int = 0
    col: int = 0
    is_method: bool = False
    #: Yields at least one Timeout/Wait/Acquire/Release command.
    is_sim_process: bool = False
    params: List[ParamInfo] = field(default_factory=list)
    #: Inferred dimension/base of the return value.
    return_dimension: Optional[str] = None
    return_base: Optional[str] = None
    #: Callee whose return this function forwards (``return helper(x)``).
    returns_call: str = ""
    #: Provenance when this function returns an RNG it builds ("" when
    #: it does not return one).
    returns_rng: str = ""
    #: The parameter feeding the returned RNG's seed (when derived).
    rng_seed_param: str = ""
    calls: List[CallInfo] = field(default_factory=list)
    rng_events: List[RngEvent] = field(default_factory=list)
    wall_calls: List[WallCall] = field(default_factory=list)


@dataclass
class ClassSummary:
    """A class: constructor surface for RL012/RL013 at call sites."""

    qualname: str = ""
    lineno: int = 0
    is_dataclass: bool = False
    #: Constructor parameters: explicit ``__init__`` params (minus
    #: ``self``) when defined, else dataclass fields in order.
    init_params: List[ParamInfo] = field(default_factory=list)


@dataclass
class FileSummary:
    """The cached per-file analysis product."""

    schema: int = DATAFLOW_SCHEMA
    #: Repo-relative display path (stable across machines).
    path: str = ""
    #: Dotted module name, or "" outside a repro package root.
    module: str = ""
    #: Local name -> fully qualified target for imports/aliases
    #: (``{"ArrivalProcess": "repro.workload.requests.ArrivalProcess"}``).
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: List[ClassSummary] = field(default_factory=list)

    # -- JSON round-trip ---------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "FileSummary":
        summary = cls(
            schema=payload.get("schema", -1),
            path=payload.get("path", ""),
            module=payload.get("module", ""),
            aliases=dict(payload.get("aliases", {})),
        )
        for fn in payload.get("functions", []):
            summary.functions.append(
                FunctionSummary(
                    qualname=fn["qualname"],
                    lineno=fn["lineno"],
                    col=fn["col"],
                    is_method=fn["is_method"],
                    is_sim_process=fn["is_sim_process"],
                    params=[ParamInfo(**p) for p in fn["params"]],
                    return_dimension=fn["return_dimension"],
                    return_base=fn["return_base"],
                    returns_call=fn["returns_call"],
                    returns_rng=fn["returns_rng"],
                    rng_seed_param=fn["rng_seed_param"],
                    calls=[
                        CallInfo(
                            callee=c["callee"],
                            callee_text=c["callee_text"],
                            lineno=c["lineno"],
                            col=c["col"],
                            args=[ArgInfo(**a) for a in c["args"]],
                            expr_bases=list(c["expr_bases"]),
                            target_dimension=c["target_dimension"],
                            target_text=c["target_text"],
                        )
                        for c in fn["calls"]
                    ],
                    rng_events=[RngEvent(**e) for e in fn["rng_events"]],
                    wall_calls=[WallCall(**w) for w in fn["wall_calls"]],
                )
            )
        for klass in payload.get("classes", []):
            summary.classes.append(
                ClassSummary(
                    qualname=klass["qualname"],
                    lineno=klass["lineno"],
                    is_dataclass=klass["is_dataclass"],
                    init_params=[ParamInfo(**p) for p in klass["init_params"]],
                )
            )
        return summary
