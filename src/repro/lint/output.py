"""Report renderers: text (default), ``--format json``, ``--format sarif``.

The JSON form is a stable machine-readable dump of everything the run
partitioned (new / baselined / suppressed / parse errors), for scripts
like ``tools/lint_stats.py``.  The SARIF form is the 2.1.0 static
analysis interchange format GitHub code scanning ingests; baselined
and suppressed findings are included with SARIF ``suppressions``
markers so the upload shows them as handled rather than hiding them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintResult
from repro.lint.findings import Finding, Severity
from repro.lint.rules import rule_catalog

OUTPUT_FORMATS = ("text", "json", "sarif")

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"


def _finding_json(finding: Finding, status: str) -> Dict[str, Any]:
    return {
        "rule_id": finding.rule_id,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "fix_hint": finding.fix_hint,
        "fingerprint": finding.fingerprint(),
        "status": status,
    }


def render_json(result: LintResult) -> str:
    findings: List[Dict[str, Any]] = []
    for status, group in (
        ("new", result.new),
        ("baselined", result.baselined),
        ("suppressed", result.suppressed),
    ):
        findings.extend(_finding_json(f, status) for f in group)
    payload = {
        "tool": TOOL_NAME,
        "files_checked": result.files_checked,
        "findings": findings,
        "parse_errors": [
            {"path": path, "error": message}
            for path, message in result.parse_errors
        ],
        "suppression_errors": [
            {"path": path, "line": line, "token": token}
            for path, line, token in result.suppression_errors
        ],
        "dataflow": (
            {
                "files": result.dataflow_stats.files,
                "cache_hits": result.dataflow_stats.cache_hits,
                "cache_misses": result.dataflow_stats.cache_misses,
                "cache_hit_rate": round(result.dataflow_stats.hit_rate(), 4),
            }
            if result.dataflow_stats is not None
            else None
        ),
        "effects": (
            {
                "files": result.effects_stats.files,
                "cache_hits": result.effects_stats.cache_hits,
                "cache_misses": result.effects_stats.cache_misses,
                "cache_hit_rate": round(result.effects_stats.hit_rate(), 4),
                "hot_functions": result.effects_stats.hot_functions,
            }
            if result.effects_stats is not None
            else None
        ),
        "races": (
            {
                "files": result.races_stats.files,
                "cache_hits": result.races_stats.cache_hits,
                "cache_misses": result.races_stats.cache_misses,
                "cache_hit_rate": round(result.races_stats.hit_rate(), 4),
                "members": result.races_stats.members,
                "pairs": result.races_stats.pairs,
            }
            if result.races_stats is not None
            else None
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _sarif_result(finding: Finding, status: str) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; ours are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint()},
    }
    if status == "baselined":
        result["suppressions"] = [
            {"kind": "external", "justification": "accepted in lint baseline"}
        ]
    elif status == "suppressed":
        result["suppressions"] = [
            {"kind": "inSource", "justification": "inline repro-lint pragma"}
        ]
    return result


def render_sarif(result: LintResult) -> str:
    catalog = rule_catalog()
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": summary},
            "helpUri": "docs/STATIC_ANALYSIS.md",
        }
        for rule_id, summary in sorted(catalog.items())
    ]
    results: List[Dict[str, Any]] = []
    for status, group in (
        ("new", result.new),
        ("baselined", result.baselined),
        ("suppressed", result.suppressed),
    ):
        results.extend(_sarif_result(f, status) for f in group)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
