"""Foundation-model configurations and their memory arithmetic.

A :class:`ModelConfig` captures the architecture parameters that
determine the three data structures of Section 2:

- **weights**: ``n_params * bytes_per_param`` — the paper's "250 GB to
  over 1 TB depending on quantization" for 500B+ parameter models;
- **KV cache**: per token, every layer stores one K and one V vector of
  ``n_kv_heads * head_dim`` elements:
  ``2 * n_layers * n_kv_heads * head_dim * bytes_per_kv`` bytes/token.
  For multi-head attention (MHA) this is "a few MBs" per self-attention
  vector as the paper says; grouped-query attention (GQA) divides it by
  the group factor;
- **activations**: transient per-layer tensors, roughly an order of
  magnitude smaller than weights/KV for deployed batch sizes.

FLOP accounting uses the standard decoder-only estimates (~2 FLOPs per
parameter per token for the dense path plus the attention term), which
the roofline analysis in :mod:`repro.inference.roofline` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GiB, KiB, MiB


@dataclass(frozen=True)
class ModelConfig:
    """Architecture parameters of a decoder-only foundation model.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"llama2-70b"``.
    n_params:
        Total parameter count.
    n_layers / hidden_dim / n_heads / n_kv_heads / head_dim:
        Transformer geometry.  ``n_kv_heads < n_heads`` models
        grouped-query attention.
    bytes_per_param / bytes_per_kv:
        Quantization of weights and KV-cache entries (2 = FP16/BF16,
        1 = FP8/INT8).
    context_limit_tokens:
        Maximum context length served in deployment.
    """

    name: str
    n_params: float
    n_layers: int
    hidden_dim: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    bytes_per_param: float = 2.0
    bytes_per_kv: float = 2.0
    context_limit_tokens: int = 4096

    def __post_init__(self) -> None:
        if self.n_params <= 0 or self.n_layers <= 0:
            raise ValueError(f"{self.name}: bad architecture parameters")
        if self.n_kv_heads > self.n_heads:
            raise ValueError(f"{self.name}: n_kv_heads > n_heads")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(f"{self.name}: n_heads not divisible by n_kv_heads")
        if self.bytes_per_param <= 0 or self.bytes_per_kv <= 0:
            raise ValueError(f"{self.name}: quantization must be positive")

    # ------------------------------------------------------------------
    # The three data structures (Section 2)
    # ------------------------------------------------------------------
    @property
    def weights_bytes(self) -> int:
        """Total model weight footprint."""
        return int(self.n_params * self.bytes_per_param)

    @property
    def kv_bytes_per_token(self) -> int:
        """The per-token self-attention vector: one K and one V per layer."""
        return int(
            2 * self.n_layers * self.n_kv_heads * self.head_dim * self.bytes_per_kv
        )

    def kv_cache_bytes(self, context_tokens: int) -> int:
        """KV-cache footprint of a context with ``context_tokens`` tokens."""
        if context_tokens < 0:
            raise ValueError("context length must be >= 0")
        return context_tokens * self.kv_bytes_per_token

    def max_kv_cache_bytes(self) -> int:
        """KV cache of a full-limit context."""
        return self.kv_cache_bytes(self.context_limit_tokens)

    def activation_bytes(self, batch_size: int = 1) -> int:
        """Peak transient activation footprint of one forward pass.

        Per token-in-flight, the dominant live tensors are a few
        hidden-dim vectors per layer boundary plus attention scratch;
        with standard kernel fusion ~12x hidden per layer is a good
        deployment-scale estimate — and, as the paper says, it lands an
        order of magnitude below weights/KV for deployed batch sizes.
        """
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        per_token = 12 * self.hidden_dim * self.n_layers * self.bytes_per_param
        return int(per_token * batch_size)

    @property
    def gqa_group_factor(self) -> int:
        """How many query heads share one KV head (1 = MHA)."""
        return self.n_heads // self.n_kv_heads

    # ------------------------------------------------------------------
    # Compute accounting
    # ------------------------------------------------------------------
    def decode_flops_per_token(self, context_tokens: int) -> float:
        """FLOPs to generate one token at a given context length.

        ~2 FLOPs per weight (matmul multiply-accumulate) plus the
        attention term, 2 * 2 * n_layers * context * kv_width.
        """
        if context_tokens < 0:
            raise ValueError("context length must be >= 0")
        dense = 2.0 * self.n_params
        attention = (
            4.0 * self.n_layers * context_tokens * self.n_kv_heads * self.head_dim
        )
        return dense + attention

    def prefill_flops(self, prompt_tokens: int) -> float:
        """FLOPs to prefill a prompt (attention grows quadratically)."""
        if prompt_tokens < 0:
            raise ValueError("prompt length must be >= 0")
        dense = 2.0 * self.n_params * prompt_tokens
        attention = (
            2.0
            * self.n_layers
            * prompt_tokens**2
            * self.n_kv_heads
            * self.head_dim
        )
        return dense + attention

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.name}: {self.n_params / 1e9:.0f}B params, "
            f"weights {self.weights_bytes / GiB:.0f} GiB, "
            f"KV {self.kv_bytes_per_token / KiB:.0f} KiB/token "
            f"(GQA x{self.gqa_group_factor})"
        )


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------
#: Llama2-70B as deployed (grouped-query attention with 8 KV heads) —
#: the model Splitwise [37] reports, used for Figure 1's calibration.
LLAMA2_70B = ModelConfig(
    name="llama2-70b",
    n_params=70e9,
    n_layers=80,
    hidden_dim=8192,
    n_heads=64,
    n_kv_heads=8,
    head_dim=128,
    bytes_per_param=2.0,
    bytes_per_kv=2.0,
    context_limit_tokens=4096,
)

#: The same architecture with full multi-head attention. Its
#: self-attention vector is 2.6 MiB/token — the "few MBs" figure the
#: paper quotes [4, 44]; useful as the conservative (write-heavy) bound.
LLAMA2_70B_MHA = ModelConfig(
    name="llama2-70b-mha",
    n_params=70e9,
    n_layers=80,
    hidden_dim=8192,
    n_heads=64,
    n_kv_heads=64,
    head_dim=128,
    bytes_per_param=2.0,
    bytes_per_kv=2.0,
    context_limit_tokens=4096,
)

#: A 500B+-class frontier model ("well over 500 billion weights",
#: 250 GB - 1 TB depending on quantization).
GPT_CLASS_500B = ModelConfig(
    name="gpt-class-500b",
    n_params=500e9,
    n_layers=120,
    hidden_dim=16384,
    n_heads=128,
    n_kv_heads=16,
    head_dim=128,
    bytes_per_param=2.0,
    bytes_per_kv=2.0,
    context_limit_tokens=32768,
)

#: A mid-size model for faster simulations.
LLAMA2_13B = ModelConfig(
    name="llama2-13b",
    n_params=13e9,
    n_layers=40,
    hidden_dim=5120,
    n_heads=40,
    n_kv_heads=40,
    head_dim=128,
    bytes_per_param=2.0,
    bytes_per_kv=2.0,
    context_limit_tokens=4096,
)

#: A small expert model (Section 4: "expert models tailored for specific
#: use cases").
PHI_3_MINI = ModelConfig(
    name="phi-3-mini",
    n_params=3.8e9,
    n_layers=32,
    hidden_dim=3072,
    n_heads=32,
    n_kv_heads=32,
    head_dim=96,
    bytes_per_param=2.0,
    bytes_per_kv=2.0,
    context_limit_tokens=4096,
)
