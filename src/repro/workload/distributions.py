"""Seeded distributions and Splitwise-calibrated token-length profiles.

The paper calibrates its endurance arithmetic to "the throughputs and
median context lengths reported for the Llama2-70B model in Splitwise
[37]".  We have no access to the underlying production traces (they are
Azure-internal), so — per the substitution rule in DESIGN.md — this
module synthesizes request shapes from the *published* Splitwise
statistics:

- the conversation trace: median prompt ~1020 tokens, median output
  ~129 tokens;
- the coding trace: median prompt ~1930 tokens, median output ~13
  tokens (long prompts, terse completions).

Token counts are modeled as clamped log-normals fitted to those medians
with dispersion chosen to match the papers' reported long tails.  The
shapes (read:write ratios, endurance requirements, phase balance) the
experiments measure depend on medians and tail weight, which these fits
preserve; absolute trace replay is out of scope by necessity.

All distributions take an explicit ``numpy`` generator so simulations
are reproducible end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


class Distribution:
    """Base: a seeded scalar distribution."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


class FixedDistribution(Distribution):
    """Degenerate distribution (always the same value)."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


class ExponentialDistribution(Distribution):
    """Exponential with the given mean (inter-arrival times)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def mean(self) -> float:
        return self._mean


class LogNormalDistribution(Distribution):
    """Log-normal parameterized by its *median* and shape sigma.

    ``median = exp(mu)`` so parameterizing by median keeps calibration
    against reported medians direct.
    """

    def __init__(self, median: float, sigma: float) -> None:
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2.0)


class ParetoDistribution(Distribution):
    """Pareto (heavy tail) with scale ``xm`` and shape ``alpha``."""

    def __init__(self, xm: float, alpha: float) -> None:
        if xm <= 0 or alpha <= 0:
            raise ValueError("xm and alpha must be positive")
        self.xm = float(xm)
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.xm * (1.0 + rng.pareto(self.alpha)))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return float("inf")
        return self.alpha * self.xm / (self.alpha - 1.0)


class EmpiricalDistribution(Distribution):
    """Resamples from observed values (trace bootstrapping)."""

    def __init__(self, values: Sequence[float]) -> None:
        if not values:
            raise ValueError("need at least one value")
        self.values = np.asarray(values, dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values))

    def mean(self) -> float:
        return float(self.values.mean())


@dataclass(frozen=True)
class TokenLengthProfile:
    """Prompt/output token-count distributions for one workload type.

    ``sample(rng, context_limit)`` clamps so prompt+output never exceed
    the model's context limit, mirroring deployment truncation.
    """

    name: str
    prompt: Distribution
    output: Distribution
    min_prompt: int = 1
    min_output: int = 1

    def sample(
        self, rng: np.random.Generator, context_limit: Optional[int] = None
    ) -> tuple:
        """Draw ``(prompt_tokens, output_tokens)``."""
        prompt = max(self.min_prompt, int(round(self.prompt.sample(rng))))
        output = max(self.min_output, int(round(self.output.sample(rng))))
        if context_limit is not None:
            if context_limit < self.min_prompt + self.min_output:
                raise ValueError(
                    f"context limit {context_limit} below minimum request size"
                )
            prompt = min(prompt, context_limit - self.min_output)
            output = min(output, context_limit - prompt)
        return prompt, output


#: Splitwise "conversation" trace shape: medium prompts, long outputs.
SPLITWISE_CONVERSATION = TokenLengthProfile(
    name="splitwise-conversation",
    prompt=LogNormalDistribution(median=1020, sigma=1.0),
    output=LogNormalDistribution(median=129, sigma=0.9),
)

#: Splitwise "code" trace shape: long prompts, terse outputs.
SPLITWISE_CODE = TokenLengthProfile(
    name="splitwise-code",
    prompt=LogNormalDistribution(median=1930, sigma=1.1),
    output=LogNormalDistribution(median=13, sigma=0.8),
)
