"""Inference requests and arrival processes.

Section 4 notes the workload is diversifying: "some use cases have tight
latency SLAs (e.g., user-in-the-loop conversation), some are throughput
hungry and heavily use batching, others are background best-effort jobs".
:class:`SLAClass` encodes those three tiers; the tiering scheduler uses
them to decide which contexts may ride slower tiers.

Arrival processes:

- :class:`PoissonArrivals` — memoryless baseline.
- :class:`BurstyArrivals` — a two-state Markov-modulated Poisson process
  (quiet/burst), matching the diurnal/bursty behaviour production LLM
  traffic exhibits.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.workload.distributions import TokenLengthProfile
from repro.workload.model import ModelConfig


class SLAClass(enum.Enum):
    """Latency expectations of a request (Section 4)."""

    INTERACTIVE = "interactive"  # user-in-the-loop, tight TTFT/TBT
    THROUGHPUT = "throughput"  # batch-friendly, aggregate tokens/s matters
    BEST_EFFORT = "best-effort"  # background jobs (e.g. meeting recap)


_request_ids = itertools.count()


@dataclass
class InferenceRequest:
    """One inference query: a prompt and a (realized) output length.

    ``output_tokens`` is the ground-truth number of tokens the model will
    generate — simulations know it up front (oracle), schedulers must not
    peek unless the policy explicitly allows it.

    ``prefix_key`` identifies a shared prompt prefix (e.g. a system
    prompt): requests with the same key can share KV pages when prefix
    caching [54] is enabled.

    ``cached_prompt_tokens`` models a multi-turn follow-up whose
    conversation history's KV is already resident (kept hot, restored
    from an offload tier, or carried by MRM retention): prefill only
    computes the remaining ``prompt_tokens - cached_prompt_tokens``.
    """

    arrival_time: float
    prompt_tokens: int
    output_tokens: int
    sla: SLAClass = SLAClass.INTERACTIVE
    prefix_key: Optional[str] = None
    cached_prompt_tokens: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.prompt_tokens < 1:
            raise ValueError("prompt must have at least one token")
        if self.output_tokens < 1:
            raise ValueError("output must have at least one token")
        if self.arrival_time < 0:
            raise ValueError("arrival time must be >= 0")
        if not 0 <= self.cached_prompt_tokens < self.prompt_tokens:
            raise ValueError(
                "cached tokens must be in [0, prompt_tokens)"
            )

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens

    def kv_cache_bytes_final(self, model: ModelConfig) -> int:
        """KV-cache size once the context is fully generated."""
        return model.kv_cache_bytes(self.total_tokens)


class ArrivalProcess:
    """Base: generates inter-arrival gaps."""

    def next_gap(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def next_gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` gaps at once (bulk trace generation).

        The base implementation loops ``next_gap`` so stateful processes
        stay correct; memoryless processes override with a single
        vectorised draw.  Both paths consume the *same* ``rng`` — a
        process is free to produce a different (still deterministic)
        stream through the bulk path, so callers should not interleave
        the two on one generator and expect identical traces.
        """
        if count < 0:
            raise ValueError("gap count must be >= 0")
        return np.array(
            [self.next_gap(rng) for _ in range(count)], dtype=np.float64
        )


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_s``."""

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rate_per_s = rate_per_s

    def next_gap(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate_per_s))

    def next_gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vectorised: one NumPy call for the whole block of arrivals."""
        if count < 0:
            raise ValueError("gap count must be >= 0")
        return rng.exponential(1.0 / self.rate_per_s, size=count)


class BurstyArrivals(ArrivalProcess):
    """Two-state MMPP: alternating quiet and burst phases.

    Parameters
    ----------
    base_rate_per_s / burst_rate_per_s:
        Arrival rates in each state.
    mean_quiet_s / mean_burst_s:
        Mean sojourn time in each state (exponential).
    """

    def __init__(
        self,
        base_rate_per_s: float,
        burst_rate_per_s: float,
        mean_quiet_s: float = 60.0,
        mean_burst_s: float = 10.0,
    ) -> None:
        if base_rate_per_s <= 0 or burst_rate_per_s <= 0:
            raise ValueError("rates must be positive")
        if burst_rate_per_s < base_rate_per_s:
            raise ValueError("burst rate should be >= base rate")
        if mean_quiet_s <= 0 or mean_burst_s <= 0:
            raise ValueError("sojourn times must be positive")
        self.base_rate_per_s = base_rate_per_s
        self.burst_rate_per_s = burst_rate_per_s
        self.mean_quiet_s = mean_quiet_s
        self.mean_burst_s = mean_burst_s
        self._in_burst = False
        self._state_time_left = 0.0

    def next_gap(self, rng: np.random.Generator) -> float:
        gap = 0.0
        while True:
            if self._state_time_left <= 0.0:
                self._in_burst = not self._in_burst
                mean = self.mean_burst_s if self._in_burst else self.mean_quiet_s
                self._state_time_left = float(rng.exponential(mean))
            rate = self.burst_rate_per_s if self._in_burst else self.base_rate_per_s
            candidate = float(rng.exponential(1.0 / rate))
            if candidate <= self._state_time_left:
                self._state_time_left -= candidate
                return gap + candidate
            # State flips before the next arrival: consume the remainder
            # and resample in the new state (thinning).
            gap += self._state_time_left
            self._state_time_left = 0.0


class RequestGenerator:
    """Generates a reproducible stream of :class:`InferenceRequest`.

    Parameters
    ----------
    profile:
        Token-length profile (e.g. ``SPLITWISE_CONVERSATION``).
    arrivals:
        The arrival process.
    model:
        Used only to clamp token counts to the context limit.
    sla_mix:
        Probabilities of each SLA class, summing to 1.
    seed:
        Seed for the private RNG.
    """

    def __init__(
        self,
        profile: TokenLengthProfile,
        arrivals: ArrivalProcess,
        model: ModelConfig,
        sla_mix: Optional[dict] = None,
        prefix_keys: Optional[list] = None,
        prefix_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.arrivals = arrivals
        self.model = model
        self.sla_mix = sla_mix or {SLAClass.INTERACTIVE: 1.0}
        total = sum(self.sla_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"SLA mix must sum to 1, got {total}")
        if not 0.0 <= prefix_probability <= 1.0:
            raise ValueError("prefix probability in [0, 1]")
        if prefix_probability > 0 and not prefix_keys:
            raise ValueError("prefix_probability > 0 needs prefix_keys")
        self.prefix_keys = list(prefix_keys or [])
        self.prefix_probability = prefix_probability
        self.rng = np.random.default_rng(seed)
        # Precomputed once: rebuilding these per request dominated the
        # generator's profile on long traces.  Same draws, same stream.
        self._sla_classes = list(self.sla_mix.keys())
        self._sla_probs = np.array(
            [self.sla_mix[c] for c in self._sla_classes], dtype=np.float64
        )

    def _draw_sla(self) -> SLAClass:
        index = self.rng.choice(len(self._sla_classes), p=self._sla_probs)
        return self._sla_classes[int(index)]

    def generate(
        self, duration_s: Optional[float] = None, count: Optional[int] = None
    ) -> Iterator[InferenceRequest]:
        """Yield requests until ``duration_s`` of simulated arrivals or
        ``count`` requests, whichever comes first (at least one bound
        required)."""
        if duration_s is None and count is None:
            raise ValueError("provide duration_s and/or count")
        now = 0.0
        emitted = 0
        while True:
            now += self.arrivals.next_gap(self.rng)
            if duration_s is not None and now > duration_s:
                return
            if count is not None and emitted >= count:
                return
            prompt, output = self.profile.sample(
                self.rng, self.model.context_limit_tokens
            )
            prefix_key = None
            if self.prefix_keys and self.rng.random() < self.prefix_probability:
                prefix_key = self.prefix_keys[
                    int(self.rng.integers(len(self.prefix_keys)))
                ]
            yield InferenceRequest(
                arrival_time=now,
                prompt_tokens=prompt,
                output_tokens=output,
                sla=self._draw_sla(),
                prefix_key=prefix_key,
            )
            emitted += 1
