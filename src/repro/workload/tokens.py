"""Per-context token accounting.

:class:`ContextTokens` tracks one conversation context through its life:
prefill creates ``prompt_tokens`` KV vectors at once, then each decode
step appends exactly one.  It exposes the quantities the paper's
analysis keeps reaching for — current KV footprint, bytes read per
step, append bytes — without any simulator dependency, so analytical
experiments and the discrete-event engine share the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.model import ModelConfig


@dataclass
class ContextTokens:
    """Token/KV bookkeeping for one context.

    Attributes
    ----------
    model:
        The serving model (KV sizing).
    prompt_tokens:
        Prompt length; set at prefill.
    generated_tokens:
        Tokens decoded so far.
    """

    model: ModelConfig
    prompt_tokens: int
    generated_tokens: int = 0
    prefilled: bool = False

    def __post_init__(self) -> None:
        if self.prompt_tokens < 1:
            raise ValueError("prompt must have at least one token")

    @property
    def context_tokens(self) -> int:
        """Tokens currently in context (prompt + generated)."""
        return self.prompt_tokens + self.generated_tokens

    @property
    def kv_bytes(self) -> int:
        """Current KV-cache footprint (0 before prefill)."""
        if not self.prefilled:
            return 0
        return self.model.kv_cache_bytes(self.context_tokens)

    def prefill(self) -> int:
        """Run prefill; returns KV bytes written."""
        if self.prefilled:
            raise RuntimeError("context already prefilled")
        self.prefilled = True
        return self.model.kv_cache_bytes(self.prompt_tokens)

    def decode_step(self) -> tuple:
        """Generate one token.

        Returns ``(kv_bytes_read, kv_bytes_appended)`` for the step: the
        whole current cache is read, then one vector is appended.
        """
        if not self.prefilled:
            raise RuntimeError("decode before prefill")
        read = self.model.kv_cache_bytes(self.context_tokens)
        self.generated_tokens += 1
        return read, self.model.kv_bytes_per_token

    def at_limit(self) -> bool:
        """True when the context hit the model's deployment limit."""
        return self.context_tokens >= self.model.context_limit_tokens
