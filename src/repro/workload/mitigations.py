"""Read-traffic mitigations: batching, prefix reuse, KV compression.

Section 2.2: "There are efforts to reduce the amount of data read
during inference.  For example, batching allows weight reuse across
requests [3].  However, batching is limited by latency requirements.
Reuse of the KV cache across requests [54] and KV cache compression
[27] are also used, but each has its limitations and even together they
do not fundamentally change the heavily read-dominated nature of the
workload."

This module composes all three into one traffic transform so the claim
can be *measured* (ablation A1): apply any subset of mitigations to the
decode traffic and see what happens to (a) bytes read per token and
(b) the read:write ratio.  The expected result — and what the ablation
bench asserts — is that reads per token shrink by the mitigation
factors, while the ratio stays orders of magnitude above 1000:1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workload.model import ModelConfig
from repro.workload.phases import PhaseTraffic, decode_step_traffic
from repro.workload.speculative import (
    SpeculationConfig,
    speculative_decode_step_traffic,
)


@dataclass(frozen=True)
class MitigationConfig:
    """Which read-reduction mechanisms are on, and how hard they work.

    Attributes
    ----------
    batch_size:
        Requests decoded per iteration (weight-read amortization [3]).
    kv_compression_ratio:
        CacheGen-style compression [27]: stored/streamed KV bytes are
        ``1/ratio`` of raw.  2-4x is the practical range the paper's
        citation reports with acceptable quality loss.
    shared_prefix_fraction:
        Fraction of each context's KV that is a shared prefix served
        from a common copy [54]; those bytes are read once per *step*
        (for the whole batch) instead of once per context.
    speculation:
        Optional speculative decoding (multiplies tokens per weight
        read).
    """

    batch_size: int = 1
    kv_compression_ratio: float = 1.0
    shared_prefix_fraction: float = 0.0
    speculation: Optional[SpeculationConfig] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if self.kv_compression_ratio < 1.0:
            raise ValueError("compression ratio is >= 1 by definition")
        if not 0.0 <= self.shared_prefix_fraction <= 1.0:
            raise ValueError("shared prefix fraction in [0, 1]")


def mitigated_decode_traffic(
    model: ModelConfig,
    mitigations: MitigationConfig,
    context_tokens: int,
) -> PhaseTraffic:
    """One decode iteration's traffic with the mitigations applied."""
    if mitigations.speculation is not None:
        base = speculative_decode_step_traffic(
            model, mitigations.speculation, context_tokens,
            mitigations.batch_size,
        )
    else:
        base = decode_step_traffic(
            model, context_tokens, mitigations.batch_size
        )
    kv_read = base.bytes_read_kv
    # Prefix sharing: the shared fraction is read once per step instead
    # of once per context.
    shared = mitigations.shared_prefix_fraction
    if shared > 0.0 and mitigations.batch_size > 1:
        per_context = kv_read / mitigations.batch_size
        kv_read = (
            per_context * shared  # one shared copy for the whole batch
            + per_context * (1.0 - shared) * mitigations.batch_size
        )
    # Compression shrinks both the KV stream and the appends.
    kv_read /= mitigations.kv_compression_ratio
    kv_written = base.bytes_written_kv / mitigations.kv_compression_ratio
    return PhaseTraffic(
        bytes_read_weights=base.bytes_read_weights,
        bytes_read_kv=kv_read,
        bytes_written_kv=kv_written,
        flops=base.flops,
    )


def read_bytes_per_token(
    model: ModelConfig,
    mitigations: MitigationConfig,
    context_tokens: int,
) -> float:
    """Total bytes read per emitted token under the mitigations."""
    traffic = mitigated_decode_traffic(model, mitigations, context_tokens)
    tokens = float(mitigations.batch_size)
    if mitigations.speculation is not None:
        tokens *= mitigations.speculation.expected_tokens_per_step()
    return traffic.bytes_read / tokens
