"""Multi-turn conversation sessions.

Section 4 frames the diversifying workload ("user-in-the-loop
conversation", "meeting recap") and the related work offloads *idle* KV
caches between turns [49].  This module generates session-structured
workloads: a conversation is a sequence of turns separated by user
think times, where each turn's prompt contains the full history plus
the new user message.

The KV-policy question shows up as ``cached_prompt_tokens`` on the
emitted requests:

- ``"retain"``  — history KV survives the think time (kept in HBM,
  restored from an offload tier, or carried by MRM retention): follow-up
  turns prefill only their new tokens;
- ``"recompute"`` — history KV was dropped: every turn prefills its
  whole accumulated history (the compute bill of having no retention
  story).

:func:`sessions_to_requests` flattens sessions into an arrival-ordered
request stream for the cluster/engine simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.workload.model import ModelConfig
from repro.workload.requests import InferenceRequest, SLAClass


@dataclass(frozen=True)
class Turn:
    """One user turn: new prompt tokens in, output tokens back."""

    new_prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.new_prompt_tokens < 1 or self.output_tokens < 1:
            raise ValueError("turns need at least one token each way")


@dataclass(frozen=True)
class Session:
    """A conversation: turns plus the think times between them."""

    start_time: float
    turns: tuple
    think_times_s: tuple  # len == len(turns) - 1

    def __post_init__(self) -> None:
        if not self.turns:
            raise ValueError("a session needs at least one turn")
        if len(self.think_times_s) != len(self.turns) - 1:
            raise ValueError("need exactly one think time between turns")

    def history_tokens_before(self, turn_index: int) -> int:
        """Tokens accumulated in context before the given turn."""
        total = 0
        for turn in self.turns[:turn_index]:
            total += turn.new_prompt_tokens + turn.output_tokens
        return total


def generate_sessions(
    count: int,
    turns_mean: float = 4.0,
    think_time_mean_s: float = 60.0,
    prompt_tokens_mean: int = 200,
    output_tokens_mean: int = 120,
    arrival_rate_per_s: float = 0.5,
    seed: int = 0,
) -> List[Session]:
    """Draw a reproducible session population.

    Turn counts are Poisson (min 1); think times and inter-session
    arrivals exponential; per-turn token counts geometric around their
    means (min 1).
    """
    if count < 1:
        raise ValueError("need at least one session")
    rng = np.random.default_rng(seed)
    sessions: List[Session] = []
    now = 0.0
    for _ in range(count):
        now += float(rng.exponential(1.0 / arrival_rate_per_s))
        num_turns = max(1, int(rng.poisson(turns_mean)))
        turns = tuple(
            Turn(
                new_prompt_tokens=max(1, int(rng.geometric(1.0 / prompt_tokens_mean))),
                output_tokens=max(1, int(rng.geometric(1.0 / output_tokens_mean))),
            )
            for _ in range(num_turns)
        )
        thinks = tuple(
            float(t) for t in rng.exponential(think_time_mean_s, num_turns - 1)
        )
        sessions.append(Session(start_time=now, turns=turns, think_times_s=thinks))
    return sessions


def sessions_to_requests(
    sessions: List[Session],
    model: ModelConfig,
    kv_policy: str = "retain",
    sla: SLAClass = SLAClass.INTERACTIVE,
) -> List[InferenceRequest]:
    """Flatten sessions into an arrival-ordered request stream.

    Turn arrival times are *approximate*: each turn is assumed to start
    after the previous turn's think time (service time not added — the
    simulator's queueing supplies it), which keeps the stream reusable
    across serving configurations.

    ``kv_policy``:

    - ``"retain"``: follow-ups carry ``cached_prompt_tokens`` equal to
      the accumulated history (their KV survived the think time);
    - ``"recompute"``: follow-ups prefill the whole history again.
    """
    if kv_policy not in ("retain", "recompute"):
        raise ValueError(f"unknown kv policy {kv_policy!r}")
    requests: List[InferenceRequest] = []
    for session in sessions:
        when = session.start_time
        for index, turn in enumerate(session.turns):
            history = session.history_tokens_before(index)
            prompt = history + turn.new_prompt_tokens
            prompt = min(prompt, model.context_limit_tokens - turn.output_tokens)
            cached = 0
            if kv_policy == "retain" and index > 0:
                cached = min(history, prompt - 1)
            requests.append(
                InferenceRequest(
                    arrival_time=when,
                    prompt_tokens=max(1, prompt),
                    output_tokens=turn.output_tokens,
                    sla=sla,
                    cached_prompt_tokens=max(0, cached),
                )
            )
            if index < len(session.think_times_s):
                when += session.think_times_s[index]
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests
