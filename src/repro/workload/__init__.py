"""Foundation-model inference workload modeling.

Everything Section 2 of the paper says about the workload is implemented
here, parameterized and testable:

- :mod:`~repro.workload.model` — model configurations (Llama2-70B and
  friends): weight bytes, KV-cache bytes per token, FLOPs per token.
- :mod:`~repro.workload.distributions` — seeded distributions, including
  prompt/output token-count distributions calibrated to the published
  Splitwise traces [37].
- :mod:`~repro.workload.requests` — inference request records and
  arrival-process generators (Poisson, bursty).
- :mod:`~repro.workload.phases` — the prefill/decode phase traffic
  equations: bytes read/written and FLOPs per phase.
- :mod:`~repro.workload.tokens` — per-step token generation accounting
  for a single context.
- :mod:`~repro.workload.traces` — a JSONL trace format, synthetic trace
  generation (the production-trace substitute) and replay.
"""

from repro.workload.model import (
    GPT_CLASS_500B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA2_70B_MHA,
    PHI_3_MINI,
    ModelConfig,
)
from repro.workload.distributions import (
    Distribution,
    EmpiricalDistribution,
    ExponentialDistribution,
    FixedDistribution,
    LogNormalDistribution,
    ParetoDistribution,
    SPLITWISE_CODE,
    SPLITWISE_CONVERSATION,
    TokenLengthProfile,
)
from repro.workload.requests import (
    ArrivalProcess,
    BurstyArrivals,
    InferenceRequest,
    PoissonArrivals,
    RequestGenerator,
    SLAClass,
)
from repro.workload.phases import PhaseTraffic, decode_step_traffic, prefill_traffic
from repro.workload.tokens import ContextTokens
from repro.workload.speculative import (
    SpeculationConfig,
    speculative_decode_step_traffic,
    weight_read_bytes_per_token,
)
from repro.workload.mitigations import (
    MitigationConfig,
    mitigated_decode_traffic,
    read_bytes_per_token,
)
from repro.workload.conversations import (
    Session,
    Turn,
    generate_sessions,
    sessions_to_requests,
)
from repro.workload.traces import (
    TraceRecord,
    generate_trace,
    read_trace,
    replay_trace,
    write_trace,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ContextTokens",
    "Distribution",
    "EmpiricalDistribution",
    "ExponentialDistribution",
    "FixedDistribution",
    "GPT_CLASS_500B",
    "InferenceRequest",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA2_70B_MHA",
    "LogNormalDistribution",
    "MitigationConfig",
    "ModelConfig",
    "PHI_3_MINI",
    "ParetoDistribution",
    "PhaseTraffic",
    "PoissonArrivals",
    "RequestGenerator",
    "SLAClass",
    "SPLITWISE_CODE",
    "Session",
    "SpeculationConfig",
    "Turn",
    "SPLITWISE_CONVERSATION",
    "TokenLengthProfile",
    "TraceRecord",
    "decode_step_traffic",
    "generate_sessions",
    "generate_trace",
    "sessions_to_requests",
    "mitigated_decode_traffic",
    "prefill_traffic",
    "read_bytes_per_token",
    "read_trace",
    "replay_trace",
    "speculative_decode_step_traffic",
    "weight_read_bytes_per_token",
    "write_trace",
]
