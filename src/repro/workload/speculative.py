"""Speculative decoding: the traffic model.

Section 4 lists "speculative execution [31]" among the OS mechanisms the
rack-scale inference OS leans on.  For memory, speculation matters
because it changes the decode traffic shape: a small draft model
proposes ``draft_tokens`` tokens and the target model verifies them in
**one** forward pass — so the target's weights and the KV cache are
read once per *accepted run* of tokens instead of once per token.

Model (standard speculative-decoding arithmetic):

- the draft proposes ``k`` tokens, each independently accepted with
  probability ``alpha``;
- expected accepted tokens per verify step, including the bonus token
  the verify pass itself produces:
  ``E[tokens] = (1 - alpha^(k+1)) / (1 - alpha)``;
- the draft model's own weights/KV are read ``k`` times per step
  (small, but not free).

The net effect on the paper's argument is an *ablation*: speculation
divides the per-token weight-read traffic by ``E[tokens]``, but leaves
the workload exactly as read-dominated, sequential and append-only as
before — see ``benchmarks/bench_a1_mitigations.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workload.model import ModelConfig
from repro.workload.phases import PhaseTraffic


@dataclass(frozen=True)
class SpeculationConfig:
    """Speculative-decoding parameters.

    Attributes
    ----------
    draft_model:
        The small proposer (e.g. a 1-3B model).
    draft_tokens:
        Tokens proposed per verify step (k).
    acceptance_rate:
        Per-token probability the target accepts a draft token (alpha).
    """

    draft_model: ModelConfig
    draft_tokens: int = 4
    acceptance_rate: float = 0.7

    def __post_init__(self) -> None:
        if self.draft_tokens < 1:
            raise ValueError("must draft at least one token")
        if not 0.0 <= self.acceptance_rate < 1.0:
            raise ValueError("acceptance rate must be in [0, 1)")

    def expected_tokens_per_step(self) -> float:
        """Expected tokens emitted per verify step (incl. the bonus
        token): ``(1 - alpha^(k+1)) / (1 - alpha)``; >= 1 always."""
        a = self.acceptance_rate
        k = self.draft_tokens
        # No zero guard needed: at a == 0, 0**(k+1) == 0 exactly, so the
        # formula returns 1.0 (no draft accepted; only the bonus token),
        # and the denominator 1 - a is bounded away from 0 because
        # __post_init__ enforces a < 1.
        return (1.0 - a ** (k + 1)) / (1.0 - a)


def speculative_decode_step_traffic(
    target: ModelConfig,
    speculation: SpeculationConfig,
    context_tokens: int,
    batch_size: int = 1,
) -> PhaseTraffic:
    """Traffic of one speculative verify step for a batch.

    The target model's weights and each context's KV are read once for
    the whole verify; the draft model runs ``draft_tokens`` ordinary
    decode steps (its own weights read each time; its KV is an order of
    magnitude smaller and modeled at the same ratio).  KV *appends* are
    one vector per emitted token — the write stream is unchanged per
    token, which is why speculation does not rescue write-limited
    technologies.
    """
    if context_tokens < 1:
        raise ValueError("context must have at least one token")
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    emitted = speculation.expected_tokens_per_step()
    kv_bytes = float(target.kv_cache_bytes(context_tokens)) * batch_size
    draft = speculation.draft_model
    # The draft runs `draft_tokens` ordinary decode steps: its weights
    # are read per step, and each context's draft KV cache is scanned
    # per step.
    draft_reads = (
        float(draft.weights_bytes) * speculation.draft_tokens
        + float(draft.kv_cache_bytes(context_tokens))
        * speculation.draft_tokens
        * batch_size
    )
    flops = (
        target.decode_flops_per_token(context_tokens)
        * (speculation.draft_tokens + 1)
        * batch_size
        + draft.decode_flops_per_token(context_tokens)
        * speculation.draft_tokens
        * batch_size
    )
    return PhaseTraffic(
        bytes_read_weights=float(target.weights_bytes) + draft_reads,
        bytes_read_kv=kv_bytes,
        bytes_written_kv=float(target.kv_bytes_per_token) * emitted * batch_size,
        flops=flops,
    )


def weight_read_bytes_per_token(
    target: ModelConfig,
    speculation: Optional[SpeculationConfig],
    context_tokens: int,
    batch_size: int = 1,
) -> float:
    """Target+draft weight bytes read per emitted token — the quantity
    speculation improves (divides by ``E[tokens] * batch``)."""
    if speculation is None:
        return float(target.weights_bytes) / batch_size
    traffic = speculative_decode_step_traffic(
        target, speculation, context_tokens, batch_size
    )
    emitted = speculation.expected_tokens_per_step() * batch_size
    return traffic.bytes_read_weights / emitted
