"""The prefill/decode phase traffic equations.

Section 2: "The KV cache is created during the prefill phase ...
Subsequently, in the decode phase the model iteratively generates
response tokens.  For that, at each iteration the KV cache is read
entirely and sequentially, a new token is generated, and the
corresponding self-attention vector is appended".

These two functions are the quantitative form of that paragraph — the
bytes moved and FLOPs burned by each phase.  Everything downstream
(read:write ratios in E1, endurance requirements in F1, the inference
simulator's step times) derives from them.

Batching note: when ``batch_size`` contexts decode together, the weights
are read **once per step**, not once per context — that is precisely the
weight-reuse benefit of batching the paper mentions [3]; KV reads and
writes remain per-context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.workload.model import ModelConfig


@dataclass(frozen=True)
class PhaseTraffic:
    """Memory traffic and compute of one phase execution."""

    bytes_read_weights: float
    bytes_read_kv: float
    bytes_written_kv: float
    flops: float

    @property
    def bytes_read(self) -> float:
        return self.bytes_read_weights + self.bytes_read_kv

    @property
    def bytes_written(self) -> float:
        return self.bytes_written_kv

    @property
    def read_write_ratio(self) -> float:
        if self.bytes_written == 0:
            return float("inf")
        return self.bytes_read / self.bytes_written

    def __add__(self, other: "PhaseTraffic") -> "PhaseTraffic":
        return PhaseTraffic(
            self.bytes_read_weights + other.bytes_read_weights,
            self.bytes_read_kv + other.bytes_read_kv,
            self.bytes_written_kv + other.bytes_written_kv,
            self.flops + other.flops,
        )


ZERO_TRAFFIC = PhaseTraffic(0.0, 0.0, 0.0, 0.0)


def prefill_traffic(model: ModelConfig, prompt_tokens: int) -> PhaseTraffic:
    """Traffic of prefilling one prompt.

    Prefill processes the whole prompt in parallel: weights are read once
    (reused across all prompt tokens — prefill is compute-bound), and one
    KV vector per prompt token is written.  Attention during prefill
    reads the KV entries of earlier tokens; with standard tiled kernels
    this stays on-chip, so the off-package KV read traffic is ~0.
    """
    if prompt_tokens < 1:
        raise ValueError("prompt must have at least one token")
    return PhaseTraffic(
        bytes_read_weights=float(model.weights_bytes),
        bytes_read_kv=0.0,
        bytes_written_kv=float(model.kv_bytes_per_token * prompt_tokens),
        flops=model.prefill_flops(prompt_tokens),
    )


def decode_step_traffic(
    model: ModelConfig, context_tokens: int, batch_size: int = 1
) -> PhaseTraffic:
    """Traffic of one decode step for a batch.

    Every step reads all weights once (amortized over the batch) and,
    per context, reads that context's entire KV cache and appends one
    vector.  ``context_tokens`` is the per-context length (use
    :func:`decode_step_traffic_batch` for heterogeneous batches).
    """
    if context_tokens < 1:
        raise ValueError("context must have at least one token")
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    kv_bytes = float(model.kv_cache_bytes(context_tokens))
    return PhaseTraffic(
        bytes_read_weights=float(model.weights_bytes),
        bytes_read_kv=kv_bytes * batch_size,
        bytes_written_kv=float(model.kv_bytes_per_token * batch_size),
        flops=model.decode_flops_per_token(context_tokens) * batch_size,
    )


def decode_step_traffic_batch(
    model: ModelConfig, context_lengths: Sequence[int]
) -> PhaseTraffic:
    """One decode step for a heterogeneous batch of contexts."""
    if not context_lengths:
        raise ValueError("batch must be non-empty")
    kv_read = 0.0
    flops = 0.0
    for length in context_lengths:
        if length < 1:
            raise ValueError("context must have at least one token")
        kv_read += float(model.kv_cache_bytes(length))
        flops += model.decode_flops_per_token(length)
    return PhaseTraffic(
        bytes_read_weights=float(model.weights_bytes),
        bytes_read_kv=kv_read,
        bytes_written_kv=float(model.kv_bytes_per_token * len(context_lengths)),
        flops=flops,
    )


def full_request_traffic(
    model: ModelConfig, prompt_tokens: int, output_tokens: int, batch_size: int = 1
) -> PhaseTraffic:
    """Aggregate traffic of serving one request end to end.

    Decode steps run at growing context lengths (prompt+1 ... prompt+n);
    weight reads are divided by ``batch_size`` to model amortization over
    co-batched requests.
    """
    if output_tokens < 1:
        raise ValueError("output must have at least one token")
    total = prefill_traffic(model, prompt_tokens)
    kv_read = 0.0
    flops = 0.0
    for step in range(output_tokens):
        context = prompt_tokens + step
        kv_read += float(model.kv_cache_bytes(context))
        flops += model.decode_flops_per_token(context)
    weights_read = float(model.weights_bytes) * output_tokens / batch_size
    decode = PhaseTraffic(
        bytes_read_weights=weights_read,
        bytes_read_kv=kv_read,
        bytes_written_kv=float(model.kv_bytes_per_token * output_tokens),
        flops=flops,
    )
    return total + decode
