"""Trace files: the production-trace substitute.

The paper's workload numbers derive from production serving traces we
cannot have (Azure-internal).  This module provides the closest
reproducible equivalent:

- a simple JSONL *trace format* (one request per line: arrival time,
  prompt tokens, output tokens, SLA class);
- :func:`generate_trace` — synthesize a trace from a
  :class:`~repro.workload.requests.RequestGenerator` (Splitwise-shaped
  by default);
- :func:`read_trace` / :func:`write_trace` — round-trip traces to disk
  so experiments are replayable and shareable;
- :func:`replay_trace` — turn records back into
  :class:`~repro.workload.requests.InferenceRequest` objects, optionally
  time-scaled (rate multiplier) for load sweeps.

Keeping traces as files (rather than regenerating inline) is what makes
"trace-driven" evaluation honest: every experiment in EXPERIMENTS.md
names the trace parameters it ran with.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.workload.model import ModelConfig
from repro.workload.requests import (
    ArrivalProcess,
    InferenceRequest,
    PoissonArrivals,
    RequestGenerator,
    SLAClass,
)
from repro.workload.distributions import SPLITWISE_CONVERSATION, TokenLengthProfile


@dataclass(frozen=True)
class TraceRecord:
    """One line of a trace file."""

    arrival_time: float
    prompt_tokens: int
    output_tokens: int
    sla: str = SLAClass.INTERACTIVE.value
    prefix_key: Optional[str] = None

    def to_request(self) -> InferenceRequest:
        return InferenceRequest(
            arrival_time=self.arrival_time,
            prompt_tokens=self.prompt_tokens,
            output_tokens=self.output_tokens,
            sla=SLAClass(self.sla),
            prefix_key=self.prefix_key,
        )


def generate_trace(
    model: ModelConfig,
    profile: Optional[TokenLengthProfile] = None,
    arrivals: Optional[ArrivalProcess] = None,
    duration_s: Optional[float] = 60.0,
    count: Optional[int] = None,
    sla_mix: Optional[dict] = None,
    prefix_keys: Optional[list] = None,
    prefix_probability: float = 0.0,
    seed: int = 0,
) -> List[TraceRecord]:
    """Synthesize a trace (Splitwise-conversation shape by default)."""
    generator = RequestGenerator(
        profile=profile or SPLITWISE_CONVERSATION,
        arrivals=arrivals or PoissonArrivals(rate_per_s=1.0),
        model=model,
        sla_mix=sla_mix,
        prefix_keys=prefix_keys,
        prefix_probability=prefix_probability,
        seed=seed,
    )
    return [
        TraceRecord(
            arrival_time=req.arrival_time,
            prompt_tokens=req.prompt_tokens,
            output_tokens=req.output_tokens,
            sla=req.sla.value,
            prefix_key=req.prefix_key,
        )
        for req in generator.generate(duration_s=duration_s, count=count)
    ]


def write_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records as JSONL; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(asdict(record)) + "\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a JSONL trace; validates fields line by line."""
    path = Path(path)
    records: List[TraceRecord] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                records.append(TraceRecord(**payload))
            except (json.JSONDecodeError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad trace line: {exc}") from exc
    return records


def replay_trace(
    records: Iterable[TraceRecord], rate_multiplier: float = 1.0
) -> Iterator[InferenceRequest]:
    """Yield requests from records, optionally compressing arrivals.

    ``rate_multiplier=2`` replays the trace at twice the original load
    (arrival gaps halved) — the standard knob for load sweeps.
    """
    if rate_multiplier <= 0:
        raise ValueError("rate multiplier must be positive")
    for record in records:
        request = record.to_request()
        request.arrival_time = record.arrival_time / rate_multiplier
        yield request
