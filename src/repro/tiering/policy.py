"""Placement policies: which tier gets which data object.

A policy maps a set of :class:`~repro.core.placement.DataObject` to a
:class:`Placement` over a set of :class:`~repro.tiering.tiers.MemoryTier`,
subject to capacity.  Implemented policies span the paper's argument:

- :class:`AllHBMPolicy` — today's baseline: everything in HBM.
- :class:`KindBasedPolicy` — the static layout Section 4 sketches:
  weights and KV cache on MRM, activations (write-heavy) on HBM,
  overflow to LPDDR.
- :class:`LifetimeAwarePolicy` — the general rule the static layout
  approximates: objects whose lifetime exceeds a threshold *and* whose
  traffic is read-dominated go to MRM; short-lived or write-heavy data
  stays on HBM; cold data falls to the cheapest tier.
- :class:`CostGreedyPolicy` — an explicit optimization baseline: sort
  objects by read-bandwidth demand per byte (hot first), fill the
  fastest tiers first.  Shows the lifetime-aware rule is near the
  cost-driven optimum for this workload.

Placements validate capacity and compute per-tier bandwidth demand so
experiments can flag infeasible (bandwidth-starved) layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.placement import DataKind, DataObject
from repro.tiering.tiers import MemoryTier


class PlacementError(RuntimeError):
    """No feasible placement (capacity exhausted)."""


@dataclass
class Placement:
    """An assignment of objects to tiers with derived accounting."""

    tiers: Tuple[MemoryTier, ...]
    assignment: Dict[int, str] = field(default_factory=dict)  # object_id -> tier
    _objects: Dict[int, DataObject] = field(default_factory=dict)

    def tier_of(self, obj: DataObject) -> MemoryTier:
        name = self.assignment.get(obj.object_id)
        if name is None:
            raise KeyError(f"object {obj.name} is not placed")
        return self._tier_by_name(name)

    def _tier_by_name(self, name: str) -> MemoryTier:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise KeyError(f"unknown tier {name!r}")

    def assign(self, obj: DataObject, tier: MemoryTier) -> None:
        if self.used_bytes(tier.name) + obj.size_bytes > tier.capacity_bytes:
            raise PlacementError(
                f"{obj.name} ({obj.size_bytes} B) does not fit tier "
                f"{tier.name} ({self.free_bytes(tier.name)} B free)"
            )
        self.assignment[obj.object_id] = tier.name
        self._objects[obj.object_id] = obj

    def objects_on(self, tier_name: str) -> List[DataObject]:
        return [
            self._objects[oid]
            for oid, name in self.assignment.items()
            if name == tier_name
        ]

    def used_bytes(self, tier_name: str) -> int:
        return sum(o.size_bytes for o in self.objects_on(tier_name))

    def free_bytes(self, tier_name: str) -> int:
        return self._tier_by_name(tier_name).capacity_bytes - self.used_bytes(
            tier_name
        )

    # ------------------------------------------------------------------
    # Feasibility / cost accounting
    # ------------------------------------------------------------------
    def read_bandwidth_demand(self, tier_name: str) -> float:
        return sum(o.access.read_bytes_per_s for o in self.objects_on(tier_name))

    def write_bandwidth_demand(self, tier_name: str) -> float:
        return sum(o.access.write_bytes_per_s for o in self.objects_on(tier_name))

    def bandwidth_feasible(self) -> bool:
        """True if every tier's demand fits its sustained bandwidth."""
        for tier in self.tiers:
            if self.read_bandwidth_demand(tier.name) > tier.read_bandwidth:
                return False
            if self.write_bandwidth_demand(tier.name) > tier.write_bandwidth:
                return False
        return True

    def bottleneck(self) -> Tuple[str, float]:
        """The tier with the highest read-bandwidth utilization, and the
        utilization itself (>1 means infeasible)."""
        worst = ("", 0.0)
        for tier in self.tiers:
            util = self.read_bandwidth_demand(tier.name) / tier.read_bandwidth
            if util > worst[1]:
                worst = (tier.name, util)
        return worst

    def access_power_w(self) -> float:
        """Steady-state dynamic access power of the placement."""
        total = 0.0
        for tier in self.tiers:
            reads = self.read_bandwidth_demand(tier.name)
            writes = self.write_bandwidth_demand(tier.name)
            total += tier.read_energy_j(reads) + tier.write_energy_j(writes)
        return total

    def refresh_power_w(self) -> float:
        """Refresh power of volatile tiers (whole-tier, DRAM refreshes
        everything whether used or not)."""
        return sum(tier.refresh_power_w() for tier in self.tiers)

    def hardware_cost_usd(self) -> float:
        return sum(tier.cost_usd for tier in self.tiers)


class PlacementPolicy:
    """Base: place a set of objects across tiers."""

    name = "base"

    def place(
        self, objects: Sequence[DataObject], tiers: Sequence[MemoryTier]
    ) -> Placement:
        raise NotImplementedError

    @staticmethod
    def _fit_with_overflow(
        placement: Placement,
        obj: DataObject,
        preferred: Sequence[MemoryTier],
    ) -> None:
        """Assign to the first preferred tier with room; raise if none."""
        for tier in preferred:
            if placement.free_bytes(tier.name) >= obj.size_bytes:
                placement.assign(obj, tier)
                return
        raise PlacementError(
            f"no tier can hold {obj.name} ({obj.size_bytes} B); "
            f"free: {[(t.name, placement.free_bytes(t.name)) for t in preferred]}"
        )


class AllHBMPolicy(PlacementPolicy):
    """Everything on HBM (today's deployment)."""

    name = "all-hbm"

    def place(self, objects, tiers) -> Placement:
        placement = Placement(tuple(tiers))
        hbm = [t for t in tiers if t.name == "hbm"]
        if not hbm:
            raise PlacementError("all-hbm policy requires an hbm tier")
        others = [t for t in tiers if t.name != "hbm"]
        for obj in objects:
            self._fit_with_overflow(placement, obj, hbm + others)
        return placement


class KindBasedPolicy(PlacementPolicy):
    """The static Section-4 layout: weights+KV to MRM, activations to
    HBM, overflow down the hierarchy."""

    name = "kind-based"

    def place(self, objects, tiers) -> Placement:
        placement = Placement(tuple(tiers))
        by_name = {t.name: t for t in tiers}
        mrm_first = [
            by_name[n] for n in ("mrm", "hbm", "lpddr", "flash") if n in by_name
        ]
        hbm_first = [
            by_name[n] for n in ("hbm", "mrm", "lpddr", "flash") if n in by_name
        ]
        for obj in objects:
            if obj.kind in (DataKind.WEIGHTS, DataKind.KV_CACHE):
                self._fit_with_overflow(placement, obj, mrm_first)
            else:
                self._fit_with_overflow(placement, obj, hbm_first)
        return placement


class LifetimeAwarePolicy(PlacementPolicy):
    """The general retention-aware rule.

    An object goes to MRM when its lifetime clears ``min_mrm_lifetime_s``
    (retention management must be worth it) and its read:write ratio
    clears ``min_read_write_ratio`` (MRM's slow writes must not hurt);
    write-heavy or ephemeral data stays on HBM; data whose read demand is
    under ``cold_read_bw`` may fall to LPDDR.
    """

    name = "lifetime-aware"

    def __init__(
        self,
        min_mrm_lifetime_s: float = 60.0,
        min_read_write_ratio: float = 100.0,
        cold_read_bw: float = 1e9,
    ) -> None:
        self.min_mrm_lifetime_s = min_mrm_lifetime_s
        self.min_read_write_ratio = min_read_write_ratio
        self.cold_read_bw = cold_read_bw

    def place(self, objects, tiers) -> Placement:
        placement = Placement(tuple(tiers))
        by_name = {t.name: t for t in tiers}

        def chain(*names: str) -> List[MemoryTier]:
            return [by_name[n] for n in names if n in by_name]

        for obj in objects:
            mrm_worthy = (
                obj.lifetime_s >= self.min_mrm_lifetime_s
                and obj.access.read_write_ratio >= self.min_read_write_ratio
            )
            cold = obj.access.read_bytes_per_s < self.cold_read_bw
            if mrm_worthy and not cold:
                preferred = chain("mrm", "hbm", "lpddr", "flash")
            elif cold:
                preferred = chain("lpddr", "mrm", "flash", "hbm")
            else:
                preferred = chain("hbm", "mrm", "lpddr", "flash")
            self._fit_with_overflow(placement, obj, preferred)
        return placement


class CostGreedyPolicy(PlacementPolicy):
    """Bandwidth-greedy baseline: hottest bytes onto the fastest tiers.

    Objects sort by read bandwidth per byte (descending); tiers sort by
    read bandwidth per byte of capacity (descending); first fit.
    """

    name = "cost-greedy"

    def place(self, objects, tiers) -> Placement:
        placement = Placement(tuple(tiers))
        ranked_tiers = sorted(
            tiers,
            key=lambda t: t.read_bandwidth / t.capacity_bytes,
            reverse=True,
        )
        ranked_objects = sorted(
            objects,
            key=lambda o: o.access.read_bytes_per_s / o.size_bytes,
            reverse=True,
        )
        for obj in ranked_objects:
            self._fit_with_overflow(placement, obj, ranked_tiers)
        return placement
