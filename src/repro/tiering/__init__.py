"""Retention-aware data placement and scheduling across memory tiers.

Section 4: "MRM is unlikely to be a one-size-fits-all solution, and will
co-exist with other types of memory, such as HBM for write-heavy data
structures (e.g., activations), and LPDDR as a slower tier.  Fine-grained
understanding of lifetime and access patterns of the data will be
required to lay out the data."

- :mod:`~repro.tiering.tiers` — cluster-level tier descriptions and
  builders (HBM, MRM at a chosen retention point, LPDDR, Flash).
- :mod:`~repro.tiering.policy` — placement policies mapping
  :class:`~repro.core.placement.DataObject` to tiers: all-HBM baseline,
  static kind-based, lifetime/access-aware, cost-greedy.
- :mod:`~repro.tiering.migration` — migration plans between placements
  (bytes moved, transfer time, energy).
- :mod:`~repro.tiering.scheduler` — the retention-aware tier manager:
  admission, expiry-driven demotion/drop, refresh-vs-migrate economics.
"""

from repro.tiering.tiers import (
    MemoryTier,
    flash_tier,
    hbm_tier,
    lpddr_tier,
    mrm_tier,
)
from repro.tiering.policy import (
    AllHBMPolicy,
    CostGreedyPolicy,
    KindBasedPolicy,
    LifetimeAwarePolicy,
    Placement,
    PlacementError,
    PlacementPolicy,
)
from repro.tiering.migration import MigrationPlan, plan_migration
from repro.tiering.scheduler import TierManager, TierManagerStats
from repro.tiering.offload import (
    ConversationShape,
    OffloadScore,
    OffloadSimulator,
)

__all__ = [
    "AllHBMPolicy",
    "ConversationShape",
    "CostGreedyPolicy",
    "OffloadScore",
    "OffloadSimulator",
    "KindBasedPolicy",
    "LifetimeAwarePolicy",
    "MemoryTier",
    "MigrationPlan",
    "Placement",
    "PlacementError",
    "PlacementPolicy",
    "TierManager",
    "TierManagerStats",
    "flash_tier",
    "hbm_tier",
    "lpddr_tier",
    "mrm_tier",
    "plan_migration",
]
