"""Migration plans between placements.

When the tier manager decides data should move (wear pressure, expiry
economics, a new model deployment), the move itself costs bandwidth and
energy on both tiers.  :func:`plan_migration` diffs two placements and
produces a :class:`MigrationPlan` with those costs, so policies can
weigh "migrate" against "refresh in place" or "drop and recompute" —
the three-way decision of Section 4's retention-aware scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.placement import DataObject
from repro.tiering.policy import Placement


@dataclass(frozen=True)
class Move:
    """One object's move between tiers."""

    obj: DataObject
    source: str
    destination: str


@dataclass
class MigrationPlan:
    """The cost-annotated set of moves from one placement to another."""

    moves: List[Move] = field(default_factory=list)
    bytes_moved: int = 0
    transfer_time_s: float = 0.0
    energy_j: float = 0.0

    @property
    def empty(self) -> bool:
        return not self.moves


def _record_plan(obs, plan: MigrationPlan, kind: str) -> None:
    """Mirror a finished plan into an observability registry."""
    if obs is None or not obs.enabled:
        return
    obs.counter("migration.plans_total", kind=kind).add()
    obs.counter("migration.moves_total", kind=kind).add(len(plan.moves))
    obs.counter("migration.bytes_moved_total", kind=kind).add(plan.bytes_moved)
    obs.counter("migration.energy_j_total", kind=kind).add(plan.energy_j)
    obs.histogram("migration.transfer_time_s", kind=kind).observe(
        plan.transfer_time_s
    )


def plan_migration(
    before: Placement,
    after: Placement,
    objects: Sequence[DataObject],
    obs=None,
) -> MigrationPlan:
    """Diff two placements over the same object set.

    Transfer time models the per-move bottleneck (min of source read and
    destination write bandwidth) with moves serialized — a conservative
    bound; energy charges a read on the source and a write on the
    destination.  ``obs`` (a :class:`repro.obs.MetricsRegistry`) records
    the finished plan's traffic under ``kind=rebalance``.
    """
    plan = MigrationPlan()
    for obj in objects:
        src = before.assignment.get(obj.object_id)
        dst = after.assignment.get(obj.object_id)
        if src is None or dst is None:
            raise KeyError(f"object {obj.name} missing from a placement")
        if src == dst:
            continue
        source = before._tier_by_name(src)
        destination = after._tier_by_name(dst)
        plan.moves.append(Move(obj, src, dst))
        plan.bytes_moved += obj.size_bytes
        effective_bw = min(source.read_bandwidth, destination.write_bandwidth)
        plan.transfer_time_s += obj.size_bytes / effective_bw
        plan.energy_j += source.read_energy_j(obj.size_bytes)
        plan.energy_j += destination.write_energy_j(obj.size_bytes)
    _record_plan(obs, plan, "rebalance")
    return plan


def plan_drain(
    placement: Placement,
    failing_tier: str,
    prefer: Optional[Sequence[str]] = None,
    obs=None,
) -> Tuple[MigrationPlan, List[DataObject]]:
    """Graceful degradation: evacuate everything off a degrading tier.

    When a device reports progressive failure (rising uncorrectable
    rate, failed banks) the control plane drains it while it can still
    be read — the tiering analogue of the controller's refresh
    escalation.  Objects on ``failing_tier`` are packed, largest first
    (ties by object id, so the plan is deterministic), into the
    remaining tiers in ``prefer`` order (default: placement tier order),
    first-fit by free capacity.

    Returns ``(plan, stranded)``: the cost-annotated moves, and the
    objects that fit nowhere — data that will be lost (or must be
    recomputed upstream) when the device dies.  The input placement is
    not mutated; apply the plan by re-assigning its moves.
    """
    source = placement._tier_by_name(failing_tier)  # validates the name
    destinations = [
        placement._tier_by_name(name)
        for name in (
            prefer
            if prefer is not None
            else [t.name for t in placement.tiers]
        )
        if name != failing_tier
    ]
    victims = sorted(
        placement.objects_on(failing_tier),
        key=lambda o: (-o.size_bytes, o.object_id),
    )
    free = {t.name: placement.free_bytes(t.name) for t in destinations}
    plan = MigrationPlan()
    stranded: List[DataObject] = []
    for obj in victims:
        placed = False
        for tier in destinations:
            if free[tier.name] >= obj.size_bytes:
                free[tier.name] -= obj.size_bytes
                plan.moves.append(Move(obj, failing_tier, tier.name))
                plan.bytes_moved += obj.size_bytes
                effective_bw = min(
                    source.read_bandwidth, tier.write_bandwidth
                )
                plan.transfer_time_s += obj.size_bytes / effective_bw
                plan.energy_j += source.read_energy_j(obj.size_bytes)
                plan.energy_j += tier.write_energy_j(obj.size_bytes)
                placed = True
                break
        if not placed:
            stranded.append(obj)
    _record_plan(obs, plan, "drain")
    if obs is not None and obs.enabled:
        obs.counter("migration.stranded_objects_total", kind="drain").add(
            len(stranded)
        )
        obs.counter("migration.stranded_bytes_total", kind="drain").add(
            sum(o.size_bytes for o in stranded)
        )
    return plan, stranded
