"""Idle-KV offload: multi-turn conversations and the cold-cache problem.

Related work the paper builds on: "it has been proposed to use CPU main
memory for offloading idle KV caches [49]" (CXL-attached in the cited
work).  Between turns of a conversation the context's KV cache is pure
dead weight in the fast tier — but dropping it means an expensive
prefill recomputation when the user returns.

:class:`OffloadSimulator` models the three-way policy space for a
population of multi-turn conversations with think times:

- ``keep``     — KV stays in the fast tier between turns (burns
  capacity, instant resume);
- ``offload``  — KV moves to a slow tier at turn end and streams back on
  resume (transfer latency, frees fast capacity);
- ``drop``     — KV is discarded and recomputed by a fresh prefill on
  resume (compute cost, frees everything).

MRM adds the fourth option the paper implies:

- ``mrm``      — KV is *already* in MRM with retention covering the
  think time: resume is free, no fast-tier capacity was ever held.

Scored on: fast-tier capacity-seconds consumed, resume latency, and
recompute compute-seconds — the quantities a serving operator trades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.inference.accelerator import AcceleratorConfig
from repro.inference.roofline import RooflineModel
from repro.workload.model import ModelConfig
from repro.workload.phases import prefill_traffic


@dataclass(frozen=True)
class ConversationShape:
    """Multi-turn conversation statistics."""

    turns_mean: float = 4.0
    think_time_mean_s: float = 90.0
    turn_prompt_tokens: int = 256
    turn_output_tokens: int = 128

    def __post_init__(self) -> None:
        if self.turns_mean < 1 or self.think_time_mean_s <= 0:
            raise ValueError("bad conversation shape")


@dataclass
class OffloadScore:
    """Cost of one policy over the conversation population."""

    policy: str
    fast_tier_byte_seconds: float = 0.0
    resume_latency_total_s: float = 0.0
    recompute_flops: float = 0.0
    resumes: int = 0

    @property
    def mean_resume_latency_s(self) -> float:
        if self.resumes == 0:
            return 0.0
        return self.resume_latency_total_s / self.resumes


class OffloadSimulator:
    """Analytic comparison of idle-KV policies.

    Parameters
    ----------
    model / accelerator:
        For KV sizing and prefill recompute timing.
    offload_bandwidth:
        Fast<->slow tier transfer bandwidth (PCIe/CXL-class, ~50 GB/s).
    """

    POLICIES = ("keep", "offload", "drop", "mrm")

    def __init__(
        self,
        model: ModelConfig,
        accelerator: AcceleratorConfig,
        offload_bandwidth: float = 50e9,
        seed: int = 0,
    ) -> None:
        if offload_bandwidth <= 0:
            raise ValueError("offload bandwidth must be positive")
        self.model = model
        self.roofline = RooflineModel(accelerator)
        self.offload_bandwidth = offload_bandwidth
        self.seed = seed

    def _conversations(
        self, count: int, shape: ConversationShape
    ) -> List[List[float]]:
        """Per conversation: the think times between its turns."""
        rng = np.random.default_rng(self.seed)
        conversations = []
        for _ in range(count):
            turns = max(1, int(rng.poisson(shape.turns_mean)))
            thinks = rng.exponential(shape.think_time_mean_s, size=turns - 1)
            conversations.append(list(thinks))
        return conversations

    def evaluate(
        self,
        policy: str,
        count: int = 100,
        shape: Optional[ConversationShape] = None,
    ) -> OffloadScore:
        """Score one policy over ``count`` conversations."""
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; use {self.POLICIES}")
        shape = shape or ConversationShape()
        score = OffloadScore(policy=policy)
        per_turn_tokens = shape.turn_prompt_tokens + shape.turn_output_tokens
        for thinks in self._conversations(count, shape):
            context_tokens = per_turn_tokens  # after the first turn
            for think_s in thinks:
                kv_bytes = self.model.kv_cache_bytes(context_tokens)
                score.resumes += 1
                if policy == "keep":
                    score.fast_tier_byte_seconds += kv_bytes * think_s
                elif policy == "offload":
                    transfer = kv_bytes / self.offload_bandwidth
                    # out at turn end, back at resume
                    score.resume_latency_total_s += transfer
                elif policy == "drop":
                    traffic = prefill_traffic(self.model, context_tokens)
                    timing = self.roofline.time_step(
                        traffic.flops,
                        {"hbm": traffic.bytes_read},
                        {"hbm": traffic.bytes_written},
                    )
                    score.recompute_flops += traffic.flops
                    score.resume_latency_total_s += timing.duration_s
                elif policy == "mrm":
                    # KV was written to MRM with retention >= think time:
                    # nothing held in the fast tier, nothing to restore.
                    pass
                context_tokens += per_turn_tokens
        return score

    def compare(
        self, count: int = 100, shape: Optional[ConversationShape] = None
    ) -> Dict[str, OffloadScore]:
        """All four policies on the same conversation population."""
        return {
            policy: self.evaluate(policy, count, shape)
            for policy in self.POLICIES
        }
