"""Cluster-level memory tiers.

A :class:`MemoryTier` is a pool of one memory technology with aggregate
capacity and bandwidth — the granularity placement policies reason at.
Builders construct the tiers the paper's hierarchy sketch names: HBM
(fast, expensive, refresh-burdened), MRM (dense, read-fast, retention-
managed), LPDDR (cheap capacity), Flash (cold storage floor).

The MRM tier is built *from* a reference SCM technology at a chosen
retention point via :class:`~repro.core.retention.RetentionModel` — so
tiering experiments inherit the same physics as the device model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.retention import RetentionModel, RetentionParams
from repro.devices.base import TechnologyProfile
from repro.lint.effects.contracts import declared_pure
from repro.devices.catalog import HBM3E, LPDDR5X, NAND_SLC, RRAM_POTENTIAL
from repro.units import Bytes, GiB, HOUR, Joules, Ratio, TiB, Watts


@dataclass(frozen=True)
class MemoryTier:
    """One tier of the cluster memory hierarchy.

    Attributes
    ----------
    name / profile:
        Identity and underlying technology.
    capacity_bytes:
        Aggregate pool size.
    read_bandwidth / write_bandwidth:
        Aggregate sustained bandwidth (bytes/s).
    cost_usd:
        Acquisition cost of the pool (capacity * $/GiB).
    supports_managed_retention:
        True only for MRM tiers (placement policies may only put
        finite-lifetime data with relaxed integrity there).
    """

    name: str
    profile: TechnologyProfile
    capacity_bytes: int
    read_bandwidth: float
    write_bandwidth: float
    cost_usd: float
    supports_managed_retention: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier {self.name}: capacity must be positive")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError(f"tier {self.name}: bandwidth must be positive")

    @property
    def cost_per_gib(self) -> float:
        return self.cost_usd / (self.capacity_bytes / GiB)

    @declared_pure
    def read_energy_j(self, size_bytes: Bytes) -> Joules:
        return size_bytes * self.profile.read_energy_j_per_byte

    @declared_pure
    def write_energy_j(self, size_bytes: Bytes) -> Joules:
        return size_bytes * self.profile.write_energy_j_per_byte

    @declared_pure
    def refresh_power_w(self, occupancy: Ratio = 1.0) -> Watts:
        """Steady-state refresh power (0 for non-volatile tiers)."""
        if not self.profile.volatile:
            return 0.0
        per_interval = (
            self.capacity_bytes * occupancy * self.profile.write_energy_j_per_byte
        )
        return per_interval / self.profile.refresh_interval_s


@declared_pure
def hbm_tier(capacity_bytes: int, stacks: Optional[int] = None) -> MemoryTier:
    """An HBM3e pool; bandwidth scales with stack count (default: sized
    from capacity at 24 GiB/stack)."""
    if stacks is None:
        stacks = max(1, round(capacity_bytes / (24 * GiB)))
    bandwidth = stacks * HBM3E.read_bandwidth
    return MemoryTier(
        name="hbm",
        profile=HBM3E,
        capacity_bytes=capacity_bytes,
        read_bandwidth=bandwidth,
        write_bandwidth=bandwidth,
        cost_usd=(capacity_bytes / GiB) * HBM3E.cost_usd_per_gib,
    )


@declared_pure
def mrm_tier(
    capacity_bytes: int,
    retention_s: float = 6 * HOUR,
    reference: TechnologyProfile = RRAM_POTENTIAL,
    params: Optional[RetentionParams] = None,
    cost_discount_vs_hbm: float = 0.4,
) -> MemoryTier:
    """An MRM pool derived from ``reference`` at ``retention_s``.

    Cost: the paper argues MRM improves TCO/TB via density (stacking
    without capacitors, crossbar, MLC) and simpler manufacturing than
    HBM; ``cost_discount_vs_hbm`` expresses the assumed $/GiB ratio
    (default: MRM at 40% of HBM's cost per bit).  Read bandwidth is the
    derived profile's, scaled to the pool size like HBM stacks.
    """
    model = RetentionModel(reference, params)
    profile = model.profile_at(retention_s, name=f"mrm@{retention_s:.0f}s")
    # Pool bandwidth: one MRM "stack-equivalent" per 24 GiB, like HBM.
    # Reads stream from all 12 stacked dies in parallel (the metric MRM
    # optimizes); writes are program-power-limited to ~2 concurrent dies
    # per stack — the write throughput the paper explicitly trades away.
    units = max(1, round(capacity_bytes / (24 * GiB)))
    return MemoryTier(
        name="mrm",
        profile=profile,
        capacity_bytes=capacity_bytes,
        read_bandwidth=units * profile.read_bandwidth * 12,
        write_bandwidth=units * profile.write_bandwidth * 2,
        cost_usd=(capacity_bytes / GiB)
        * HBM3E.cost_usd_per_gib
        * cost_discount_vs_hbm,
        supports_managed_retention=True,
    )


@declared_pure
def lpddr_tier(capacity_bytes: int, packages: Optional[int] = None) -> MemoryTier:
    """An LPDDR5X pool (GB200-style capacity tier [35])."""
    if packages is None:
        packages = max(1, round(capacity_bytes / (32 * GiB)))
    bandwidth = packages * LPDDR5X.read_bandwidth
    return MemoryTier(
        name="lpddr",
        profile=LPDDR5X,
        capacity_bytes=capacity_bytes,
        read_bandwidth=bandwidth,
        write_bandwidth=bandwidth,
        cost_usd=(capacity_bytes / GiB) * LPDDR5X.cost_usd_per_gib,
    )


def flash_tier(capacity_bytes: int, devices: Optional[int] = None) -> MemoryTier:
    """An SLC-NAND pool (the cold floor; mostly a foil in experiments)."""
    if devices is None:
        devices = max(1, round(capacity_bytes / TiB))
    return MemoryTier(
        name="flash",
        profile=NAND_SLC,
        capacity_bytes=capacity_bytes,
        read_bandwidth=devices * NAND_SLC.read_bandwidth,
        write_bandwidth=devices * NAND_SLC.write_bandwidth,
        cost_usd=(capacity_bytes / GiB) * NAND_SLC.cost_usd_per_gib,
    )
