"""The retention-aware tier manager.

This is the cluster-level scheduler Section 4 describes: it "track[s]
the data expiration times, and decide[s] whether to refresh it or move
it to another tier based on the state of the requests that depend on
that data".

:class:`TierManager` manages a population of data objects over
(explicit) time across a tier set:

- **admit(obj, now)** — place a new object by policy;
- **touch(obj, now)** — record continued use (extends the needed-until
  horizon);
- **tick(now)** — at each object's retention deadline on an MRM tier,
  choose among:

  - *refresh* — still needed, refresh is cheaper than moving;
  - *migrate* — still needed, but moving (e.g. to LPDDR) beats paying
    refreshes (data went cold);
  - *drop* — nothing needs it (context ended): free the space.

The refresh-vs-migrate economics compare the energy of refreshing on
MRM for the remaining horizon against one move plus residence on the
destination tier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.placement import DataObject
from repro.obs import NULL_REGISTRY
from repro.tiering.tiers import MemoryTier


@dataclass
class TierManagerStats:
    admitted: int = 0
    refreshed: int = 0
    migrated: int = 0
    dropped: int = 0
    refresh_energy_j: float = 0.0
    migration_energy_j: float = 0.0
    bytes_dropped: int = 0


@dataclass
class _Resident:
    """A placed object plus its management state."""

    obj: DataObject
    tier: MemoryTier
    written_at: float
    needed_until: float

    def deadline(self) -> float:
        """Next retention deadline (inf on non-managed tiers)."""
        if not self.tier.supports_managed_retention:
            return math.inf
        return self.written_at + self.tier.profile.retention_s


class TierManager:
    """Lifetime-and-deadline-driven tier management.

    Parameters
    ----------
    tiers:
        The tier set; an MRM tier is recognized by
        ``supports_managed_retention``.
    demotion_tier:
        Tier name cold data migrates to (default ``"lpddr"`` if present).
    """

    def __init__(
        self,
        tiers: List[MemoryTier],
        demotion_tier: Optional[str] = None,
        obs=None,
    ) -> None:
        if not tiers:
            raise ValueError("need at least one tier")
        self.tiers = {t.name: t for t in tiers}
        if len(self.tiers) != len(tiers):
            raise ValueError("duplicate tier names")
        if demotion_tier is None and "lpddr" in self.tiers:
            demotion_tier = "lpddr"
        if demotion_tier is not None and demotion_tier not in self.tiers:
            raise KeyError(f"demotion tier {demotion_tier!r} not in tier set")
        self.demotion_tier = demotion_tier
        self.stats = TierManagerStats()
        self._residents: Dict[int, _Resident] = {}
        self._used: Dict[str, int] = {name: 0 for name in self.tiers}
        self.obs = obs if obs is not None else NULL_REGISTRY
        o = self.obs
        self._obs_admitted = o.counter("tier.objects_admitted_total")
        self._obs_refreshed = o.counter("tier.refreshes_total")
        self._obs_migrated = o.counter("tier.migrations_total")
        self._obs_dropped = o.counter("tier.objects_dropped_total")
        self._obs_bytes_dropped = o.counter("tier.bytes_dropped_total")
        self._obs_refresh_energy = o.counter("tier.refresh_energy_j_total")
        self._obs_migration_energy = o.counter("tier.migration_energy_j_total")
        # Per-tier occupancy gauges, updated on every charge/refund.
        self._obs_used: Dict[str, object] = {
            name: o.gauge("tier.bytes_used", tier=name) for name in self.tiers
        }

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def used_bytes(self, tier_name: str) -> int:
        return self._used[tier_name]

    def free_bytes(self, tier_name: str) -> int:
        return self.tiers[tier_name].capacity_bytes - self._used[tier_name]

    def _charge(self, tier: MemoryTier, obj: DataObject) -> None:
        if self.free_bytes(tier.name) < obj.size_bytes:
            raise RuntimeError(
                f"tier {tier.name} full ({self.free_bytes(tier.name)} B free, "
                f"need {obj.size_bytes})"
            )
        self._used[tier.name] += obj.size_bytes
        self._obs_used[tier.name].set(self._used[tier.name])

    def _refund(self, tier: MemoryTier, obj: DataObject) -> None:
        self._used[tier.name] -= obj.size_bytes
        if self._used[tier.name] < 0:
            raise AssertionError(f"negative usage on {tier.name}")
        self._obs_used[tier.name].set(self._used[tier.name])

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------
    def admit(self, obj: DataObject, tier_name: str, now: float) -> None:
        """Place ``obj`` on ``tier_name`` at time ``now``."""
        if obj.object_id in self._residents:
            raise ValueError(f"object {obj.name} already resident")
        tier = self.tiers[tier_name]
        self._charge(tier, obj)
        self._residents[obj.object_id] = _Resident(
            obj=obj,
            tier=tier,
            written_at=now,
            needed_until=now + obj.lifetime_s,
        )
        self.stats.admitted += 1
        self._obs_admitted.add()

    def touch(self, obj: DataObject, now: float, extend_s: Optional[float] = None) -> None:
        """The object is still in use: extend its needed-until horizon."""
        resident = self._resident(obj)
        resident.needed_until = max(
            resident.needed_until, now + (extend_s or obj.lifetime_s)
        )

    def remove(self, obj: DataObject) -> None:
        """Explicit removal (context finished, model unloaded)."""
        resident = self._residents.pop(obj.object_id, None)
        if resident is None:
            raise KeyError(f"object {obj.name} is not resident")
        self._refund(resident.tier, obj)
        self.stats.dropped += 1
        self.stats.bytes_dropped += obj.size_bytes
        self._obs_dropped.add()
        self._obs_bytes_dropped.add(obj.size_bytes)

    def tier_of(self, obj: DataObject) -> str:
        return self._resident(obj).tier.name

    def _resident(self, obj: DataObject) -> _Resident:
        resident = self._residents.get(obj.object_id)
        if resident is None:
            raise KeyError(f"object {obj.name} is not resident")
        return resident

    def resident_count(self) -> int:
        return len(self._residents)

    # ------------------------------------------------------------------
    # Deadline decisions
    # ------------------------------------------------------------------
    def tick(self, now: float) -> Dict[str, int]:
        """Process every retention deadline due at or before ``now``."""
        actions = {"refreshed": 0, "migrated": 0, "dropped": 0}
        # Deadlines may cascade (refresh re-arms); loop until quiescent.
        # Visit residents in sorted object-id order: _decide accumulates
        # float energy into shared stats, and float addition is not
        # associative, so insertion-order iteration would make the
        # totals depend on admission history.  _decide may also pop
        # entries mid-cascade, hence the .get() guard.
        progress = True
        while progress:
            progress = False
            for object_id in sorted(self._residents):
                resident = self._residents.get(object_id)
                if resident is None or resident.deadline() > now:
                    continue
                self._decide(resident, resident.deadline(), actions)
                progress = True
        return actions

    def _decide(self, resident: _Resident, when: float, actions: Dict[str, int]) -> None:
        obj = resident.obj
        if resident.needed_until <= when:
            # Nothing depends on the data any more: let it expire.
            self._residents.pop(obj.object_id)
            self._refund(resident.tier, obj)
            self.stats.dropped += 1
            self.stats.bytes_dropped += obj.size_bytes
            self._obs_dropped.add()
            self._obs_bytes_dropped.add(obj.size_bytes)
            actions["dropped"] += 1
            return
        if self._should_migrate(resident, when):
            self._migrate(resident, when)
            actions["migrated"] += 1
        else:
            self._refresh(resident, when)
            actions["refreshed"] += 1

    def _refresh(self, resident: _Resident, when: float) -> None:
        energy = resident.tier.write_energy_j(resident.obj.size_bytes)
        self.stats.refreshed += 1
        self.stats.refresh_energy_j += energy
        self._obs_refreshed.add()
        self._obs_refresh_energy.add(energy)
        resident.written_at = when

    def _should_migrate(self, resident: _Resident, when: float) -> bool:
        """Migrate when, over the remaining horizon, one move costs less
        than staying: staying pays per-deadline refreshes; moving pays
        the transfer *plus* every future read at the destination tier's
        (usually worse) read energy.  Hot data therefore stays put even
        when refreshes are pricey — only data that went cold demotes.
        """
        if self.demotion_tier is None:
            return False
        destination = self.tiers[self.demotion_tier]
        if destination.name == resident.tier.name:
            return False
        obj = resident.obj
        if self.free_bytes(destination.name) < obj.size_bytes:
            return False
        remaining = resident.needed_until - when
        retention = resident.tier.profile.retention_s
        refreshes_ahead = math.ceil(remaining / retention)
        refresh_cost = refreshes_ahead * resident.tier.write_energy_j(obj.size_bytes)
        read_energy_delta = (
            destination.profile.read_energy_j_per_byte
            - resident.tier.profile.read_energy_j_per_byte
        )
        future_read_penalty = max(
            0.0, remaining * obj.access.read_bytes_per_s * read_energy_delta
        )
        move_cost = (
            resident.tier.read_energy_j(obj.size_bytes)
            + destination.write_energy_j(obj.size_bytes)
            + future_read_penalty
        )
        return move_cost < refresh_cost

    def _migrate(self, resident: _Resident, when: float) -> None:
        destination = self.tiers[self.demotion_tier]
        obj = resident.obj
        self._refund(resident.tier, obj)
        self._charge(destination, obj)
        energy = resident.tier.read_energy_j(obj.size_bytes)
        energy += destination.write_energy_j(obj.size_bytes)
        self.stats.migrated += 1
        self.stats.migration_energy_j += energy
        self._obs_migrated.add()
        self._obs_migration_energy.add(energy)
        resident.tier = destination
        resident.written_at = when
