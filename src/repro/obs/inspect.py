"""Renderers behind ``python -m repro obs``.

Three views over exported observability artifacts:

- :func:`render_top` — the top-N counters of a snapshot, largest first
  (ties broken by name so output is deterministic).
- :func:`render_span_tree` — the parent/child span tree of a JSON-lines
  trace, indented, with simulated-time intervals.
- :func:`render_diff` — the flat difference list between two snapshots
  (what golden-test failures print).

All three return strings; the CLI only prints them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.snapshot import diff_snapshots, load_snapshot


def render_top(
    path: str, limit: int = 20, section: str = "counters"
) -> str:
    """The ``limit`` largest entries of one snapshot section."""
    snap = load_snapshot(path)
    if section not in ("counters", "gauges"):
        raise ValueError(
            f"unknown section {section!r} (expected counters or gauges)"
        )
    entries: Dict[str, float] = snap.get(section, {})
    ranked = sorted(entries.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    if not ranked:
        return f"(no {section} in {path})"
    width = max(len(name) for name, _ in ranked)
    lines = [f"top {len(ranked)} {section} — {path}"]
    for name, value in ranked:
        lines.append(f"  {name:<{width}}  {value:g}")
    return "\n".join(lines)


def _load_trace(path: str) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    with open(path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines or "trace_schema" not in lines[0]:
        raise ValueError(f"{path} is not a repro.obs trace (missing header)")
    return lines[0], lines[1:]


def render_span_tree(path: str, limit: Optional[int] = None) -> str:
    """The span tree of a trace file, one line per span, indented by
    parentage and ordered by span id (open order in simulated time)."""
    header, records = _load_trace(path)
    children: Dict[Optional[int], List[Dict[str, object]]] = {}
    for record in records:
        children.setdefault(record["parent_id"], []).append(record)

    lines = [f"trace {header.get('trace_schema')} — {path}"]
    emitted = 0

    def fmt(record: Dict[str, object]) -> str:
        start = record["start_s"]
        end = record["end_s"]
        interval = (
            f"[{start:g}s .. {end:g}s]" if end is not None else f"[{start:g}s .. open]"
        )
        attrs = record.get("attrs") or {}
        suffix = (
            " " + ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            if attrs
            else ""
        )
        return f"#{record['span_id']} {record['name']} {interval}{suffix}"

    def walk(parent: Optional[int], depth: int) -> None:
        nonlocal emitted
        for record in sorted(
            children.get(parent, []), key=lambda r: r["span_id"]
        ):
            if limit is not None and emitted >= limit:
                return
            lines.append("  " * (depth + 1) + fmt(record))
            emitted += 1
            walk(record["span_id"], depth + 1)

    walk(None, 0)
    if not records:
        lines.append("  (no spans)")
    elif limit is not None and emitted < len(records):
        lines.append(f"  ... {len(records) - emitted} more spans")
    return "\n".join(lines)


def render_diff(path_a: str, path_b: str) -> Tuple[str, int]:
    """Human-readable snapshot diff; returns (text, difference count)."""
    diffs = diff_snapshots(load_snapshot(path_a), load_snapshot(path_b))
    if not diffs:
        return f"snapshots identical: {path_a} == {path_b}", 0
    lines = [f"{len(diffs)} difference(s): {path_a} vs {path_b}"]
    for entry in diffs:
        lines.append(
            f"  [{entry['section']}] {entry['metric']}: "
            f"{entry['a']!r} -> {entry['b']!r}"
        )
    return "\n".join(lines), len(diffs)
