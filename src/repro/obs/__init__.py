"""Deterministic observability: metrics, sim-time tracing, exporters.

The simulator's benchmarks assert final aggregates; this package makes
the *path* to those aggregates visible without breaking the library's
reproducibility contract.  Three pieces:

- :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
  windowed histograms (reusing :class:`repro.sim.stats.Histogram`) and
  string info annotations, addressed by Prometheus-style
  ``name{label=value}`` keys.  A disabled registry is the shared
  :data:`NULL_REGISTRY` no-op object, cheap enough to leave threaded
  through every hot path (asserted < 2% on the events/sec bench in
  ``benchmarks/obs/``).
- :class:`~repro.obs.tracing.Tracer` — span records stamped with
  **simulated** time only (never the wall clock; lint rule RL011
  enforces this).  The sim kernel opens one span per process.
- :mod:`~repro.obs.snapshot` / :mod:`~repro.obs.export` — a versioned,
  sorted-key snapshot schema with a commutative merge (how sweep
  workers' snapshots reduce in :mod:`repro.parallel`), plus JSON-lines
  trace and Prometheus-text exporters.

Determinism contract: with a fixed (config, seed), every snapshot and
trace is bit-identical between serial and parallel runs — labels and
values may not derive from wall clocks, ``id()``, process ids, or hash
order.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    format_metric_name,
    parse_metric_name,
)
from repro.obs.snapshot import (
    SNAPSHOT_SCHEMA,
    canonical_json,
    diff_snapshots,
    empty_snapshot,
    load_snapshot,
    merge_snapshots,
    normalize_snapshot,
    relabel_snapshot,
    write_snapshot,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.export import (
    prometheus_text,
    write_prometheus,
    write_trace_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "SNAPSHOT_SCHEMA",
    "canonical_json",
    "diff_snapshots",
    "empty_snapshot",
    "format_metric_name",
    "load_snapshot",
    "merge_snapshots",
    "normalize_snapshot",
    "parse_metric_name",
    "prometheus_text",
    "relabel_snapshot",
    "write_prometheus",
    "write_snapshot",
    "write_trace_jsonl",
]
