"""Span tracing on simulated time.

A :class:`Span` is a named interval of **simulated** time with a
deterministic integer id, an optional parent, and a flat attribute
dict.  The tracer never reads the wall clock: its clock is a callable
the owner provides (the sim kernel installs ``lambda: sim.now``; CLI
commands without a simulator leave the zero clock, which still yields a
meaningful span *tree* with zero-length intervals).  Lint rule RL011
rejects wall-clock or ``id()``-derived span names/attributes.

Two usage styles:

- ``with tracer.span("decode", engine="e0"):`` — nested scope on the
  tracer's stack; children opened inside parent to it.
- ``span = tracer.begin("process:engine-0"); ... tracer.end(span)`` —
  explicit open/close for intervals that outlive a lexical scope
  (simulation processes).  ``begin`` records the stack top as parent
  but does not push, so interleaved processes don't corrupt nesting.

Span ids are assigned from a per-tracer sequence counter, so traces are
a pure function of the recorded workload — bit-identical across runs
and across serial/parallel sweeps (each sweep point owns its tracer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Span:
    """One named interval of simulated time."""

    span_id: int
    name: str
    start_s: float
    parent_id: Optional[int] = None
    end_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end_s is None

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def to_record(self) -> Dict[str, object]:
        """The JSON-lines export row (plain dict, sorted at dump time)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }


class _SpanScope:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracer._stack
        if stack and stack[-1] is self.span:
            stack.pop()
        self._tracer.end(self.span)


class Tracer:
    """Deterministic span recorder.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *simulated* time.
        Defaults to the zero clock; :class:`repro.sim.kernel.Simulator`
        installs its own via :meth:`set_clock` when a tracer is
        attached.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.spans: List[Span] = []
        self._next_id = 1
        self._stack: List[Span] = []

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, **attrs: object) -> Span:
        """Open a span at the current simulated time (explicit close)."""
        span = Span(
            span_id=self._next_id,
            name=name,
            start_s=self._clock(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close a span at the current simulated time (idempotent)."""
        if span.end_s is None:
            now = self._clock()
            if now < span.start_s:
                raise ValueError(
                    f"span {span.name!r} would end before it starts "
                    f"({now} < {span.start_s})"
                )
            span.end_s = now
        return span

    def span(self, name: str, **attrs: object) -> _SpanScope:
        """Scoped span: opens now, parents nested spans, closes on exit."""
        return _SpanScope(self, self.begin(name, **attrs))

    def instant(self, name: str, **attrs: object) -> Span:
        """Zero-length span (a point event on the timeline)."""
        return self.end(self.begin(name, **attrs))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def finish(self) -> List[Span]:
        """Close any spans still open (at the current time); return all."""
        for span in self.spans:
            self.end(span)
        return self.spans

    def __len__(self) -> int:
        return len(self.spans)


class _NullScope:
    __slots__ = ()
    span = None

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The disabled tracer: records nothing, costs one call."""

    enabled = False
    spans: List[Span] = []

    def set_clock(self, clock: Callable[[], float]) -> None:
        pass

    @property
    def now(self) -> float:
        return 0.0

    def begin(self, name: str, **attrs: object) -> None:
        return None

    def end(self, span: object) -> None:
        return None

    def span(self, name: str, **attrs: object) -> _NullScope:
        return _NULL_SCOPE

    def instant(self, name: str, **attrs: object) -> None:
        return None

    def finish(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer.
NULL_TRACER = NullTracer()
