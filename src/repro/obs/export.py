"""Exporters: Prometheus-style text dumps and JSON-lines traces.

Both formats are deterministic renderings of already-deterministic
inputs (sorted metric names, sequential span ids), so exported files —
like the snapshots they derive from — are a pure function of
(config, seed) and safe to diff across runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterable, Optional, Union

from repro.obs.registry import MetricsRegistry, NullRegistry, parse_metric_name
from repro.obs.tracing import NullTracer, Span, Tracer

_Registryish = Union[MetricsRegistry, NullRegistry, Dict[str, object]]


def _as_snapshot(source: _Registryish) -> Dict[str, object]:
    if isinstance(source, dict):
        return source
    return source.snapshot()


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = [f'{k}="{labels[k]}"' for k in sorted(labels)]
    return "{" + ",".join(parts) + "}"


def _prom_value(value: object) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def prometheus_text(source: _Registryish) -> str:
    """Render a registry or snapshot in Prometheus exposition style.

    Histograms render as ``_count``/``_sum``/``_min``/``_max`` plus one
    ``{quantile="..."}`` series per reported quantile (``NaN`` where a
    quantile is unavailable, e.g. after a cross-worker merge).
    """
    snap = _as_snapshot(source)
    lines = []
    typed = set()

    def declare(name: str, kind: str) -> None:
        # One TYPE line per metric family: labeled series of the same
        # name share a single declaration (exposition-format rule).
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for full, value in snap.get("counters", {}).items():
        name, labels = parse_metric_name(full)
        declare(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {_prom_value(value)}")
    for full, value in snap.get("gauges", {}).items():
        name, labels = parse_metric_name(full)
        declare(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {_prom_value(value)}")
    for full, summary in snap.get("histograms", {}).items():
        name, labels = parse_metric_name(full)
        declare(name, "summary")
        base = _prom_labels(labels)
        lines.append(f"{name}_count{base} {summary.get('count', 0)}")
        lines.append(f"{name}_sum{base} {_prom_value(summary.get('sum', 0.0))}")
        lines.append(f"{name}_min{base} {_prom_value(summary.get('min'))}")
        lines.append(f"{name}_max{base} {_prom_value(summary.get('max'))}")
        for key in sorted(summary):
            if key.startswith("p") and key[1:].isdigit():
                q = int(key[1:]) / 100.0
                qlabels = dict(labels)
                qlabels["quantile"] = f"{q:g}"
                lines.append(
                    f"{name}{_prom_labels(qlabels)} {_prom_value(summary[key])}"
                )
    for full, value in snap.get("info", {}).items():
        name, labels = parse_metric_name(full)
        ilabels = dict(labels)
        ilabels["value"] = str(value)
        declare(name, "info")
        lines.append(f"{name}{_prom_labels(ilabels)} 1")
    return "\n".join(lines) + ("\n" if lines else "")


def _atomic_write(path: str, text: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def write_prometheus(path: str, source: _Registryish) -> str:
    """Atomically write the Prometheus text dump; returns ``path``."""
    return _atomic_write(path, prometheus_text(source))


def write_trace_jsonl(
    path: str,
    tracer: Union[Tracer, NullTracer, Iterable[Span]],
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Write spans as JSON lines (one record per span, sorted keys).

    The first line is a header record (``{"trace_schema": ...}`` plus
    any caller ``meta``) so trace files are self-describing.  Spans are
    emitted in span-id order — the order they were opened in simulated
    time — making serial and parallel runs byte-identical.
    """
    spans = tracer.spans if hasattr(tracer, "spans") else list(tracer)
    header: Dict[str, object] = {"trace_schema": "repro.obs.trace/1"}
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    for span in sorted(spans, key=lambda s: s.span_id):
        lines.append(json.dumps(span.to_record(), sort_keys=True))
    return _atomic_write(path, "\n".join(lines) + "\n")
