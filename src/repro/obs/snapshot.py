"""Snapshot schema: versioned, sorted-key, mergeable metric dumps.

A snapshot is a plain dict (JSON-ready, picklable across sweep
workers)::

    {
        "schema": "repro.obs/1",
        "counters":   {"name{k=v}": float, ...},
        "gauges":     {"name{k=v}": float, ...},
        "histograms": {"name{k=v}": {"count": int, "sum": float,
                                     "min": float|None, "max": float|None,
                                     "p50": float|None, "p90": float|None,
                                     "p99": float|None}, ...},
        "info":       {"name{k=v}": str, ...},
    }

Merge semantics are commutative and order-fixed (sweep results are
reduced in grid order, but the operations themselves are insensitive to
it): counters and gauges sum; histogram *moments* (count/sum/min/max)
merge exactly while quantiles — not mergeable from summaries — become
``None``; info is first-value-wins with a ``!conflict`` marker appended
when workers disagree, so a disagreement is visible instead of silent.

Golden files are written through :func:`normalize_snapshot` (floats
rounded to 12 significant digits) + :func:`canonical_json` (sorted
keys, fixed separators) so diffs are reviewable and platform-stable.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Dict, Iterable, List, Optional

from repro.obs.registry import HISTOGRAM_QUANTILES, format_metric_name, parse_metric_name

#: Version tag every snapshot carries; bump on shape changes.
SNAPSHOT_SCHEMA = "repro.obs/1"

_SECTIONS = ("counters", "gauges", "histograms", "info")


def empty_snapshot() -> Dict[str, object]:
    """A fresh snapshot with the current schema tag and empty sections."""
    snap: Dict[str, object] = {"schema": SNAPSHOT_SCHEMA}
    for section in _SECTIONS:
        snap[section] = {}
    return snap


def _check_schema(snap: Dict[str, object]) -> None:
    schema = snap.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"snapshot schema {schema!r} is not {SNAPSHOT_SCHEMA!r}; "
            "regenerate the snapshot (or migrate it) before use"
        )


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Reduce worker snapshots into one fleet-wide snapshot.

    Commutative: counters/gauges sum, histogram moments merge exactly
    (quantiles become ``None``), info is first-value-wins with an
    explicit conflict marker.  Safe for the ``repro.parallel`` sweep
    reduction — serial and parallel runs produce identical results
    because the reduction is applied in grid order either way.

    Every per-snapshot section is reduced in sorted key order.  Worker
    snapshots may carry the same keys in different insertion orders
    (workers see different cell orders), and float addition is not
    associative — canonical key order keeps the merged floats
    bit-identical regardless of each worker's insertion history.
    """
    merged = empty_snapshot()
    counters: Dict[str, float] = merged["counters"]  # type: ignore[assignment]
    gauges: Dict[str, float] = merged["gauges"]  # type: ignore[assignment]
    histograms: Dict[str, Dict[str, object]] = merged["histograms"]  # type: ignore[assignment]
    info: Dict[str, str] = merged["info"]  # type: ignore[assignment]

    for snap in snapshots:
        _check_schema(snap)
        for name, value in sorted(snap.get("counters", {}).items()):
            counters[name] = counters.get(name, 0.0) + value
        for name, value in sorted(snap.get("gauges", {}).items()):
            gauges[name] = gauges.get(name, 0.0) + value
        for name, summary in sorted(snap.get("histograms", {}).items()):
            have = histograms.get(name)
            if have is None:
                merged_summary: Dict[str, object] = {
                    "count": summary["count"],
                    "sum": summary["sum"],
                    "min": summary["min"],
                    "max": summary["max"],
                }
            else:
                mins = [v for v in (have["min"], summary["min"]) if v is not None]
                maxs = [v for v in (have["max"], summary["max"]) if v is not None]
                merged_summary = {
                    "count": have["count"] + summary["count"],
                    "sum": have["sum"] + summary["sum"],
                    "min": min(mins) if mins else None,
                    "max": max(maxs) if maxs else None,
                }
            # Quantiles are not mergeable from summaries; make that
            # explicit rather than report a wrong number.
            for q in HISTOGRAM_QUANTILES:
                merged_summary[f"p{int(q * 100)}"] = None
            histograms[name] = merged_summary
        for name, value in sorted(snap.get("info", {}).items()):
            if name not in info:
                info[name] = value
            elif info[name] != value and not info[name].endswith("!conflict"):
                info[name] = f"{info[name]}!conflict"

    # Re-sort every section so merged output is key-ordered like
    # registry snapshots.
    for section in _SECTIONS:
        merged[section] = {k: merged[section][k] for k in sorted(merged[section])}  # type: ignore[index]
    return merged


def relabel_snapshot(snap: Dict[str, object], **labels: object) -> Dict[str, object]:
    """A copy of ``snap`` with ``labels`` merged into every metric name.

    Used to tag per-arm registries (``arm=baseline`` / ``arm=mitigated``)
    before merging them into one experiment snapshot.  A key collision
    with an existing label is an error, keeping provenance unambiguous.
    """
    _check_schema(snap)
    out = empty_snapshot()
    for section in _SECTIONS:
        dst: Dict[str, object] = out[section]  # type: ignore[assignment]
        for full, value in snap.get(section, {}).items():
            name, have = parse_metric_name(full)
            overlap = set(have).intersection(labels)
            if overlap:
                raise ValueError(
                    f"metric {full!r} already carries label(s) {sorted(overlap)}"
                )
            have.update({k: str(v) for k, v in labels.items()})
            dst[format_metric_name(name, have)] = value
        out[section] = {k: dst[k] for k in sorted(dst)}
    return out


def diff_snapshots(
    a: Dict[str, object], b: Dict[str, object]
) -> List[Dict[str, object]]:
    """Flat, sorted list of differences between two snapshots.

    Each entry: ``{"section", "metric", "a", "b"}`` where a missing
    metric reports ``None`` on its side.  Histogram summaries diff
    field-wise (``metric`` becomes ``name.field``).  Empty list means
    the snapshots are identical up to key order.
    """
    _check_schema(a)
    _check_schema(b)
    out: List[Dict[str, object]] = []
    for section in _SECTIONS:
        sa: Dict[str, object] = a.get(section, {})  # type: ignore[assignment]
        sb: Dict[str, object] = b.get(section, {})  # type: ignore[assignment]
        for name in sorted(set(sa) | set(sb)):
            va, vb = sa.get(name), sb.get(name)
            if section == "histograms" and va is not None and vb is not None:
                for fld in sorted(set(va) | set(vb)):
                    fa, fb = va.get(fld), vb.get(fld)
                    if fa != fb:
                        out.append(
                            {"section": section, "metric": f"{name}.{fld}", "a": fa, "b": fb}
                        )
            elif va != vb:
                out.append({"section": section, "metric": name, "a": va, "b": vb})
    return out


def _round_sig(value: float, sig_digits: int) -> float:
    if value == 0 or not math.isfinite(value):
        return value
    return round(value, sig_digits - 1 - int(math.floor(math.log10(abs(value)))))


def normalize_snapshot(
    snap: Dict[str, object], sig_digits: Optional[int] = 12
) -> Dict[str, object]:
    """A golden-file-ready copy: floats rounded to ``sig_digits``
    significant digits (pass ``None`` to skip rounding), sections
    sorted.  Rounding absorbs last-ulp platform noise while still
    failing loudly on any real (single-count) perturbation."""
    _check_schema(snap)

    def norm(value: object) -> object:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return value
        if isinstance(value, float) and sig_digits is not None:
            return _round_sig(value, sig_digits)
        return value

    out = empty_snapshot()
    for section in _SECTIONS:
        dst: Dict[str, object] = out[section]  # type: ignore[assignment]
        for name in sorted(snap.get(section, {})):
            value = snap[section][name]  # type: ignore[index]
            if isinstance(value, dict):
                dst[name] = {k: norm(value[k]) for k in sorted(value)}
            else:
                dst[name] = norm(value)
    return out


def canonical_json(snap: Dict[str, object]) -> str:
    """Deterministic serialization: sorted keys, fixed separators,
    trailing newline (golden files diff cleanly in git)."""
    return json.dumps(snap, sort_keys=True, indent=2) + "\n"


def write_snapshot(path: str, snap: Dict[str, object]) -> str:
    """Atomically write ``snap`` as canonical JSON; returns ``path``."""
    _check_schema(snap)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(canonical_json(snap))
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_snapshot(path: str) -> Dict[str, object]:
    """Read a snapshot written by :func:`write_snapshot` (schema-checked)."""
    with open(path) as fh:
        snap = json.load(fh)
    _check_schema(snap)
    return snap
