"""The metrics registry and its no-op twin.

Metric kinds and their cross-worker merge semantics (see
:func:`repro.obs.snapshot.merge_snapshots`):

- **counter** — monotonically increasing; merges by sum.
- **gauge** — last-set level; merges by sum (a merged snapshot reads as
  the fleet-wide total, e.g. resident bytes across workers).
- **histogram** — sample distribution backed by
  :class:`repro.sim.stats.Histogram`; snapshots carry exact moments
  (count/sum/min/max) plus a fixed quantile set.  Moments merge
  exactly; quantiles cannot be merged from summaries and become
  ``None`` in merged snapshots.
- **info** — a string annotation (schema versions, fingerprints);
  merges order-fixed first-value-wins and flags conflicts.

Naming: metrics are addressed as ``name{label=value,...}`` with labels
sorted by key, so the registry needs no separate label dimension and
snapshots stay flat, diffable JSON.  Names and labels must be pure
functions of (config, seed): lint rule RL011 rejects wall-clock or
``id()``-derived label/value expressions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.sim.stats import Histogram as _SampleHistogram

#: Characters that would break the ``name{a=b,c=d}`` addressing scheme.
_FORBIDDEN = set('{}=,"\n')

#: Quantiles every histogram snapshot reports.
HISTOGRAM_QUANTILES = (0.5, 0.9, 0.99)


def _check_token(token: str, what: str) -> str:
    if not token:
        raise ValueError(f"{what} must be non-empty")
    bad = _FORBIDDEN.intersection(token)
    if bad:
        raise ValueError(
            f"{what} {token!r} contains reserved character(s) {sorted(bad)}"
        )
    return token


def format_metric_name(name: str, labels: Optional[Dict[str, object]] = None) -> str:
    """Canonical ``name{k=v,...}`` key with labels sorted by key."""
    _check_token(name, "metric name")
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        _check_token(key, "label key")
        value = _check_token(str(labels[key]), "label value")
        parts.append(f"{key}={value}")
    return f"{name}{{{','.join(parts)}}}"


def parse_metric_name(full: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`format_metric_name`."""
    if not full.endswith("}") or "{" not in full:
        return full, {}
    name, _, rest = full.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest[:-1].split(","):
        if pair:
            key, _, value = pair.partition("=")
            labels[key] = value
    return name, labels


class ObsCounter:
    """Monotonic counter (events, bytes, tokens)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ObsCounter {self.name}={self.value}>"


class ObsGauge:
    """Last-set level (occupancy, queue depth, resident bytes)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ObsGauge {self.name}={self.value}>"


class ObsHistogram:
    """Sample distribution; storage is :class:`repro.sim.stats.Histogram`."""

    kind = "histogram"
    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples = _SampleHistogram(name)

    def observe(self, value: float) -> None:
        self.samples.observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self.samples.observe_many(values)

    @property
    def count(self) -> int:
        return self.samples.count

    def summary(self) -> Dict[str, object]:
        """The snapshot form: exact moments plus fixed quantiles."""
        h = self.samples
        out: Dict[str, object] = {
            "count": h.count,
            "sum": h.total,
            "min": None if h.count == 0 else h.min(),
            "max": None if h.count == 0 else h.max(),
        }
        for q in HISTOGRAM_QUANTILES:
            out[f"p{int(q * 100)}"] = h.quantile(q)
        return out


class ObsInfo:
    """A string annotation (fingerprints, schema/config identifiers)."""

    kind = "info"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = ""

    def set(self, value: str) -> None:
        self.value = str(value)


class MetricsRegistry:
    """Named bag of observability metrics with lazy creation.

    >>> reg = MetricsRegistry()
    >>> reg.counter("reads_total", device="mrm0").add(3)
    >>> reg.snapshot()["counters"]["reads_total{device=mrm0}"]
    3.0
    """

    #: Distinguishes a live registry from :data:`NULL_REGISTRY` without
    #: an isinstance check in hot paths.
    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, labels: Dict[str, object], cls: type):
        full = format_metric_name(name, labels)
        metric = self._metrics.get(full)
        if metric is None:
            metric = cls(full)
            self._metrics[full] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {full!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> ObsCounter:
        return self._get(name, labels, ObsCounter)

    def gauge(self, name: str, **labels: object) -> ObsGauge:
        return self._get(name, labels, ObsGauge)

    def histogram(self, name: str, **labels: object) -> ObsHistogram:
        return self._get(name, labels, ObsHistogram)

    def info(self, name: str, **labels: object) -> ObsInfo:
        return self._get(name, labels, ObsInfo)

    def __contains__(self, full_name: str) -> bool:
        return full_name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> Sequence[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """The versioned, sorted-key snapshot of every metric.

        Shape (see ``docs/OBSERVABILITY.md`` for the schema contract)::

            {"schema": ..., "counters": {...}, "gauges": {...},
             "histograms": {...}, "info": {...}}
        """
        from repro.obs.snapshot import empty_snapshot

        snap = empty_snapshot()
        for full in sorted(self._metrics):
            metric = self._metrics[full]
            if isinstance(metric, ObsCounter):
                snap["counters"][full] = metric.value
            elif isinstance(metric, ObsGauge):
                snap["gauges"][full] = metric.value
            elif isinstance(metric, ObsHistogram):
                snap["histograms"][full] = metric.summary()
            elif isinstance(metric, ObsInfo):
                snap["info"][full] = metric.value
        return snap


class _NullMetric:
    """Accepts every recording call and does nothing.

    One shared instance stands in for every metric of a
    :class:`NullRegistry`, so a disabled registry allocates nothing
    per call site.
    """

    kind = "null"
    __slots__ = ()
    name = ""
    value = 0.0
    count = 0

    def add(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: object) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass

    def summary(self) -> Dict[str, object]:
        return {}


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled registry: every accessor returns the shared no-op
    metric; :meth:`snapshot` is empty.  Components hold this by default
    so instrumentation costs one attribute call when observability is
    off (< 2% on the events/sec bench, asserted in ``benchmarks/obs/``).
    """

    enabled = False

    def counter(self, name: str, **labels: object) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: object) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels: object) -> _NullMetric:
        return _NULL_METRIC

    def info(self, name: str, **labels: object) -> _NullMetric:
        return _NULL_METRIC

    def __contains__(self, full_name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def names(self) -> Sequence[str]:
        return []

    def snapshot(self) -> Dict[str, object]:
        from repro.obs.snapshot import empty_snapshot

        return empty_snapshot()


#: The shared disabled registry every instrumented component defaults to.
NULL_REGISTRY = NullRegistry()
