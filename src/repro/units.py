"""Unit constants and small conversion helpers used across the library.

Everything in this library is expressed in SI base units internally:
bytes, seconds, joules, dollars.  These constants exist so call sites
read naturally (``3 * GiB``, ``5 * YEAR``) and so unit intent is explicit
at every boundary.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (binary and decimal)
# ---------------------------------------------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB
TB = 1_000 * GB

BITS_PER_BYTE = 8

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------
NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365.25 * DAY

# ---------------------------------------------------------------------------
# Energy / power
# ---------------------------------------------------------------------------
PICOJOULE = 1e-12
NANOJOULE = 1e-9
MICROJOULE = 1e-6
MILLIJOULE = 1e-3
JOULE = 1.0
WATT = 1.0  # J/s
KILOWATT = 1e3
MEGAWATT = 1e6
KWH = 3.6e6  # joules in a kilowatt-hour

# ---------------------------------------------------------------------------
# Quantity annotation aliases
# ---------------------------------------------------------------------------
# Plain type aliases that document what dimension a parameter, return
# value, or dataclass field carries.  They cost nothing at runtime, and
# repro-lint's dataflow pass (RL012/RL013) reads them as ground truth
# when checking values that flow across function boundaries:
#
#     def decay_after(dwell: Seconds, capacity: Bytes) -> Ratio: ...
#
# Byte counts are float because expectation-based models routinely
# produce fractional bytes; Count stays int (whole things).
Bytes = float
Seconds = float
Joules = float
Watts = float
Ratio = float
Count = int


def bytes_to_human(n: float) -> str:
    """Render a byte count with a binary suffix: ``bytes_to_human(3*GiB)``
    -> ``'3.00 GiB'``."""
    n = float(n)
    for unit, size in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= size:
            return f"{n / size:.2f} {unit}"
    return f"{n:.0f} B"


def seconds_to_human(t: float) -> str:
    """Render a duration with the largest natural unit."""
    t = float(t)
    for unit, size in (
        ("y", YEAR),
        ("d", DAY),
        ("h", HOUR),
        ("min", MINUTE),
        ("s", SECOND),
        ("ms", MILLISECOND),
        ("us", MICROSECOND),
        ("ns", NANOSECOND),
    ):
        if abs(t) >= size:
            return f"{t / size:.2f} {unit}"
    return f"{t:.2e} s"


def pj_per_bit_to_j_per_byte(pj_per_bit: float) -> float:
    """Convert an energy given in pJ/bit (the unit datasheets use) to
    joules per byte (the unit the models use)."""
    return pj_per_bit * PICOJOULE * BITS_PER_BYTE


def j_per_byte_to_pj_per_bit(j_per_byte: float) -> float:
    """Inverse of :func:`pj_per_bit_to_j_per_byte`."""
    return j_per_byte / (PICOJOULE * BITS_PER_BYTE)
