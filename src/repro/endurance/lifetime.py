"""Device lifetime under sustained writes.

The inverse view of Figure 1: instead of "how much endurance does the
workload need", "how long does a given device survive the workload".
Used by E12 (Flash inadequacy: an SLC pool burns out in months under the
KV stream) and by tiering policies weighing MRM wear budgets.
"""

from __future__ import annotations

from repro.devices.base import TechnologyProfile
from repro.units import Bytes, DAY, Ratio, Seconds, YEAR


def device_lifetime_s(
    profile: TechnologyProfile,
    capacity_bytes: Bytes,
    write_rate_bytes_per_s: float,
    write_amplification: Ratio = 1.0,
    wear_leveling_efficiency: Ratio = 1.0,
) -> Seconds:
    """Seconds until the device's rated endurance is consumed.

    ``lifetime = endurance * capacity * efficiency / (rate * WA)``:
    ideal wear-leveling spreads writes over all cells
    (``efficiency=1``); skewed wear shortens life proportionally.
    """
    if capacity_bytes <= 0 or write_rate_bytes_per_s <= 0:
        raise ValueError("capacity and write rate must be positive")
    if write_amplification < 1.0:
        raise ValueError("write amplification is >= 1 by definition")
    if not 0.0 < wear_leveling_efficiency <= 1.0:
        raise ValueError("wear-leveling efficiency must be in (0, 1]")
    total_writable = (
        profile.endurance_cycles * capacity_bytes * wear_leveling_efficiency
    )
    return total_writable / (write_rate_bytes_per_s * write_amplification)


def sustainable_write_rate(
    profile: TechnologyProfile,
    capacity_bytes: Bytes,
    target_lifetime_s: Seconds = 5 * YEAR,
    write_amplification: Ratio = 1.0,
) -> float:
    """Max bytes/s the device can absorb and still last the target."""
    if target_lifetime_s <= 0:
        raise ValueError("lifetime must be positive")
    if write_amplification < 1.0:
        raise ValueError("write amplification is >= 1 by definition")
    return (
        profile.endurance_cycles
        * capacity_bytes
        / (target_lifetime_s * write_amplification)
    )


def drive_writes_per_day(
    profile: TechnologyProfile,
    write_rate_bytes_per_s: float,
    capacity_bytes: Bytes,
) -> float:
    """The storage-industry DWPD figure for a given write stream."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    daily_bytes = write_rate_bytes_per_s * DAY
    return daily_bytes / capacity_bytes
