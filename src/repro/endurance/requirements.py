"""Figure 1: workload endurance requirements vs technology endurance.

The paper's method (Section 3):

  *Weights* — "infrequent, bulk overwrites when the model is replaced
  ... We estimate the endurance required over 5 years for a conservative
  hourly update and an intensive once per second update."  Each update
  rewrites every weight cell once, so writes/cell = lifetime / interval.

  *KV cache* — "writes occur both during prefill and decode, one
  self-attention vector per context token ... we use the throughputs and
  median context lengths reported for the Llama2-70B model in Splitwise
  [37].  For an expected lifetime of five years, we compute the number
  of KV cache writes, and infer the average number of writes per cell."
  Writes/cell = (token rate x KV bytes/token x lifetime) / capacity —
  assuming writes spread over the full KV pool (software wear-leveling
  by zone rotation makes this the steady state).

:func:`figure1_data` assembles requirements and the product/potential
endurance tables from :mod:`repro.devices.catalog` into the full figure.
The expected *shape* (the paper's two observations):

1. HBM (~1e16) is vastly overprovisioned — requirements top out ~1e8;
2. shipped SCM products (1e5-1e6) miss the KV-cache requirement, while
   the underlying technologies' potential (1e9-1e15) clears it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.devices.catalog import (
    PRODUCT_ENDURANCE,
    TECHNOLOGY_POTENTIAL_ENDURANCE,
)
from repro.units import GiB, HOUR, YEAR
from repro.workload.model import LLAMA2_70B, ModelConfig


@dataclass(frozen=True)
class SplitwiseCalibration:
    """Published Llama2-70B serving statistics from Splitwise [37].

    Values are the public paper's reported operating points for one
    DGX-class machine (8 accelerators, 640 GB HBM):

    - prefill-phase machines sustain thousands of prompt tokens/s;
    - decode-phase machines sustain hundreds of generated tokens/s;
    - median prompt ~1020 / median output ~129 tokens (conversation).
    """

    prefill_tokens_per_s: float = 6000.0
    decode_tokens_per_s: float = 700.0
    median_prompt_tokens: int = 1020
    median_output_tokens: int = 129
    machine_hbm_bytes: int = 640 * GiB

    @property
    def mixed_tokens_per_s(self) -> float:
        """Aggregate KV-vector write rate of a machine serving whole
        requests: prompts arrive at the rate the machine can prefill
        them interleaved with decode.  Weighted by the median request's
        phase token counts."""
        prompt = self.median_prompt_tokens
        output = self.median_output_tokens
        request_time = (
            prompt / self.prefill_tokens_per_s + output / self.decode_tokens_per_s
        )
        return (prompt + output) / request_time


@dataclass(frozen=True)
class EnduranceRequirement:
    """One bar on the requirements side of Figure 1."""

    name: str
    writes_per_cell: float
    detail: str = ""


def weight_update_requirement(
    update_interval_s: float, lifetime_s: float = 5 * YEAR, name: Optional[str] = None
) -> EnduranceRequirement:
    """Writes per weight cell over the deployment lifetime.

    A model update is a bulk overwrite of every weight cell, so the
    requirement is simply how many updates fit in the lifetime.
    """
    if update_interval_s <= 0 or lifetime_s <= 0:
        raise ValueError("intervals must be positive")
    writes = lifetime_s / update_interval_s
    return EnduranceRequirement(
        name=name or f"weights (every {update_interval_s:.0f}s)",
        writes_per_cell=writes,
        detail=f"bulk overwrite every {update_interval_s:.0f}s for "
        f"{lifetime_s / YEAR:.0f}y",
    )


def kv_cache_requirement(
    model: ModelConfig = LLAMA2_70B,
    token_rate_per_s: Optional[float] = None,
    capacity_bytes: Optional[int] = None,
    lifetime_s: float = 5 * YEAR,
    calibration: Optional[SplitwiseCalibration] = None,
    name: str = "KV cache",
) -> EnduranceRequirement:
    """Writes per cell implied by the KV append stream.

    Defaults to the Splitwise calibration: mixed prefill+decode token
    rate on a 640 GB machine, writes spread across the machine's KV
    pool (capacity minus the weights replica).
    """
    calibration = calibration or SplitwiseCalibration()
    if token_rate_per_s is None:
        token_rate_per_s = calibration.mixed_tokens_per_s
    if capacity_bytes is None:
        capacity_bytes = calibration.machine_hbm_bytes - model.weights_bytes
    if token_rate_per_s <= 0 or capacity_bytes <= 0 or lifetime_s <= 0:
        raise ValueError("rates, capacity and lifetime must be positive")
    bytes_per_s = token_rate_per_s * model.kv_bytes_per_token
    total_bytes = bytes_per_s * lifetime_s
    writes = total_bytes / capacity_bytes
    return EnduranceRequirement(
        name=name,
        writes_per_cell=writes,
        detail=(
            f"{token_rate_per_s:.0f} tok/s x {model.kv_bytes_per_token} B/tok "
            f"over {capacity_bytes / GiB:.0f} GiB for {lifetime_s / YEAR:.0f}y"
        ),
    )


def figure1_data(
    model: ModelConfig = LLAMA2_70B,
    lifetime_s: float = 5 * YEAR,
    calibration: Optional[SplitwiseCalibration] = None,
) -> Dict[str, object]:
    """Everything Figure 1 plots.

    Returns a dict with:

    - ``requirements``: the three workload bars (weights hourly, weights
      per-second, KV cache at the Splitwise operating point);
    - ``kv_range``: (decode-only, prefill-only) KV requirement bounds;
    - ``products`` / ``potentials``: endurance of shipped devices and of
      the underlying technologies (writes per cell).
    """
    calibration = calibration or SplitwiseCalibration()
    requirements = [
        weight_update_requirement(HOUR, lifetime_s, name="weights (hourly)"),
        weight_update_requirement(1.0, lifetime_s, name="weights (every 1s)"),
        kv_cache_requirement(
            model, lifetime_s=lifetime_s, calibration=calibration
        ),
    ]
    capacity = calibration.machine_hbm_bytes - model.weights_bytes
    kv_low = kv_cache_requirement(
        model,
        token_rate_per_s=calibration.decode_tokens_per_s,
        capacity_bytes=capacity,
        lifetime_s=lifetime_s,
        name="KV cache (decode-only)",
    )
    kv_high = kv_cache_requirement(
        model,
        token_rate_per_s=calibration.prefill_tokens_per_s,
        capacity_bytes=capacity,
        lifetime_s=lifetime_s,
        name="KV cache (prefill-only)",
    )
    return {
        "requirements": requirements,
        "kv_range": (kv_low, kv_high),
        "products": dict(PRODUCT_ENDURANCE),
        "potentials": dict(TECHNOLOGY_POTENTIAL_ENDURANCE),
        "lifetime_s": lifetime_s,
        "model": model.name,
    }


def check_figure1_shape(data: Optional[Dict[str, object]] = None) -> Dict[str, bool]:
    """The paper's two stated observations, as booleans.

    Used by tests and EXPERIMENTS.md to certify the reproduction:

    - ``hbm_overprovisioned``: HBM endurance exceeds every requirement
      by >= 6 orders of magnitude;
    - ``products_insufficient``: at least one shipped SCM product falls
      below the KV-cache requirement;
    - ``potential_sufficient``: every SCM technology's potential clears
      the KV-cache requirement.
    """
    data = data or figure1_data()
    requirements = data["requirements"]
    kv = next(r for r in requirements if r.name == "KV cache")
    max_requirement = max(r.writes_per_cell for r in requirements)
    hbm = data["products"]["HBM / DRAM"]
    products = {
        k: v for k, v in data["products"].items() if k != "HBM / DRAM"
    }
    potentials = {
        k: v
        for k, v in data["potentials"].items()
        if k not in ("HBM / DRAM", "NAND Flash")
    }
    return {
        "hbm_overprovisioned": hbm >= max_requirement * 1e6,
        "products_insufficient": any(
            v < kv.writes_per_cell for v in products.values()
        ),
        "potential_sufficient": all(
            v >= kv.writes_per_cell for v in potentials.values()
        ),
    }
