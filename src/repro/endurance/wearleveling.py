"""Wear-leveling algorithm evaluation on synthetic write streams.

Section 4 moves wear-leveling into software; this module quantifies what
that policy is worth.  A :class:`WearLevelingSimulator` drives a skewed
logical write stream (Zipf-hot addresses, the worst case for wear) at a
fixed physical block pool under three policies:

- ``"none"`` — logical address = physical block (direct map);
- ``"dynamic"`` — remap each write to the least-worn free block
  (what the MRM controller's zone allocation achieves);
- ``"static"`` — dynamic plus periodic cold-data rotation: the
  coldest-resident block is forcibly remapped when imbalance exceeds a
  threshold (classic static wear-leveling [7]).

Metric: wear imbalance (max/mean) and effective lifetime multiplier
versus the no-leveling baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class WearStreamConfig:
    """Shape of the synthetic logical write stream."""

    num_blocks: int = 256
    writes: int = 50_000
    zipf_s: float = 1.2  # skew; >1 is heavily hot-spotted
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 2 or self.writes < 1:
            raise ValueError("need >= 2 blocks and >= 1 write")
        if self.zipf_s <= 1.0:
            raise ValueError("numpy's zipf needs s > 1")


class WearLevelingSimulator:
    """Run one policy over a synthetic stream and report wear stats."""

    POLICIES = ("none", "dynamic", "static")

    def __init__(
        self, config: WearStreamConfig, policy: str = "dynamic",
        rotation_threshold: float = 2.0,
    ) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        self.config = config
        self.policy = policy
        self.rotation_threshold = rotation_threshold
        self.wear = np.zeros(config.num_blocks, dtype=np.int64)
        #: logical -> physical mapping (identity to start)
        self.mapping = np.arange(config.num_blocks)
        self.rotations = 0

    def _logical_stream(self) -> np.ndarray:
        rng = np.random.default_rng(self.config.seed)
        draws = rng.zipf(self.config.zipf_s, size=self.config.writes)
        return (draws - 1) % self.config.num_blocks

    def run(self) -> Dict[str, float]:
        """Execute the stream; returns the wear report."""
        stream = self._logical_stream()
        if self.policy == "none":
            np.add.at(self.wear, stream % self.config.num_blocks, 1)
        else:
            for logical in stream:
                self._write(int(logical))
        return self.report()

    def _write(self, logical: int) -> None:
        physical = int(self.mapping[logical])
        self.wear[physical] += 1
        if self.policy == "static":
            self._maybe_rotate(logical)
        elif self.policy == "dynamic":
            # Remap this logical block to the least-worn physical block,
            # swapping with whoever holds it (free-list abstraction).
            self._remap_to_coolest(logical)

    def _remap_to_coolest(self, logical: int) -> None:
        coolest = int(np.argmin(self.wear))
        current = int(self.mapping[logical])
        if coolest == current:
            return
        holder = int(np.where(self.mapping == coolest)[0][0])
        self.mapping[logical], self.mapping[holder] = (
            self.mapping[holder],
            self.mapping[logical],
        )

    def _maybe_rotate(self, logical: int) -> None:
        mean = self.wear.mean()
        if mean <= 0:
            return
        if self.wear.max() / mean < self.rotation_threshold:
            self._remap_to_coolest(logical)
            return
        # Forced rotation: move the hottest logical block onto the
        # coldest physical block and vice versa.
        hottest_physical = int(np.argmax(self.wear))
        coldest_physical = int(np.argmin(self.wear))
        hot_logical = int(np.where(self.mapping == hottest_physical)[0][0])
        cold_logical = int(np.where(self.mapping == coldest_physical)[0][0])
        self.mapping[hot_logical], self.mapping[cold_logical] = (
            self.mapping[cold_logical],
            self.mapping[hot_logical],
        )
        self.rotations += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def imbalance(self) -> float:
        mean = self.wear.mean()
        if mean <= 0:
            return 1.0
        return float(self.wear.max() / mean)

    def lifetime_multiplier(self) -> float:
        """Device life vs the perfectly-skewless ideal: 1/normalized-max.

        With total writes W over B blocks, ideal peak wear is W/B; the
        policy's peak wear determines when the first block dies, so the
        multiplier is ideal-peak / observed-peak (<= 1.0).
        """
        peak = float(self.wear.max())
        if peak <= 0:
            return 1.0
        ideal_peak = self.wear.sum() / len(self.wear)
        return ideal_peak / peak

    def report(self) -> Dict[str, float]:
        return {
            "policy": self.policy,
            "writes": float(self.wear.sum()),
            "max_wear": float(self.wear.max()),
            "mean_wear": float(self.wear.mean()),
            "imbalance": self.imbalance(),
            "lifetime_multiplier": self.lifetime_multiplier(),
            "rotations": float(self.rotations),
        }


def compare_policies(config: Optional[WearStreamConfig] = None) -> List[Dict[str, float]]:
    """Run all three policies on the same stream (same seed)."""
    config = config or WearStreamConfig()
    return [
        WearLevelingSimulator(config, policy=policy).run()
        for policy in WearLevelingSimulator.POLICIES
    ]
