"""Endurance analysis: Figure 1 and device-lifetime modeling.

- :mod:`~repro.endurance.requirements` — the paper's Figure 1
  arithmetic: writes-per-cell required over a 5-year deployment by
  KV-cache traffic and by model-weight updates, vs the endurance of
  products and technologies.
- :mod:`~repro.endurance.lifetime` — device lifetime under a sustained
  write rate; DWPD-style accounting.
- :mod:`~repro.endurance.wearleveling` — wear-leveling algorithm
  evaluation on synthetic write streams (none / dynamic / static).
"""

from repro.endurance.requirements import (
    EnduranceRequirement,
    SplitwiseCalibration,
    figure1_data,
    kv_cache_requirement,
    weight_update_requirement,
)
from repro.endurance.lifetime import (
    device_lifetime_s,
    drive_writes_per_day,
    sustainable_write_rate,
)
from repro.endurance.wearleveling import WearLevelingSimulator, WearStreamConfig

__all__ = [
    "EnduranceRequirement",
    "SplitwiseCalibration",
    "WearLevelingSimulator",
    "WearStreamConfig",
    "device_lifetime_s",
    "drive_writes_per_day",
    "figure1_data",
    "kv_cache_requirement",
    "sustainable_write_rate",
    "weight_update_requirement",
]
