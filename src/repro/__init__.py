"""Managed-Retention Memory (MRM): a reproduction of the HotOS '25 paper
"Storage Class Memory is Dead, All Hail Managed-Retention Memory:
Rethinking Memory for the AI Era" (Legtchenko et al., Microsoft
Research).

The library implements the memory class the paper proposes and every
substrate its analysis depends on:

================  ==========================================================
``repro.sim``      deterministic discrete-event simulation kernel
``repro.devices``  memory-technology models (DRAM/HBM/LPDDR/Flash/PCM/
                   RRAM/STT-MRAM) with a cited constants catalog
``repro.core``     the MRM contribution: retention physics, the zoned MRM
                   device, software controller, DCM, refresh scheduling
``repro.workload`` foundation-model inference workload (models, phases,
                   Splitwise-calibrated request/trace generation)
``repro.inference``AI-accelerator cluster simulator (roofline, paged KV
                   cache, continuous batching)
``repro.tiering``  retention-aware placement across HBM/MRM/LPDDR tiers
``repro.ecc``      retention-aware error correction (Hamming, BCH,
                   block-size analysis)
``repro.endurance``Figure 1 arithmetic and lifetime modeling
``repro.energy``   energy breakdowns and TCO / tokens-per-dollar
``repro.analysis`` workload characterization and table rendering
================  ==========================================================

Quickstart
----------
>>> from repro.endurance import figure1_data
>>> from repro.analysis import render_figure1
>>> print(render_figure1(figure1_data()))  # doctest: +SKIP

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure/per-claim reproduction harnesses (indexed in DESIGN.md and
EXPERIMENTS.md).
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "devices",
    "ecc",
    "endurance",
    "energy",
    "inference",
    "sim",
    "tiering",
    "units",
    "workload",
]
