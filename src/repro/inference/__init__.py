"""Inference-cluster simulation.

The paper characterizes foundation-model inference as the workload MRM
serves; this package is the executable form of that characterization —
an AI-accelerator cluster simulator detailed enough to measure the
quantities the paper argues from (memory-boundness, per-tier traffic,
token throughput, latency SLAs):

- :mod:`~repro.inference.accelerator` — accelerator configs (A100/H100/
  B200-class): peak FLOPs, memory capacity/bandwidth, efficiency factors.
- :mod:`~repro.inference.roofline` — the roofline timing model: a step
  takes ``max(compute time, memory time)``; classifies phases as
  compute- or memory-bound (E4).
- :mod:`~repro.inference.paging` — PagedAttention-style KV page
  allocation [22] with static virtual-to-physical mapping.
- :mod:`~repro.inference.kvcache` — per-context KV cache management on
  top of the pager, with prefix sharing [54].
- :mod:`~repro.inference.batching` — continuous (iteration-level)
  batching with admission control by free KV pages.
- :mod:`~repro.inference.engine` — one accelerator's serving loop as a
  discrete-event process; records TTFT/TBT/throughput and per-structure
  memory traffic.
- :mod:`~repro.inference.cluster` — multi-accelerator cluster with a
  dispatcher and aggregate metrics.
- :mod:`~repro.inference.analytic` — closed-form fluid-replay evaluator
  reproducing the cluster report ~100-1000x faster than the DES.
- :mod:`~repro.inference.sweep` — serving sweeps with a
  ``mode="des"|"analytic"`` switch and DES-vs-analytic cross-validation.
"""

from repro.inference.accelerator import (
    A100_80G,
    AcceleratorConfig,
    B200,
    H100_80G,
    MemoryTierSpec,
)
from repro.inference.roofline import (
    Boundedness,
    RooflineModel,
    StepTiming,
)
from repro.inference.paging import PagedAllocator, PageTable
from repro.inference.kvcache import KVCacheManager
from repro.inference.batching import BatchScheduler, RunningContext
from repro.inference.engine import EngineMetrics, InferenceEngine
from repro.inference.cluster import Cluster, ClusterReport
from repro.inference.splitwise import SplitReport, SplitwiseCluster
from repro.inference.power import (
    OperatingPoint,
    PowerModel,
    best_frequency_under_cap,
    power_capped_throughput,
)
from repro.inference.deployment import ModelSwapModel, SwapCost
from repro.inference.analytic import (
    UnsupportedScenario,
    analytic_cluster_report,
)
from repro.inference.sweep import (
    CROSS_VAL_METRICS,
    CROSS_VAL_TOLERANCE,
    SERVE_MODES,
    cross_validate,
    cross_validation_grid,
    run_serve_sweep,
    serve_point,
)

__all__ = [
    "A100_80G",
    "AcceleratorConfig",
    "B200",
    "BatchScheduler",
    "Boundedness",
    "CROSS_VAL_METRICS",
    "CROSS_VAL_TOLERANCE",
    "Cluster",
    "ClusterReport",
    "EngineMetrics",
    "H100_80G",
    "InferenceEngine",
    "KVCacheManager",
    "MemoryTierSpec",
    "ModelSwapModel",
    "OperatingPoint",
    "SwapCost",
    "PageTable",
    "PagedAllocator",
    "PowerModel",
    "RooflineModel",
    "best_frequency_under_cap",
    "power_capped_throughput",
    "RunningContext",
    "SERVE_MODES",
    "SplitReport",
    "SplitwiseCluster",
    "StepTiming",
    "UnsupportedScenario",
    "analytic_cluster_report",
    "cross_validate",
    "cross_validation_grid",
    "run_serve_sweep",
    "serve_point",
]
