"""AI-accelerator configurations.

An accelerator is, for this library's purposes, a peak compute rate plus
one or more attached memory tiers.  The defining constraint the paper
discusses — memory physically co-packaged for bandwidth, roughly a third
of package energy spent on memory — shows up here as per-tier bandwidth
and access-energy numbers taken from the device catalog.

Efficiency factors matter: real serving achieves well under peak.  The
``compute_efficiency`` (model FLOPs utilization, ~0.4-0.6 for good
serving stacks) and ``bandwidth_efficiency`` (~0.8) defaults give
realistic step times without modeling kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.devices.base import TechnologyProfile
from repro.devices.catalog import HBM3E
from repro.units import GiB


@dataclass(frozen=True)
class MemoryTierSpec:
    """One memory tier attached to an accelerator.

    Attributes
    ----------
    name:
        Tier label ("hbm", "mrm", "lpddr").
    capacity_bytes / read_bandwidth / write_bandwidth:
        Aggregate over all stacks/packages of this tier on the device.
    profile:
        The device-technology profile (for energy/refresh accounting).
    """

    name: str
    capacity_bytes: int
    read_bandwidth: float
    write_bandwidth: float
    profile: TechnologyProfile

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier {self.name}: capacity must be positive")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError(f"tier {self.name}: bandwidth must be positive")

    def read_energy_j(self, size_bytes: float) -> float:
        return size_bytes * self.profile.read_energy_j_per_byte

    def write_energy_j(self, size_bytes: float) -> float:
        return size_bytes * self.profile.write_energy_j_per_byte


@dataclass(frozen=True)
class AcceleratorConfig:
    """One AI accelerator: compute peak plus memory tiers.

    Attributes
    ----------
    peak_flops:
        Dense peak at serving precision (FP16/BF16 unless noted).
    tiers:
        Memory tiers by name.  ``"hbm"`` must exist; the engine places
        weights/KV/activations across tiers per its placement map.
    compute_efficiency / bandwidth_efficiency:
        Achievable fraction of peak in steady serving.
    board_power_w:
        Package TDP, for tokens/joule accounting.
    """

    name: str
    peak_flops: float
    tiers: Tuple[MemoryTierSpec, ...]
    compute_efficiency: float = 0.5
    bandwidth_efficiency: float = 0.8
    board_power_w: float = 700.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError("peak FLOPs must be positive")
        if not self.tiers:
            raise ValueError("accelerator needs at least one memory tier")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute efficiency must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError("bandwidth efficiency must be in (0, 1]")

    def tier(self, name: str) -> MemoryTierSpec:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise KeyError(f"{self.name} has no tier {name!r}; has {[t.name for t in self.tiers]}")

    @property
    def tier_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tiers)

    @property
    def total_memory_bytes(self) -> int:
        return sum(t.capacity_bytes for t in self.tiers)

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.compute_efficiency

    def effective_read_bandwidth(self, tier_name: str) -> float:
        return self.tier(tier_name).read_bandwidth * self.bandwidth_efficiency

    def with_tiers(self, tiers: Tuple[MemoryTierSpec, ...]) -> "AcceleratorConfig":
        """Copy of this accelerator with a different tier set (the knob
        the tiering experiments turn)."""
        from dataclasses import replace

        return replace(self, tiers=tiers)


def _hbm_tier(capacity_bytes: int, bandwidth: float) -> MemoryTierSpec:
    return MemoryTierSpec(
        name="hbm",
        capacity_bytes=capacity_bytes,
        read_bandwidth=bandwidth,
        write_bandwidth=bandwidth,
        profile=HBM3E,
    )


#: NVIDIA A100 80GB (Splitwise's prefill-era hardware).
A100_80G = AcceleratorConfig(
    name="a100-80g",
    peak_flops=312e12,
    tiers=(_hbm_tier(80 * GiB, 2.0e12),),
    board_power_w=400.0,
)

#: NVIDIA H100 80GB SXM.
H100_80G = AcceleratorConfig(
    name="h100-80g",
    peak_flops=990e12,
    tiers=(_hbm_tier(80 * GiB, 3.35e12),),
    board_power_w=700.0,
)

#: NVIDIA B200: 192 GB HBM3e at 8 TB/s [51].
B200 = AcceleratorConfig(
    name="b200",
    peak_flops=2.25e15,
    tiers=(_hbm_tier(192 * GiB, 8.0e12),),
    board_power_w=1000.0,
)
