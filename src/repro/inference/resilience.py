"""Graceful-degradation serving: deadlines, retries, hedging, shedding.

The cluster's answer to correlated faults (:mod:`repro.faults.domains`):
when an engine or a whole power domain goes down mid-decode, the fleet
must degrade — finish what it can, shed what it must — instead of
stalling.  :class:`ResilientDispatcher` wraps the cluster's JSQ router
with the four standard availability mechanisms:

- **deadline timeouts** — every dispatched request carries a deadline;
  a request that blows it is cancelled and retried (or failed once the
  budget is gone);
- **retries with exponential backoff** — the backoff sequence is pure
  arithmetic (``base * 2**attempt``), never an RNG draw, so retry
  timing is part of the deterministic replay;
- **tail-latency hedging** — after ``hedge_delay_s`` an unfinished
  request is cloned (fresh id) onto the engine with the second-shortest
  queue; the first copy to finish cancels the other (PR 7's
  generation-based stale-wakeup cancellation does the timer side);
- **admission control** — with every live queue at ``max_queue_depth``
  the request is shed at the door, deterministically, rather than
  queued into a latency it can never meet.

Every timer (deadline, hedge, backoff, defer) is an ordinary simulator
callback guarded by a per-request *generation* counter: settling or
re-dispatching a request bumps the generation, so a stale timer wakes
up, sees a newer generation, and does nothing.  No timer is ever pulled
out of the event queue — which is why reports measure duration by the
last settlement, not by the drained clock (see
``Cluster._work_end``).

The dispatcher is deterministic by construction: engine choice is the
``(queue depth, name)`` minimum, shed decisions compare integers, and
every callback runs at a simulated time derived from the policy
constants — so a fault timeline plus a request stream fully determines
shed/retry/hedge counts, serial or fan-out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.inference.batching import RunningContext
from repro.inference.engine import InferenceEngine
from repro.obs import NULL_REGISTRY
from repro.workload.requests import InferenceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.inference.cluster import Cluster
    from repro.sim import Simulator


@dataclass(frozen=True)
class ResiliencePolicy:
    """The graceful-degradation knobs, validated at construction.

    ``enabled=False`` is the no-mitigation baseline arm: the cluster
    routes around dead engines (that much is plain IP routing) but
    nothing is retried, hedged, shed or recovered.

    Attributes
    ----------
    deadline_s:
        Per-attempt deadline from dispatch; ``inf`` disables timeouts.
    max_retries:
        Re-dispatch budget per request after timeouts/failures.
    retry_backoff_s:
        Base backoff; attempt ``n`` waits ``base * 2**(n-1)``.
    hedge_delay_s:
        Clone an unfinished request onto a second engine after this
        long; ``0`` disables hedging.
    max_queue_depth:
        Shed arrivals when every live engine's queue (pending + batch)
        is at least this deep; ``0`` means unbounded (no shedding).
    restart_delay_s:
        Outage length of a crashed engine before it serves again.
    """

    enabled: bool = True
    deadline_s: float = 30.0
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    hedge_delay_s: float = 0.0
    max_queue_depth: int = 0
    restart_delay_s: float = 0.5

    def __post_init__(self) -> None:
        if math.isnan(self.deadline_s) or self.deadline_s <= 0:
            raise ValueError("deadline must be > 0")
        if self.max_retries < 0:
            raise ValueError("retry budget must be >= 0")
        if (
            math.isnan(self.retry_backoff_s)
            or math.isinf(self.retry_backoff_s)
            or self.retry_backoff_s < 0
        ):
            raise ValueError("retry backoff must be a finite number >= 0")
        if (
            math.isnan(self.hedge_delay_s)
            or math.isinf(self.hedge_delay_s)
            or self.hedge_delay_s < 0
        ):
            raise ValueError("hedge delay must be a finite number >= 0")
        if self.max_queue_depth < 0:
            raise ValueError("queue depth bound must be >= 0")
        if (
            math.isnan(self.restart_delay_s)
            or math.isinf(self.restart_delay_s)
            or self.restart_delay_s <= 0
        ):
            raise ValueError("restart delay must be a finite number > 0")


def _fresh_copy(request: InferenceRequest) -> InferenceRequest:
    """A hedge clone: same work, fresh ``request_id`` (KV registration
    and batch membership are keyed on the id, so the clone must not
    collide with the primary on another engine)."""
    return InferenceRequest(
        arrival_time=request.arrival_time,
        prompt_tokens=request.prompt_tokens,
        output_tokens=request.output_tokens,
        sla=request.sla,
        prefix_key=request.prefix_key,
        cached_prompt_tokens=request.cached_prompt_tokens,
    )


class _Tracker:
    """Dispatcher-side state for one original request."""

    __slots__ = (
        "request",
        "attempts",
        "generation",
        "engine",
        "hedge_request",
        "hedge_engine",
        "hedged",
        "outstanding",
        "settled",
        "outcome",
        "crash_time",
    )

    def __init__(self, request: InferenceRequest) -> None:
        self.request = request
        self.attempts = 0
        #: Bumped on every primary-arm state change; stale timers check
        #: it and no-op (the PR 7 cancellation idiom, callback edition).
        self.generation = 0
        self.engine: Optional[InferenceEngine] = None
        self.hedge_request: Optional[InferenceRequest] = None
        self.hedge_engine: Optional[InferenceEngine] = None
        self.hedged = False
        #: Arms currently resident on some engine (0, 1 or 2).
        self.outstanding = 0
        self.settled = False
        self.outcome = ""
        self.crash_time: Optional[float] = None


class ResilientDispatcher:
    """Routes requests through the cluster under a resilience policy.

    One instance per cluster; wired by ``Cluster.__init__`` when a
    policy with ``enabled=True`` is given.  The cluster's engines call
    back through ``engine.request_listener`` on every terminal request
    event, and ``Cluster.handle_engine_crash`` forwards displaced
    requests here.
    """

    def __init__(
        self,
        sim: "Simulator",
        cluster: "Cluster",
        policy: ResiliencePolicy,
        obs=None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.obs = obs if obs is not None else NULL_REGISTRY
        o = self.obs
        self._obs_shed = o.counter("resilience.requests_shed_total")
        self._obs_retries = o.counter("resilience.retries_total")
        self._obs_hedges = o.counter("resilience.hedges_total")
        self._obs_hedge_wins = o.counter("resilience.hedge_wins_total")
        self._obs_timeouts = o.counter("resilience.deadline_timeouts_total")
        self._obs_crashes = o.counter("resilience.engine_crashes_total")
        self._obs_deferred = o.counter("resilience.deferred_total")
        self._trackers: Dict[int, _Tracker] = {}
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.deadline_timeouts = 0
        self.deferred = 0
        self.crashes = 0
        #: Worst time from a crash to the completion of a request it
        #: displaced — the availability experiments' recovery metric.
        self.time_to_recovery_s = 0.0
        #: Simulated time of the last settlement (duration accounting).
        self.last_settle_s = 0.0
        for engine in cluster.engines:
            engine.request_listener = self._on_request_done

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Accept one original request (at its arrival instant)."""
        self.dispatched += 1
        tracker = _Tracker(request)
        self._trackers[request.request_id] = tracker
        self._dispatch(tracker)

    def on_engine_crash(
        self,
        engine: InferenceEngine,
        displaced: List[InferenceRequest],
    ) -> None:
        """Re-route requests an engine crash displaced.

        Displaced *primaries* re-dispatch immediately (no retry budget
        consumed — the request did nothing wrong); displaced hedge
        clones are simply dropped, their primary is still in flight.
        """
        self.crashes += 1
        self._obs_crashes.add()
        now = self.sim.now
        for request in displaced:
            tracker = self._trackers.get(request.request_id)
            if tracker is None or tracker.settled:
                continue
            if (
                tracker.hedge_request is not None
                and request.request_id == tracker.hedge_request.request_id
            ):
                tracker.hedge_request = None
                tracker.hedge_engine = None
                tracker.outstanding -= 1
                continue
            tracker.crash_time = now
            tracker.outstanding -= 1
            self._dispatch(tracker)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _queue_depth(self, engine: InferenceEngine) -> int:
        return engine.scheduler.pending_count + engine.scheduler.batch_size

    def _live_engines(self) -> List[InferenceEngine]:
        return [e for e in self.cluster.engines if e.up]

    def _dispatch(self, tracker: _Tracker) -> None:
        """Place the primary arm on an engine (or defer/shed)."""
        if tracker.settled:
            return
        tracker.generation += 1
        generation = tracker.generation
        live = self._live_engines()
        if not live:
            self._defer(tracker)
            return
        depth_of = self._queue_depth
        policy = self.policy
        if policy.max_queue_depth and all(
            depth_of(e) >= policy.max_queue_depth for e in live
        ):
            self._settle(tracker, "shed")
            return
        engine = min(live, key=lambda e: (depth_of(e), e.name))
        tracker.engine = engine
        tracker.outstanding += 1
        engine.submit(tracker.request)
        if not math.isinf(policy.deadline_s):
            self.sim.schedule(
                policy.deadline_s,
                lambda _event: self._on_deadline(tracker, generation),
                name=f"deadline-{tracker.request.request_id}",
            )
        if (
            policy.hedge_delay_s > 0
            and tracker.attempts == 0
            and not tracker.hedged
        ):
            self.sim.schedule(
                policy.hedge_delay_s,
                lambda _event: self._maybe_hedge(tracker, generation),
                name=f"hedge-{tracker.request.request_id}",
            )

    def _defer(self, tracker: _Tracker) -> None:
        """Every engine is down: hold the request until the first one
        restarts (its outage end is known — restarts are scheduled)."""
        self.deferred += 1
        self._obs_deferred.add()
        resume = min(e.down_until for e in self.cluster.engines)
        # The epsilon lands the re-dispatch strictly after the restart
        # wakeup at the same timestamp.
        delay = max(resume - self.sim.now, 0.0) + 1e-9
        generation = tracker.generation
        self.sim.schedule(
            delay,
            lambda _event: self._redispatch_if(tracker, generation),
            name=f"defer-{tracker.request.request_id}",
        )

    def _redispatch_if(self, tracker: _Tracker, generation: int) -> None:
        if tracker.settled or generation != tracker.generation:
            return
        self._dispatch(tracker)

    def _maybe_hedge(self, tracker: _Tracker, generation: int) -> None:
        if tracker.settled or tracker.hedged:
            return
        if generation != tracker.generation:
            return
        candidates = [
            e for e in self._live_engines() if e is not tracker.engine
        ]
        if not candidates:
            return
        depth_of = self._queue_depth
        engine = min(candidates, key=lambda e: (depth_of(e), e.name))
        clone = _fresh_copy(tracker.request)
        tracker.hedged = True
        tracker.hedge_request = clone
        tracker.hedge_engine = engine
        tracker.outstanding += 1
        self._trackers[clone.request_id] = tracker
        self.hedges += 1
        self._obs_hedges.add()
        engine.submit(clone)

    def _on_deadline(self, tracker: _Tracker, generation: int) -> None:
        if tracker.settled or generation != tracker.generation:
            return
        self.deadline_timeouts += 1
        self._obs_timeouts.add()
        self._cancel_arms(tracker)
        self._retry_or_fail(tracker)

    def _cancel_arms(self, tracker: _Tracker) -> None:
        if tracker.engine is not None:
            tracker.engine.cancel(tracker.request.request_id)
        if tracker.hedge_request is not None:
            if tracker.hedge_engine is not None:
                tracker.hedge_engine.cancel(tracker.hedge_request.request_id)
            tracker.hedge_request = None
            tracker.hedge_engine = None
        tracker.outstanding = 0

    def _retry_or_fail(self, tracker: _Tracker) -> None:
        policy = self.policy
        if tracker.attempts < policy.max_retries:
            tracker.attempts += 1
            self.retries += 1
            self._obs_retries.add()
            backoff = policy.retry_backoff_s * (2 ** (tracker.attempts - 1))
            tracker.generation += 1
            generation = tracker.generation
            self.sim.schedule(
                backoff,
                lambda _event: self._redispatch_if(tracker, generation),
                name=f"retry-{tracker.request.request_id}",
            )
            return
        self._settle(tracker, "failed")

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def _on_request_done(self, context: RunningContext, outcome: str) -> None:
        tracker = self._trackers.get(context.request.request_id)
        if tracker is None or tracker.settled:
            return
        is_hedge = (
            tracker.hedge_request is not None
            and context.request.request_id
            == tracker.hedge_request.request_id
        )
        if outcome == "completed":
            if is_hedge:
                self.hedge_wins += 1
                self._obs_hedge_wins.add()
                if tracker.engine is not None:
                    tracker.engine.cancel(tracker.request.request_id)
            elif tracker.hedge_request is not None:
                if tracker.hedge_engine is not None:
                    tracker.hedge_engine.cancel(
                        tracker.hedge_request.request_id
                    )
            if tracker.crash_time is not None:
                recovery = self.sim.now - tracker.crash_time
                if recovery > self.time_to_recovery_s:
                    self.time_to_recovery_s = recovery
            self._settle(tracker, "completed")
            return
        # One arm failed terminally on its engine (KV-recovery budget
        # exhausted, or an unrecoverable crash teardown).
        tracker.outstanding -= 1
        if is_hedge:
            tracker.hedge_request = None
            tracker.hedge_engine = None
        if tracker.outstanding > 0:
            # The sibling arm is still in flight; let it race.
            return
        self._retry_or_fail(tracker)

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------
    def _settle(self, tracker: _Tracker, outcome: str) -> None:
        tracker.settled = True
        tracker.outcome = outcome
        tracker.generation += 1
        tracker.crash_time = None
        if outcome == "completed":
            self.completed += 1
        elif outcome == "failed":
            self.failed += 1
        else:
            self.shed += 1
            self._obs_shed.add()
        if self.sim.now > self.last_settle_s:
            self.last_settle_s = self.sim.now

    @property
    def settled(self) -> int:
        return self.completed + self.failed + self.shed
