"""Roofline timing: is a step compute- or memory-bound?

"Even using HBM, a substantial part of every inference query is memory
bound [37]" (Section 2.1).  The roofline model makes that measurable:
a step's duration is the max of its compute time and its memory-transfer
time; whichever dominates classifies the step.

The memory side is per-tier: a step that reads weights from tier A and
KV from tier B overlaps the transfers (separate channels), so memory
time is the max over tiers of (bytes moved on that tier / tier
bandwidth).  This is exactly the structure the tiering experiments (E10)
need: moving weights to a high-read-bandwidth MRM tier relieves the HBM
bottleneck rather than sharing it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.inference.accelerator import AcceleratorConfig
from repro.workload.model import ModelConfig
from repro.workload.phases import PhaseTraffic, decode_step_traffic, prefill_traffic


class Boundedness(enum.Enum):
    COMPUTE = "compute-bound"
    MEMORY = "memory-bound"


@dataclass(frozen=True)
class StepTiming:
    """Timing breakdown of one step."""

    compute_time_s: float
    memory_time_s: float
    bottleneck_tier: str

    @property
    def duration_s(self) -> float:
        return max(self.compute_time_s, self.memory_time_s)

    @property
    def boundedness(self) -> Boundedness:
        if self.memory_time_s >= self.compute_time_s:
            return Boundedness.MEMORY
        return Boundedness.COMPUTE

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of the step that is pure memory wait (0 when
        compute-bound)."""
        if self.duration_s == 0:
            return 0.0
        return max(0.0, self.memory_time_s - self.compute_time_s) / self.duration_s


class RooflineModel:
    """Step timing for an accelerator given per-tier byte movement.

    Parameters
    ----------
    accelerator:
        The accelerator config (peaks and efficiencies).
    """

    def __init__(self, accelerator: AcceleratorConfig) -> None:
        self.accelerator = accelerator

    # ------------------------------------------------------------------
    # Generic timing
    # ------------------------------------------------------------------
    def time_step(
        self,
        flops: float,
        tier_read_bytes: Mapping[str, float],
        tier_write_bytes: Mapping[str, float] = (),
    ) -> StepTiming:
        """Time a step that burns ``flops`` and moves the given bytes.

        ``tier_read_bytes``/``tier_write_bytes`` map tier name -> bytes.
        Transfers on different tiers overlap; reads and writes on the
        same tier share its (duplex) channels, modeled as additive time.
        """
        if flops < 0:
            raise ValueError("flops must be >= 0")
        acc = self.accelerator
        compute_time = flops / acc.effective_flops
        memory_time = 0.0
        bottleneck = acc.tiers[0].name
        tier_write_bytes = dict(tier_write_bytes)
        for tier in acc.tiers:
            reads = float(tier_read_bytes.get(tier.name, 0.0))
            writes = float(tier_write_bytes.get(tier.name, 0.0))
            if reads < 0 or writes < 0:
                raise ValueError("byte counts must be >= 0")
            t = (
                reads / (tier.read_bandwidth * acc.bandwidth_efficiency)
                + writes / (tier.write_bandwidth * acc.bandwidth_efficiency)
            )
            if t > memory_time:
                memory_time = t
                bottleneck = tier.name
        unknown = (
            set(tier_read_bytes) | set(tier_write_bytes)
        ) - set(acc.tier_names)
        if unknown:
            raise KeyError(f"bytes routed to unknown tiers: {sorted(unknown)}")
        return StepTiming(compute_time, memory_time, bottleneck)

    # ------------------------------------------------------------------
    # Phase-level helpers (single-tier convenience: everything on HBM)
    # ------------------------------------------------------------------
    def _route_all(self, traffic: PhaseTraffic, tier: str) -> StepTiming:
        return self.time_step(
            traffic.flops,
            {tier: traffic.bytes_read},
            {tier: traffic.bytes_written},
        )

    def time_prefill(
        self, model: ModelConfig, prompt_tokens: int, tier: str = "hbm"
    ) -> StepTiming:
        """Prefill timing with all data on one tier."""
        return self._route_all(prefill_traffic(model, prompt_tokens), tier)

    def time_decode_step(
        self,
        model: ModelConfig,
        context_tokens: int,
        batch_size: int = 1,
        tier: str = "hbm",
    ) -> StepTiming:
        """Decode-step timing with all data on one tier."""
        return self._route_all(
            decode_step_traffic(model, context_tokens, batch_size), tier
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def arithmetic_intensity_breakeven(self) -> float:
        """FLOPs per byte above which the accelerator is compute-bound
        (using the first tier's read bandwidth)."""
        acc = self.accelerator
        return acc.effective_flops / acc.effective_read_bandwidth(
            acc.tiers[0].name
        )

    def memory_bound_fraction_of_request(
        self,
        model: ModelConfig,
        prompt_tokens: int,
        output_tokens: int,
        batch_size: int = 1,
        tier: str = "hbm",
    ) -> float:
        """Fraction of a request's wall time spent memory-bound.

        Prefill is typically compute-bound, decode memory-bound; the mix
        depends on the prompt:output ratio — this is the number behind
        "a substantial part of every inference query is memory bound".
        """
        prefill = self.time_prefill(model, prompt_tokens, tier)
        total = prefill.duration_s
        memory_bound = (
            prefill.duration_s
            if prefill.boundedness is Boundedness.MEMORY
            else 0.0
        )
        for step in range(output_tokens):
            timing = self.time_decode_step(
                model, prompt_tokens + step, batch_size, tier
            )
            # Batched steps amortize weight reads; charge this context
            # its share of the step.
            share = timing.duration_s / batch_size
            total += share
            if timing.boundedness is Boundedness.MEMORY:
                memory_bound += share
        if total == 0:
            return 0.0
        return memory_bound / total
