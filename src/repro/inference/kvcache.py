"""Per-context KV-cache management over the paged allocator.

:class:`KVCacheManager` owns one memory tier's KV pool and the page
tables of every live context on it.  It provides:

- admission sizing (can a prompt of N tokens fit right now?);
- append accounting as contexts decode;
- prefix sharing [54]: identical prompt prefixes map the same physical
  pages (reference-counted in the allocator);
- occupancy/fragmentation statistics, the memory-pressure signals the
  batch scheduler and tiering policies act on.

The manager tracks bytes, not tensors — consistent with the library-wide
"sized, not computed" rule (DESIGN.md non-goals).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.inference.paging import OutOfPages, PagedAllocator, PageTable
from repro.obs import NULL_REGISTRY
from repro.workload.model import ModelConfig


class KVCacheManager:
    """KV-cache pool of one memory tier.

    Parameters
    ----------
    model:
        Sizing (bytes per token vector).
    capacity_bytes:
        Tier bytes reserved for KV cache.
    tokens_per_page:
        Vectors per page.  Default 16 gives multi-MiB pages for 70B-class
        models, matching the paper's "each page is typically over 10
        vectors".
    enable_prefix_sharing:
        If True, contexts registered with a matching prompt prefix key
        share physical pages.
    """

    def __init__(
        self,
        model: ModelConfig,
        capacity_bytes: int,
        tokens_per_page: int = 16,
        enable_prefix_sharing: bool = False,
        obs=None,
        name: str = "kv0",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if tokens_per_page < 1:
            raise ValueError("tokens_per_page must be >= 1")
        self.model = model
        self.tokens_per_page = tokens_per_page
        self.page_bytes = model.kv_bytes_per_token * tokens_per_page
        total_pages = capacity_bytes // self.page_bytes
        if total_pages < 1:
            raise ValueError(
                f"capacity {capacity_bytes} below one page ({self.page_bytes})"
            )
        self.allocator = PagedAllocator(total_pages, self.page_bytes)
        self.enable_prefix_sharing = enable_prefix_sharing
        self._tables: Dict[int, PageTable] = {}
        #: prefix key -> context id whose pages serve as the share source
        self._prefix_index: Dict[str, int] = {}
        #: reverse index: context id -> prefix keys it anchors.  Kept in
        #: lockstep with ``_prefix_index`` so eviction is O(keys owned),
        #: not O(all prefix keys ever registered).
        self._prefix_keys_by_context: Dict[int, List[str]] = {}
        self.prefix_hits = 0
        self.prefix_misses = 0
        # Byte accounting through the observability registry.  The
        # invariant the property tests assert: appended − released ==
        # resident (shared pages are counted once, under *_shared).
        self.obs = obs if obs is not None else NULL_REGISTRY
        o = self.obs
        self._obs_appended = o.counter("kv.bytes_appended_total", pool=name)
        self._obs_released = o.counter("kv.bytes_released_total", pool=name)
        self._obs_shared = o.counter("kv.bytes_shared_total", pool=name)
        self._obs_resident = o.gauge("kv.bytes_resident", pool=name)
        self._obs_registered = o.counter("kv.contexts_registered_total", pool=name)
        self._obs_evicted = o.counter("kv.contexts_released_total", pool=name)
        self._obs_rejections = o.counter("kv.out_of_pages_total", pool=name)

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.allocator.total_pages * self.page_bytes

    def free_bytes(self) -> int:
        return self.allocator.free_pages * self.page_bytes

    def used_bytes(self) -> int:
        return self.allocator.used_pages * self.page_bytes

    def utilization(self) -> float:
        return self.allocator.utilization()

    def pages_for_tokens(self, tokens: int) -> int:
        if tokens < 0:
            raise ValueError("token count must be >= 0")
        return -(-tokens // self.tokens_per_page)

    def can_admit(self, prompt_tokens: int, headroom_tokens: int = 0) -> bool:
        """Would a new context with this prompt fit right now?"""
        need = self.pages_for_tokens(prompt_tokens + headroom_tokens)
        return need <= self.allocator.free_pages

    # ------------------------------------------------------------------
    # Context lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        context_id: int,
        prompt_tokens: int,
        prefix_key: Optional[str] = None,
    ) -> Tuple[int, int]:
        """Create a context and allocate its prompt KV.

        Returns ``(pages_allocated, tokens_served_from_shared_prefix)``.
        With prefix sharing on and a known ``prefix_key``, the shared
        whole pages are mapped instead of allocated.
        """
        if context_id in self._tables:
            raise ValueError(f"context {context_id} already registered")
        if prompt_tokens < 1:
            raise ValueError("prompt must have at least one token")
        table = PageTable(self.allocator, self.tokens_per_page)
        shared_tokens = 0
        if self.enable_prefix_sharing and prefix_key is not None:
            source_id = self._prefix_index.get(prefix_key)
            source = self._tables.get(source_id) if source_id is not None else None
            if source is not None and source.tokens > 0:
                sharable = min(prompt_tokens, source.tokens)
                shared_pages = table.map_shared_prefix(source, sharable)
                shared_tokens = shared_pages * self.tokens_per_page
                self.prefix_hits += 1
            else:
                self._prefix_index[prefix_key] = context_id
                self._prefix_keys_by_context.setdefault(
                    context_id, []
                ).append(prefix_key)
                self.prefix_misses += 1
        remaining = prompt_tokens - shared_tokens
        try:
            allocated = table.append_tokens(remaining) if remaining > 0 else 0
        except OutOfPages:
            # Rollback is physically neutral (shared pages only drop a
            # refcount), so recording nothing keeps byte accounting exact.
            table.free()
            self._obs_rejections.add()
            raise
        self._tables[context_id] = table
        self._obs_registered.add()
        self._obs_appended.add(allocated * self.page_bytes)
        self._obs_shared.add(
            (shared_tokens // self.tokens_per_page) * self.page_bytes
        )
        self._obs_resident.set(self.used_bytes())
        return allocated, shared_tokens

    def append(self, context_id: int, tokens: int = 1) -> int:
        """Record decode appends; returns pages newly allocated."""
        allocated = self._table(context_id).append_tokens(tokens)
        if allocated:
            self._obs_appended.add(allocated * self.page_bytes)
            self._obs_resident.set(self.used_bytes())
        return allocated

    def append_batch(self, context_ids: Iterable[int], tokens: int = 1) -> int:
        """Record one decode step for a whole batch in a single call.

        Equivalent to ``append(cid, tokens)`` per context, in order —
        page allocation order (and thus every downstream result) is
        identical to the per-context loop.  The batch path exists for
        the decode hot loop: it skips the per-call table lookup dispatch
        and takes a no-allocation fast path for the common step where a
        context's current page still has room.  Returns total pages
        newly allocated.
        """
        if tokens < 0:
            raise ValueError("token count must be >= 0")
        tables = self._tables
        allocated = 0
        for context_id in context_ids:
            table = tables.get(context_id)
            if table is None:
                raise KeyError(f"context {context_id} is not registered")
            total = table.tokens + tokens
            if total <= len(table.pages) * table.tokens_per_page:
                # Fast path: fits in already-allocated pages.
                table.tokens = total
            else:
                allocated += table.append_tokens(tokens)
        if allocated:
            self._obs_appended.add(allocated * self.page_bytes)
            self._obs_resident.set(self.used_bytes())
        return allocated

    def release(self, context_id: int) -> int:
        """Free a finished context; returns pages released.

        Cost is O(pages + prefix keys *this* context anchors): the
        reverse index replaces what used to be a linear scan of every
        prefix key in the table (regression-tested in
        ``tests/inference/test_paging_kvcache.py``).
        """
        table = self._tables.pop(context_id, None)
        if table is None:
            raise KeyError(f"context {context_id} is not registered")
        for key in self._prefix_keys_by_context.pop(context_id, ()):
            if self._prefix_index.get(key) == context_id:
                del self._prefix_index[key]
        # Physical frees only: a shared page someone else still maps is
        # unmapped here but stays resident, so the accounting measures
        # the allocator's used-page delta, not the unmap count.
        used_before = self.allocator.used_pages
        released = table.free()
        freed = used_before - self.allocator.used_pages
        self._obs_evicted.add()
        self._obs_released.add(freed * self.page_bytes)
        self._obs_resident.set(self.used_bytes())
        return released

    def release_batch(self, context_ids: Iterable[int]) -> int:
        """Free several finished contexts in one call; returns pages released.

        Equivalent to ``release(cid)`` per context, in order — the
        allocator sees the identical free sequence — but the
        observability updates (released-bytes counter, resident gauge)
        are paid once per batch instead of once per context.  Byte
        counts are exact integers, so the batched totals are
        bit-identical to the per-context path.
        """
        total_released = 0
        total_freed = 0
        count = 0
        for context_id in context_ids:
            table = self._tables.pop(context_id, None)
            if table is None:
                raise KeyError(f"context {context_id} is not registered")
            for key in self._prefix_keys_by_context.pop(context_id, ()):
                if self._prefix_index.get(key) == context_id:
                    del self._prefix_index[key]
            used_before = self.allocator.used_pages
            total_released += table.free()
            total_freed += used_before - self.allocator.used_pages
            count += 1
        if count:
            self._obs_evicted.add(count)
            self._obs_released.add(total_freed * self.page_bytes)
            self._obs_resident.set(self.used_bytes())
        return total_released

    def _table(self, context_id: int) -> PageTable:
        table = self._tables.get(context_id)
        if table is None:
            raise KeyError(f"context {context_id} is not registered")
        return table

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def context_tokens(self, context_id: int) -> int:
        return self._table(context_id).tokens

    def context_bytes(self, context_id: int) -> int:
        return self._table(context_id).tokens * self.model.kv_bytes_per_token

    def live_contexts(self) -> List[int]:
        return sorted(self._tables)

    def total_fragmentation_bytes(self) -> int:
        """Internal fragmentation across all live contexts — the waste
        PagedAttention bounds to under one page per context [22]."""
        return sum(t.fragmentation_bytes() for t in self._tables.values())

    def read_bytes_for_step(self, context_id: int) -> int:
        """Bytes a decode step reads for this context (the whole cache,
        sequentially)."""
        return self.context_bytes(context_id)
