"""Continuous (iteration-level) batching.

Batching is the main lever for weight-read reuse ("batching allows
weight reuse across requests [3]"), but it is bounded by latency
requirements — interactive requests cannot wait for a huge batch to
form.  :class:`BatchScheduler` implements the continuous-batching
discipline production servers use:

- requests join the running batch as soon as (a) a batch slot and (b)
  enough free KV pages exist (admission control);
- each iteration decodes every running context once;
- finished contexts leave immediately, freeing their slot and pages;
- the pending queue is prioritized by SLA class, FIFO within class.

The scheduler is pure decision logic (no clock, no device): the engine
drives it and executes its decisions, which keeps it unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


from repro.inference.kvcache import KVCacheManager
from repro.workload.requests import InferenceRequest, SLAClass

_SLA_PRIORITY = {
    SLAClass.INTERACTIVE: 0,
    SLAClass.THROUGHPUT: 1,
    SLAClass.BEST_EFFORT: 2,
}


@dataclass
class RunningContext:
    """A request currently being served."""

    request: InferenceRequest
    prefill_done_at: Optional[float] = None
    first_token_at: Optional[float] = None
    generated: int = 0
    finished_at: Optional[float] = None

    @property
    def context_id(self) -> int:
        return self.request.request_id

    @property
    def context_tokens(self) -> int:
        return self.request.prompt_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


class BatchScheduler:
    """Admission + batch membership decisions.

    Parameters
    ----------
    kv:
        The KV-cache manager whose free pages gate admission.
    max_batch_size:
        Maximum contexts decoded per iteration.
    admission_headroom_tokens:
        Extra tokens of KV space a request must fit *beyond* its prompt
        before admission (guards against immediate out-of-pages during
        decode).
    """

    def __init__(
        self,
        kv: KVCacheManager,
        max_batch_size: int = 16,
        admission_headroom_tokens: int = 128,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max batch size must be >= 1")
        if admission_headroom_tokens < 0:
            raise ValueError("headroom must be >= 0")
        self.kv = kv
        self.max_batch_size = max_batch_size
        self.admission_headroom_tokens = admission_headroom_tokens
        self._pending: List[InferenceRequest] = []
        self.running: Dict[int, RunningContext] = {}
        self.admitted = 0
        self.rejected_for_memory = 0

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def enqueue(self, request: InferenceRequest) -> None:
        self._pending.append(request)
        self._pending.sort(
            key=lambda r: (_SLA_PRIORITY[r.sla], r.arrival_time, r.request_id)
        )

    def remove_pending(self, request_id: int) -> Optional[InferenceRequest]:
        """Withdraw a queued request (hedging/retry cancellation).

        Returns the request, or None when it is not queued here (it may
        be running, finished, or on another engine).
        """
        for index, request in enumerate(self._pending):
            if request.request_id == request_id:
                return self._pending.pop(index)
        return None

    def pop_pending(self) -> List[InferenceRequest]:
        """Take the whole queue (an engine crash loses it); priority
        order, which nests arrival order within each SLA class."""
        pending = self._pending
        self._pending = []
        return pending

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def batch_size(self) -> int:
        return len(self.running)

    def has_work(self) -> bool:
        return bool(self._pending or self.running)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def try_admit(self) -> Optional[InferenceRequest]:
        """Pop the highest-priority pending request that fits.

        Returns None when the batch is full or nothing fits.  A request
        that does not fit *now* stays queued (head-of-line within its
        priority — we do not starve big requests by skipping them
        forever; only strictly-lower-priority requests may pass).
        """
        if len(self.running) >= self.max_batch_size:
            return None
        blocked_priority: Optional[int] = None
        for index, request in enumerate(self._pending):
            priority = _SLA_PRIORITY[request.sla]
            if blocked_priority is not None and priority == blocked_priority:
                continue
            if self.kv.can_admit(
                request.prompt_tokens, self.admission_headroom_tokens
            ):
                self._pending.pop(index)
                self.admitted += 1
                return request
            if blocked_priority is None:
                blocked_priority = priority
                self.rejected_for_memory += 1
        return None

    def start(self, request: InferenceRequest) -> RunningContext:
        """Admit a request into the running set (after its prefill is
        scheduled by the engine)."""
        context = RunningContext(request=request)
        if context.context_id in self.running:
            raise ValueError(f"request {context.context_id} already running")
        self.running[context.context_id] = context
        return context

    def finish(self, context_id: int) -> RunningContext:
        context = self.running.pop(context_id, None)
        if context is None:
            raise KeyError(f"context {context_id} is not running")
        return context

    def decode_batch(self) -> List[RunningContext]:
        """Contexts to decode this iteration (prefilled, unfinished)."""
        return [
            c
            for c in self.running.values()
            if c.prefill_done_at is not None and not c.done
        ]
