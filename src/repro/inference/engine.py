"""One accelerator's serving loop, as a discrete-event process.

:class:`InferenceEngine` glues the pieces together: requests arrive, the
batch scheduler admits them against free KV pages, prefill runs (one
request at a time, compute-bound), then continuous decode iterations run
the whole batch; each iteration's duration comes from the roofline with
bytes routed to tiers per the *placement map* — the knob the tiering
experiments turn:

    placement = {"weights": "hbm", "kv": "hbm", "activations": "hbm"}
    placement = {"weights": "mrm", "kv": "mrm", "activations": "hbm"}

Recorded per engine: TTFT and time-between-tokens histograms, token
throughput, per-tier/per-structure byte traffic, access energy, and the
memory-vs-compute-bound step tally (experiment E4's numerator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Mapping, Optional

from repro.inference.accelerator import AcceleratorConfig
from repro.inference.batching import BatchScheduler, RunningContext
from repro.inference.kvcache import KVCacheManager
from repro.inference.roofline import Boundedness, RooflineModel
from repro.obs import NULL_REGISTRY
from repro.sim import (
    Histogram,
    Interrupted,
    MetricRegistry,
    Simulator,
    Timeout,
)
from repro.workload.model import ModelConfig
from repro.workload.phases import (
    decode_step_traffic_batch,
    prefill_traffic,
)
from repro.workload.requests import InferenceRequest

DEFAULT_PLACEMENT = {"weights": "hbm", "kv": "hbm", "activations": "hbm"}


class EngineCrashed(Interrupted):
    """Thrown into a serving loop when its engine crashes.

    Subclassing :class:`~repro.sim.Interrupted` means a loop that does
    not catch it dies quietly instead of surfacing as a
    ``SimProcessError``; :meth:`InferenceEngine._serve_loop` catches it,
    sleeps through the outage and restarts.  Carries the restart delay
    so the crash site decides the outage length, not the loop.
    """

    def __init__(self, restart_delay_s: float) -> None:
        super().__init__(f"engine crashed; restart in {restart_delay_s}s")
        self.restart_delay_s = restart_delay_s


@dataclass(frozen=True)
class KVRecoveryConfig:
    """How an engine responds to losing a running request's KV cache.

    KV pages on MRM are soft state: "data stored in MRM either is
    durable elsewhere or is soft state that can be recomputed" (Section
    4).  Losing them mid-request is therefore recoverable — the prompt
    is still known, so the engine can *recompute from the prefix*:
    re-enqueue the request, re-run prefill, regenerate.  The budget
    bounds how often one request may be recovered before it is failed
    (a retry/timeout guard against a request that keeps landing on bad
    pages).

    ``enabled=False`` is the no-mitigation baseline: any KV loss fails
    the request outright.
    """

    enabled: bool = True
    max_recoveries_per_request: int = 2

    def __post_init__(self) -> None:
        if self.max_recoveries_per_request < 0:
            raise ValueError("recovery budget must be >= 0")


def _quantile_or_nan(histogram: Histogram, quantile: float) -> float:
    """Report-friendly quantile: NaN instead of None on an empty histogram."""
    value = histogram.quantile(quantile)
    return float("nan") if value is None else value


def _accumulate(*pairs) -> Dict[str, float]:
    """Sum (tier, bytes) pairs into a dict — two structures on the same
    tier must add their traffic, not overwrite each other."""
    out: Dict[str, float] = {}
    for tier, value in pairs:
        out[tier] = out.get(tier, 0.0) + value
    return out


@dataclass
class EngineMetrics:
    """Summary view of one engine's run (extracted from the registry)."""

    requests_completed: int
    tokens_generated: int
    ttft_p50_s: float
    ttft_p99_s: float
    tbt_p50_s: float
    tbt_p99_s: float
    memory_bound_steps: int
    compute_bound_steps: int
    tier_bytes_read: Dict[str, float]
    tier_bytes_written: Dict[str, float]
    access_energy_j: float
    busy_time_s: float
    requests_failed: int = 0
    kv_losses: int = 0
    kv_recoveries: int = 0
    kv_recompute_tokens: int = 0
    requests_cancelled: int = 0
    wasted_tokens: int = 0
    engine_crashes: int = 0
    engine_restarts: int = 0

    @property
    def memory_bound_fraction(self) -> float:
        total = self.memory_bound_steps + self.compute_bound_steps
        if total == 0:
            return 0.0
        return self.memory_bound_steps / total


class InferenceEngine:
    """Serving loop for one accelerator.

    Parameters
    ----------
    sim:
        The shared simulator.
    accelerator / model:
        Hardware and model configs.
    placement:
        Structure -> tier-name map ("weights", "kv", "activations").
    kv_capacity_bytes:
        KV pool size.  Defaults to the KV tier's capacity minus the
        weights (when they share a tier) and an activations reserve.
    max_batch_size / tokens_per_page:
        Batching and paging knobs.
    """

    def __init__(
        self,
        sim: Simulator,
        accelerator: AcceleratorConfig,
        model: ModelConfig,
        placement: Optional[Mapping[str, str]] = None,
        kv_capacity_bytes: Optional[int] = None,
        max_batch_size: int = 16,
        tokens_per_page: int = 16,
        enable_prefix_sharing: bool = False,
        kv_recovery: Optional[KVRecoveryConfig] = None,
        name: str = "",
        obs=None,
    ) -> None:
        self.sim = sim
        self.accelerator = accelerator
        self.model = model
        self.placement = dict(DEFAULT_PLACEMENT, **(placement or {}))
        for structure, tier in self.placement.items():
            accelerator.tier(tier)  # raises KeyError on bad placement
        self.name = name or f"engine-{accelerator.name}"
        self.roofline = RooflineModel(accelerator)
        kv_tier = accelerator.tier(self.placement["kv"])
        if kv_capacity_bytes is None:
            reserved = 0
            if self.placement["weights"] == self.placement["kv"]:
                reserved += model.weights_bytes
            if self.placement["activations"] == self.placement["kv"]:
                reserved += model.activation_bytes(max_batch_size)
            kv_capacity_bytes = kv_tier.capacity_bytes - reserved
        if kv_capacity_bytes <= 0:
            raise ValueError(
                f"{self.name}: no KV capacity left on tier {kv_tier.name!r} "
                f"after weights/activations reservation"
            )
        # Engine-local MetricRegistry stays the summaries' source of
        # truth; the shared obs registry mirrors the serving counters
        # under an engine label for snapshots and exports.
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.kv = KVCacheManager(
            model,
            kv_capacity_bytes,
            tokens_per_page=tokens_per_page,
            enable_prefix_sharing=enable_prefix_sharing,
            obs=self.obs,
            name=self.name,
        )
        self.scheduler = BatchScheduler(self.kv, max_batch_size=max_batch_size)
        self.metrics = MetricRegistry()
        o = self.obs
        engine = self.name
        self._obs_tokens = o.counter("engine.tokens_generated_total", engine=engine)
        self._obs_completed = o.counter("engine.requests_completed_total", engine=engine)
        self._obs_failed = o.counter("engine.requests_failed_total", engine=engine)
        self._obs_kv_losses = o.counter("engine.kv_losses_total", engine=engine)
        self._obs_kv_recoveries = o.counter("engine.kv_recoveries_total", engine=engine)
        self._obs_recompute = o.counter("engine.kv_recompute_tokens_total", engine=engine)
        self._obs_prefix_shared = o.counter("engine.prefix_tokens_shared_total", engine=engine)
        self._obs_mem_steps = o.counter("engine.memory_bound_steps_total", engine=engine)
        self._obs_compute_steps = o.counter("engine.compute_bound_steps_total", engine=engine)
        self._obs_ttft = o.histogram("engine.ttft_s", engine=engine)
        self._obs_tbt = o.histogram("engine.tbt_s", engine=engine)
        self._obs_crashes = o.counter("engine.crashes_total", engine=engine)
        self.completed: List[RunningContext] = []
        self.kv_recovery = kv_recovery or KVRecoveryConfig()
        #: requests dropped after exhausting their recovery budget (or
        #: any KV loss when recovery is disabled).
        self.failed: List[RunningContext] = []
        self._kv_recoveries: Dict[int, int] = {}
        self._wakeup = sim.event(name=f"{self.name}-wakeup")
        self._process = sim.spawn(self._serve_loop(), name=self.name)
        self._busy_time = 0.0
        self._draining = False
        #: False while crashed; the JSQ router skips down engines.
        self.up = True
        #: Simulated time the current outage ends (meaningful when not
        #: ``up``); dispatchers use it to defer work instead of shedding.
        self.down_until = 0.0
        #: Called as ``listener(context, outcome)`` when a request leaves
        #: the engine terminally (outcome ``"completed"``/``"failed"``) —
        #: the hook a resilience dispatcher hangs its trackers on.
        self.request_listener: Optional[
            Callable[[RunningContext, str], None]
        ] = None

    # ------------------------------------------------------------------
    # External interface
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Hand a request to this engine (at the current simulated time)."""
        self.scheduler.enqueue(request)
        self._wake()

    def drain(self) -> None:
        """No more submissions: the loop exits once work completes."""
        self._draining = True
        self._wake()

    def _wake(self) -> None:
        if not self._wakeup.fired and not self._wakeup.scheduled:
            self.sim.trigger(self._wakeup)

    # ------------------------------------------------------------------
    # Fault handling (driven by repro.faults)
    # ------------------------------------------------------------------
    def inject_kv_loss(self, magnitude: float) -> str:
        """One running request's KV pages are lost.

        The victim is chosen deterministically from ``magnitude`` (a
        uniform draw frozen at schedule time): running context ids are
        sorted and ``magnitude`` indexes into them — no fresh RNG, so
        the same fault timeline always strikes the same requests.
        When no request is running the fault lands on empty cells and
        is harmless.

        With recovery enabled and budget left, the request is recomputed
        from its prefix: KV released, context torn down, the original
        request re-enqueued (its arrival time — and therefore its
        latency accounting — unchanged).  Otherwise the request fails.

        Returns what happened: ``"recovered"``, ``"failed"`` or
        ``"no-target"``.
        """
        if not 0.0 <= magnitude < 1.0:
            raise ValueError("magnitude must be in [0, 1)")
        victims = sorted(self.scheduler.running)
        if not victims:
            return "no-target"
        context_id = victims[int(magnitude * len(victims))]
        context = self.scheduler.running[context_id]
        # Tear down: pages are untrustworthy, the context cannot decode.
        self.kv.release(context_id)
        self.scheduler.finish(context_id)
        self.metrics.counter("kv_losses").add(1)
        self._obs_kv_losses.add()
        used = self._kv_recoveries.get(context_id, 0)
        cfg = self.kv_recovery
        if cfg.enabled and used < cfg.max_recoveries_per_request:
            self._kv_recoveries[context_id] = used + 1
            # Recompute from prefix: everything computed so far for this
            # request (prompt prefill + generated tokens) is redone.
            self.metrics.counter("kv_recoveries").add(1)
            self.metrics.counter("kv_recompute_tokens").add(
                context.context_tokens
            )
            self._obs_kv_recoveries.add()
            self._obs_recompute.add(context.context_tokens)
            self.scheduler.enqueue(context.request)
            self._wake()
            return "recovered"
        self._fail(context)
        return "failed"

    def _fail(self, context: RunningContext) -> None:
        """Terminal failure: account it and tell the dispatcher."""
        context.finished_at = self.sim.now
        self.failed.append(context)
        self.metrics.counter("requests_failed").add(1)
        # Tokens already decoded for a failed request were wasted work.
        self.metrics.counter("wasted_tokens").add(context.generated)
        self._obs_failed.add()
        listener = self.request_listener
        if listener is not None:
            listener(context, "failed")

    def crash(self, restart_delay_s: float):
        """Kill this engine at the current instant.

        Every resident KV context is gone and the pending queue with it.
        Returns ``(displaced, dropped_pending)``: running requests with
        recovery budget left are *displaced* — handed back for
        recompute-from-prefix on another engine (or this one, after
        restart) with the usual recompute accounting — while the rest
        fail here; ``dropped_pending`` is the lost queue, whose fate
        (re-route or fail) is the caller's mitigation decision.

        The serving loop is interrupted (cancelling whatever iteration
        timer it was sleeping on via the kernel's generation check) and
        sleeps ``restart_delay_s`` before coming back up.
        """
        if restart_delay_s <= 0:
            raise ValueError("restart delay must be > 0")
        if not self.up:
            return [], []
        self.up = False
        self.down_until = self.sim.now + restart_delay_s
        self.metrics.counter("engine_crashes").add(1)
        self._obs_crashes.add()
        displaced: List[InferenceRequest] = []
        cfg = self.kv_recovery
        for context_id in sorted(self.scheduler.running):
            context = self.scheduler.running[context_id]
            self.kv.release(context_id)
            self.scheduler.finish(context_id)
            self.metrics.counter("kv_losses").add(1)
            self._obs_kv_losses.add()
            used = self._kv_recoveries.get(context_id, 0)
            if cfg.enabled and used < cfg.max_recoveries_per_request:
                self._kv_recoveries[context_id] = used + 1
                self.metrics.counter("kv_recoveries").add(1)
                self.metrics.counter("kv_recompute_tokens").add(
                    context.context_tokens
                )
                self._obs_kv_recoveries.add()
                self._obs_recompute.add(context.context_tokens)
                displaced.append(context.request)
            else:
                self._fail(context)
        dropped_pending = self.scheduler.pop_pending()
        if self._process.alive:
            self._process.interrupt(EngineCrashed(restart_delay_s))
        else:
            # Crashed after the loop drained: restart by callback so the
            # engine still comes back up for late re-dispatches.  Crash
            # handling is a per-fault cold path, not a per-event one.
            self.sim.schedule(
                restart_delay_s,
                lambda _event: self._restart(),  # repro-lint: disable=RL019
                name=f"{self.name}-restart",
            )
        return displaced, dropped_pending

    def _restart(self) -> None:
        self.up = True
        self._wakeup = self.sim.event(name=f"{self.name}-wakeup")
        self.metrics.counter("engine_restarts").add(1)

    def cancel(self, request_id: int) -> bool:
        """Withdraw a request: neither completed nor failed.

        The hedging/retry path: the dispatcher cancels the losing
        sibling (or a timed-out attempt).  A pending request is simply
        dropped; a running one is torn down and its decoded tokens
        counted as wasted work.  Returns False when the request is not
        resident here (already finished, or never dispatched here).
        """
        if self.scheduler.remove_pending(request_id):
            self.metrics.counter("requests_cancelled").add(1)
            return True
        context = self.scheduler.running.get(request_id)
        if context is None:
            return False
        self.kv.release(request_id)
        self.scheduler.finish(request_id)
        self.metrics.counter("requests_cancelled").add(1)
        self.metrics.counter("wasted_tokens").add(context.generated)
        return True

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _serve_loop(self) -> Generator:
        while True:
            try:
                yield from self._serve_pass()
            except EngineCrashed as crash:
                # The outage: whatever iteration timer the loop slept on
                # is a stale wakeup now (the interrupt bumped the wait
                # generation), so only this restart timer can resume us.
                yield Timeout(crash.restart_delay_s)
                self._restart()
                continue
            return

    def _serve_pass(self) -> Generator:
        """The pre-crash serving loop; returns only on drain."""
        while True:
            if not self.scheduler.has_work():
                if self._draining:
                    return
                # Wait on the current wakeup event (the one _wake fires),
                # then replace it so the next wait gets a fresh one.
                yield self._wakeup
                self._wakeup = self.sim.event(name=f"{self.name}-wakeup")
                continue
            # 1. Admit + prefill (one request per pass keeps TTFT fair).
            request = self.scheduler.try_admit()
            if request is not None:
                yield from self._run_prefill(request)
                continue
            # 2. Decode one iteration for the running batch.
            batch = self.scheduler.decode_batch()
            if batch:
                yield from self._run_decode_iteration(batch)
                continue
            # Nothing runnable: pending requests exist but don't fit.
            if self.scheduler.running:
                # In-flight prefill contexts will finish via their yields.
                yield Timeout(1e-3)
            else:
                if self._draining and self.scheduler.pending_count == 0:
                    return
                # Pending-but-unadmittable with nothing running means the
                # pool is too small for the request: fail loudly rather
                # than spin forever.
                raise RuntimeError(
                    f"{self.name}: {self.scheduler.pending_count} pending "
                    f"requests cannot ever be admitted (KV pool too small)"
                )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _run_prefill(self, request: InferenceRequest) -> Generator:
        context = self.scheduler.start(request)
        _allocated, shared_tokens = self.kv.register(
            context.context_id,
            request.prompt_tokens,
            prefix_key=request.prefix_key,
        )
        if shared_tokens:
            self.metrics.counter("prefix_tokens_shared").add(shared_tokens)
            self._obs_prefix_shared.add(shared_tokens)
        # Multi-turn follow-up: history KV already resident, prefill only
        # the new turn's tokens.
        new_tokens = request.prompt_tokens - request.cached_prompt_tokens
        self.metrics.counter("cached_prompt_tokens").add(
            request.cached_prompt_tokens
        )
        traffic = prefill_traffic(self.model, new_tokens)
        timing = self.roofline.time_step(
            traffic.flops,
            {self.placement["weights"]: traffic.bytes_read_weights},
            {self.placement["kv"]: traffic.bytes_written_kv},
        )
        self._account_step(traffic, timing)
        yield Timeout(timing.duration_s)
        now = self.sim.now
        context.prefill_done_at = now
        self.metrics.histogram("queue_delay_s").observe(
            now - timing.duration_s - request.arrival_time
        )

    def _run_decode_iteration(self, batch: List[RunningContext]) -> Generator:
        lengths = [c.context_tokens for c in batch]
        traffic = decode_step_traffic_batch(self.model, lengths)
        reads = _accumulate(
            (self.placement["weights"], traffic.bytes_read_weights),
            (self.placement["kv"], traffic.bytes_read_kv),
        )
        timing = self.roofline.time_step(
            traffic.flops,
            reads,
            {self.placement["kv"]: traffic.bytes_written_kv},
        )
        self._account_step(traffic, timing)
        yield Timeout(timing.duration_s)
        now = self.sim.now
        # A KV-loss fault may tear a victim out of the batch while the
        # iteration's time elapses; its share of the step is wasted work
        # and it gets no token.
        batch = [
            c for c in batch if c.context_id in self.scheduler.running
        ]
        self.kv.append_batch([c.context_id for c in batch])
        # Batched bookkeeping: counters accumulate whole-batch integer
        # deltas (exact in float64, bit-identical to per-context add(1)
        # loops); histograms keep scalar observes in batch order so the
        # running sums round exactly as the per-context path did.
        duration = timing.duration_s
        hist_ttft = self.metrics.histogram("ttft_s")
        hist_tbt = self.metrics.histogram("tbt_s")
        finished: List[RunningContext] = []
        for context in batch:
            context.generated += 1
            if context.first_token_at is None:
                context.first_token_at = now
                wait = now - context.request.arrival_time
                hist_ttft.observe(wait)
                self._obs_ttft.observe(wait)
            hist_tbt.observe(duration)
            self._obs_tbt.observe(duration)
            if context.done:
                context.finished_at = now
                finished.append(context)
        if batch:
            self.metrics.counter("tokens_generated").add(len(batch))
            self._obs_tokens.add(len(batch))
        if finished:
            self.kv.release_batch([c.context_id for c in finished])
            completed_counter = self.metrics.counter("requests_completed")
            hist_latency = self.metrics.histogram("request_latency_s")
            listener = self.request_listener
            for context in finished:
                self.scheduler.finish(context.context_id)
                self.completed.append(context)
                hist_latency.observe(now - context.request.arrival_time)
            completed_counter.add(len(finished))
            self._obs_completed.add(len(finished))
            if listener is not None:
                # After the batch bookkeeping: a listener reaction (e.g.
                # cancelling a hedge sibling on another engine) must not
                # interleave with this engine's own counters.
                for context in finished:
                    listener(context, "completed")

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _account_step(self, traffic, timing) -> None:
        m = self.metrics
        self._busy_time += timing.duration_s
        if timing.boundedness is Boundedness.MEMORY:
            m.counter("memory_bound_steps").add(1)
            self._obs_mem_steps.add()
        else:
            m.counter("compute_bound_steps").add(1)
            self._obs_compute_steps.add()
        routes = [
            ("weights", traffic.bytes_read_weights, 0.0),
            ("kv", traffic.bytes_read_kv, traffic.bytes_written_kv),
        ]
        for structure, read, written in routes:
            tier_name = self.placement[structure]
            tier = self.accelerator.tier(tier_name)
            m.counter(f"bytes_read:{tier_name}").add(read)
            m.counter(f"bytes_written:{tier_name}").add(written)
            m.counter(f"bytes_read:{structure}").add(read)
            m.counter(f"bytes_written:{structure}").add(written)
            m.counter("access_energy_j").add(
                tier.read_energy_j(read) + tier.write_energy_j(written)
            )

    def summarize(self) -> EngineMetrics:
        """Snapshot the run into an :class:`EngineMetrics`."""
        m = self.metrics
        ttft = m.histogram("ttft_s")
        tbt = m.histogram("tbt_s")
        tier_reads: Dict[str, float] = {}
        tier_writes: Dict[str, float] = {}
        for tier in self.accelerator.tiers:
            tier_reads[tier.name] = m.counter(f"bytes_read:{tier.name}").value
            tier_writes[tier.name] = m.counter(f"bytes_written:{tier.name}").value
        return EngineMetrics(
            requests_completed=int(m.counter("requests_completed").value),
            tokens_generated=int(m.counter("tokens_generated").value),
            ttft_p50_s=_quantile_or_nan(ttft, 0.5),
            ttft_p99_s=_quantile_or_nan(ttft, 0.99),
            tbt_p50_s=_quantile_or_nan(tbt, 0.5),
            tbt_p99_s=_quantile_or_nan(tbt, 0.99),
            memory_bound_steps=int(m.counter("memory_bound_steps").value),
            compute_bound_steps=int(m.counter("compute_bound_steps").value),
            tier_bytes_read=tier_reads,
            tier_bytes_written=tier_writes,
            access_energy_j=m.counter("access_energy_j").value,
            busy_time_s=self._busy_time,
            requests_failed=int(m.counter("requests_failed").value),
            kv_losses=int(m.counter("kv_losses").value),
            kv_recoveries=int(m.counter("kv_recoveries").value),
            kv_recompute_tokens=int(m.counter("kv_recompute_tokens").value),
            requests_cancelled=int(m.counter("requests_cancelled").value),
            wasted_tokens=int(m.counter("wasted_tokens").value),
            engine_crashes=int(m.counter("engine_crashes").value),
            engine_restarts=int(m.counter("engine_restarts").value),
        )
