"""Multi-accelerator inference cluster.

"Each inference query ... requires distributed computation across
multiple AI accelerators.  At any given time, many inference requests
are multiplexed over the same cluster, but all of them are for the same
model" (Section 2).

:class:`Cluster` runs N :class:`~repro.inference.engine.InferenceEngine`
instances over one simulator, dispatches an arrival stream across them
(join-shortest-queue), and aggregates metrics into a
:class:`ClusterReport` — the object every cluster-level experiment
consumes.

The per-engine model share is handled by scaling: each engine is given
the whole model and a full accelerator; tensor-parallel groups are
modeled as one logical engine with the group's aggregate FLOPs/bandwidth
(build such a config with :func:`tensor_parallel_group`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional

from repro.inference.accelerator import AcceleratorConfig, MemoryTierSpec
from repro.inference.batching import RunningContext
from repro.inference.engine import InferenceEngine, KVRecoveryConfig
from repro.inference.resilience import ResiliencePolicy, ResilientDispatcher
from repro.sim import Simulator
from repro.workload.model import ModelConfig
from repro.workload.requests import InferenceRequest, SLAClass

#: Outage length of a crashed engine when no resilience policy names one.
DEFAULT_RESTART_DELAY_S = 0.5


def tensor_parallel_group(
    accelerator: AcceleratorConfig, group_size: int
) -> AcceleratorConfig:
    """Aggregate ``group_size`` accelerators into one logical engine.

    FLOPs, tier capacities and bandwidths sum; per-device efficiency
    factors stay (collective-communication overheads are inside
    ``compute_efficiency``).  This mirrors how a TP group serves one
    model replica.
    """
    if group_size < 1:
        raise ValueError("group size must be >= 1")
    tiers = tuple(
        MemoryTierSpec(
            name=tier.name,
            capacity_bytes=tier.capacity_bytes * group_size,
            read_bandwidth=tier.read_bandwidth * group_size,
            write_bandwidth=tier.write_bandwidth * group_size,
            profile=tier.profile,
        )
        for tier in accelerator.tiers
    )
    return replace(
        accelerator,
        name=f"{accelerator.name}-tp{group_size}",
        peak_flops=accelerator.peak_flops * group_size,
        tiers=tiers,
        board_power_w=accelerator.board_power_w * group_size,
    )


#: Default latency SLOs per class: (max TTFT seconds, max mean TBT seconds).
#: Interactive = user-in-the-loop chat; throughput = batch API calls;
#: best-effort = background jobs (unbounded).
DEFAULT_SLA_THRESHOLDS = {
    SLAClass.INTERACTIVE: (1.0, 0.05),
    SLAClass.THROUGHPUT: (10.0, 0.5),
    SLAClass.BEST_EFFORT: (float("inf"), float("inf")),
}


@dataclass
class ClusterReport:
    """Aggregated results of one cluster run."""

    engines: int
    duration_s: float
    requests_completed: int
    tokens_generated: int
    throughput_tokens_per_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tbt_p50_s: float
    tbt_p99_s: float
    memory_bound_fraction: float
    tier_bytes_read: Dict[str, float]
    tier_bytes_written: Dict[str, float]
    access_energy_j: float
    board_energy_j: float
    #: Per SLA class: fraction of completed requests meeting their SLO
    #: (Section 4: "some use cases have tight latency SLAs").
    sla_attainment: Dict[SLAClass, float] = None
    #: Requests dropped by KV-loss faults (recovery budget exhausted or
    #: mitigation disabled) — see repro.faults.
    requests_failed: int = 0
    #: Running requests recovered by recompute-from-prefix.
    kv_recoveries: int = 0
    #: Tokens of work redone by those recoveries.
    kv_recompute_tokens: int = 0
    #: Resilience-layer outcomes (zero without a dispatcher).
    requests_shed: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    deadline_timeouts: int = 0
    engine_crashes: int = 0
    engine_restarts: int = 0
    #: Decode tokens thrown away (failed, cancelled or hedged-out arms).
    wasted_tokens: int = 0
    #: Output tokens of requests that actually completed — the goodput
    #: numerator the availability experiments compare.
    useful_tokens: int = 0
    #: Worst crash-to-displaced-request-completion time (0 = no crash
    #: displaced anything, or nothing displaced completed).
    time_to_recovery_s: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of finished requests actually served."""
        finished = (
            self.requests_completed + self.requests_failed + self.requests_shed
        )
        if finished == 0:
            return 1.0
        return self.requests_completed / finished

    @property
    def goodput_tokens_per_s(self) -> float:
        """Throughput net of recomputed (wasted) tokens."""
        if self.duration_s <= 0:
            return 0.0
        useful = max(0, self.tokens_generated - self.kv_recompute_tokens)
        return useful / self.duration_s

    @property
    def delivered_goodput_tokens_per_s(self) -> float:
        """Output tokens of *completed* requests per second — the strict
        goodput definition the chaos experiments rank arms by (work
        thrown away by failures, sheds, cancels and recomputes never
        enters the numerator)."""
        if self.duration_s <= 0:
            return 0.0
        return self.useful_tokens / self.duration_s

    @property
    def tokens_per_joule(self) -> float:
        total = self.access_energy_j + self.board_energy_j
        if total == 0:
            return 0.0
        return self.tokens_generated / total


class Cluster:
    """N engines + a join-shortest-queue dispatcher."""

    def __init__(
        self,
        sim: Simulator,
        accelerator: AcceleratorConfig,
        model: ModelConfig,
        num_engines: int = 1,
        placement: Optional[Mapping[str, str]] = None,
        max_batch_size: int = 16,
        enable_prefix_sharing: bool = False,
        kv_recovery: Optional[KVRecoveryConfig] = None,
        resilience: Optional[ResiliencePolicy] = None,
        obs=None,
    ) -> None:
        if num_engines < 1:
            raise ValueError("need at least one engine")
        self.sim = sim
        self.accelerator = accelerator
        self.model = model
        self.obs = obs
        self.resilience = resilience
        self.engines: List[InferenceEngine] = [
            InferenceEngine(
                sim,
                accelerator,
                model,
                placement=placement,
                max_batch_size=max_batch_size,
                enable_prefix_sharing=enable_prefix_sharing,
                kv_recovery=kv_recovery,
                name=f"engine-{i}",
                obs=obs,
            )
            for i in range(num_engines)
        ]
        self.dispatcher: Optional[ResilientDispatcher] = None
        if resilience is not None and resilience.enabled:
            self.dispatcher = ResilientDispatcher(
                sim, self, resilience, obs=obs
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _least_loaded(self) -> InferenceEngine:
        # Route around crashed engines; with the whole fleet down, fall
        # back to any engine's queue (it serves once it restarts).
        candidates = [e for e in self.engines if e.up] or self.engines
        return min(
            candidates,
            key=lambda e: (
                e.scheduler.pending_count + e.scheduler.batch_size,
                e.name,
            ),
        )

    def _deliver(self, request: InferenceRequest) -> None:
        if self.dispatcher is not None:
            self.dispatcher.submit(request)
        else:
            self._least_loaded().submit(request)

    def submit_stream(self, requests: Iterable[InferenceRequest]) -> int:
        """Schedule every request's arrival; returns the count."""
        count = 0
        for request in requests:
            self.sim.schedule_at(
                request.arrival_time,
                lambda _ev, r=request: self._deliver(r),
                name=f"arrival-{request.request_id}",
            )
            count += 1
        return count

    # ------------------------------------------------------------------
    # Fault handling (driven by repro.faults)
    # ------------------------------------------------------------------
    def handle_engine_crash(self, name: str):
        """Crash the named engine; returns ``(outcome, detail)``.

        With a dispatcher, displaced requests (recoverable running
        contexts and the lost pending queue) re-route to live engines.
        Without one (the no-mitigation baseline, or a pre-resilience
        caller), recompute-eligible running requests still re-dispatch
        via JSQ — that mitigation belongs to ``kv_recovery``, which
        produced them — but the lost queue simply fails.
        """
        engine = next((e for e in self.engines if e.name == name), None)
        if engine is None:
            raise ValueError(f"no engine named {name!r} in this cluster")
        if not engine.up:
            return "already-down", 0
        delay = (
            self.resilience.restart_delay_s
            if self.resilience is not None
            else DEFAULT_RESTART_DELAY_S
        )
        displaced, dropped_pending = engine.crash(delay)
        if self.dispatcher is not None:
            self.dispatcher.on_engine_crash(
                engine, displaced + dropped_pending
            )
        else:
            for request in displaced:
                self._least_loaded().submit(request)
            for request in dropped_pending:
                # The queue died with the engine: account each entry as a
                # failed request (it never had a running context).
                engine._fail(RunningContext(request=request))
        return "crashed", len(displaced) + len(dropped_pending)

    def run(self, requests: Iterable[InferenceRequest]) -> ClusterReport:
        """Run the full stream to completion and report."""
        submitted = self.submit_stream(requests)
        # Drain once all arrivals have been delivered: schedule the drain
        # after the furthest arrival by running the event loop in stages.
        self.sim.run()
        for engine in self.engines:
            engine.drain()
        self.sim.run()
        if self.dispatcher is not None:
            incomplete = submitted - self.dispatcher.settled
        else:
            finished = sum(
                int(e.metrics.counter("requests_completed").value)
                + int(e.metrics.counter("requests_failed").value)
                for e in self.engines
            )
            incomplete = submitted - finished
        if incomplete:
            raise RuntimeError(f"{incomplete} requests never completed")
        return self.report()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _work_end(self) -> float:
        """When serving actually finished: the last completion, failure
        or shed.  ``sim.now`` overstates it once resilience timers are
        in play — a deadline scheduled for t+30 for a request that
        finished at t+2 still drains through the event queue (stale
        timers are generation-guarded no-ops, never unqueued) and would
        otherwise stretch every rate metric's denominator.
        """
        end = 0.0
        for engine in self.engines:
            for context in engine.completed:
                if context.finished_at is not None and context.finished_at > end:
                    end = context.finished_at
            for context in engine.failed:
                if context.finished_at is not None and context.finished_at > end:
                    end = context.finished_at
        if self.dispatcher is not None and self.dispatcher.last_settle_s > end:
            end = self.dispatcher.last_settle_s
        return end if end > 0 else self.sim.now

    def report(self) -> ClusterReport:
        summaries = [e.summarize() for e in self.engines]
        duration = self._work_end() if self.dispatcher is not None else self.sim.now
        tokens = sum(s.tokens_generated for s in summaries)
        requests = sum(s.requests_completed for s in summaries)
        tier_reads: Dict[str, float] = {}
        tier_writes: Dict[str, float] = {}
        # Sorted tier order: engines may record tiers in different
        # insertion orders, and float addition is not associative.
        for summary in summaries:
            for tier, value in sorted(summary.tier_bytes_read.items()):
                tier_reads[tier] = tier_reads.get(tier, 0.0) + value
            for tier, value in sorted(summary.tier_bytes_written.items()):
                tier_writes[tier] = tier_writes.get(tier, 0.0) + value
        memory_steps = sum(s.memory_bound_steps for s in summaries)
        compute_steps = sum(s.compute_bound_steps for s in summaries)
        total_steps = memory_steps + compute_steps

        def merged_quantile(metric: str, q: float) -> float:
            values: List[float] = []
            for engine in self.engines:
                hist = engine.metrics.histogram(metric)
                values.extend(hist._ensure_sorted())
            if not values:
                return float("nan")
            values.sort()
            pos = q * (len(values) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(values) - 1)
            frac = pos - lo
            return values[lo] * (1 - frac) + values[hi] * frac

        board_energy = sum(
            self.accelerator.board_power_w * s.busy_time_s for s in summaries
        )
        sla_attainment = self._sla_attainment()
        useful_tokens = sum(
            context.request.output_tokens
            for engine in self.engines
            for context in engine.completed
        )
        dispatcher = self.dispatcher
        if dispatcher is not None:
            # Engine "failed" counters tally per-arm teardowns, some of
            # which the dispatcher retried to completion; the settled
            # outcomes are the request-level truth.
            requests_failed = dispatcher.failed
            resilience_fields = dict(
                requests_shed=dispatcher.shed,
                retries=dispatcher.retries,
                hedges=dispatcher.hedges,
                hedge_wins=dispatcher.hedge_wins,
                deadline_timeouts=dispatcher.deadline_timeouts,
                time_to_recovery_s=dispatcher.time_to_recovery_s,
            )
        else:
            requests_failed = sum(s.requests_failed for s in summaries)
            resilience_fields = {}
        return ClusterReport(
            engines=len(self.engines),
            duration_s=duration,
            requests_completed=requests,
            tokens_generated=tokens,
            throughput_tokens_per_s=(tokens / duration if duration > 0 else 0.0),
            ttft_p50_s=merged_quantile("ttft_s", 0.5),
            ttft_p99_s=merged_quantile("ttft_s", 0.99),
            tbt_p50_s=merged_quantile("tbt_s", 0.5),
            tbt_p99_s=merged_quantile("tbt_s", 0.99),
            memory_bound_fraction=(
                memory_steps / total_steps if total_steps else 0.0
            ),
            tier_bytes_read=tier_reads,
            tier_bytes_written=tier_writes,
            access_energy_j=sum(s.access_energy_j for s in summaries),
            board_energy_j=board_energy,
            sla_attainment=sla_attainment,
            requests_failed=requests_failed,
            kv_recoveries=sum(s.kv_recoveries for s in summaries),
            kv_recompute_tokens=sum(s.kv_recompute_tokens for s in summaries),
            engine_crashes=sum(s.engine_crashes for s in summaries),
            engine_restarts=sum(s.engine_restarts for s in summaries),
            wasted_tokens=sum(s.wasted_tokens for s in summaries),
            useful_tokens=useful_tokens,
            **resilience_fields,
        )

    def _sla_attainment(
        self, thresholds: Optional[Dict[SLAClass, tuple]] = None
    ) -> Dict[SLAClass, float]:
        """Fraction of completed requests meeting their class SLO.

        TTFT is measured from arrival to first token; the time-between-
        tokens figure is the request's mean (finish - first token) /
        (output tokens - 1).
        """
        thresholds = thresholds or DEFAULT_SLA_THRESHOLDS
        met: Dict[SLAClass, int] = {}
        total: Dict[SLAClass, int] = {}
        for engine in self.engines:
            for context in engine.completed:
                request = context.request
                sla = request.sla
                total[sla] = total.get(sla, 0) + 1
                ttft_limit, tbt_limit = thresholds[sla]
                ttft = context.first_token_at - request.arrival_time
                if request.output_tokens > 1:
                    mean_tbt = (context.finished_at - context.first_token_at) / (
                        request.output_tokens - 1
                    )
                else:
                    mean_tbt = 0.0
                if ttft <= ttft_limit and mean_tbt <= tbt_limit:
                    met[sla] = met.get(sla, 0) + 1
        return {
            sla: met.get(sla, 0) / count for sla, count in total.items()
        }
