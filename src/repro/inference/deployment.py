"""Model deployment: the cost of the write performance MRM trades away.

Section 2: "When a new model is deployed, the cluster stops accepting
new requests, services ongoing ones, then loads weights for the new
model."  MRM's central bargain *forfeits write performance* — so the
honest question is what that costs at the one moment the workload
writes in bulk: the weight swap.

:class:`ModelSwapModel` computes, for a tier technology and an update
cadence:

- **drain time** — serving out the in-flight contexts (independent of
  memory technology);
- **load time** — ``weights_bytes / tier write bandwidth`` (this is
  where MRM is slower);
- **availability** — fraction of wall time the replica serves, given
  swaps every ``update_interval``;
- **wear budget** — endurance consumed by a lifetime of swaps at the
  tier's retention point.

The paper's trade is safe exactly when the availability loss stays
negligible at realistic cadences ("currently typically low (hours+)")
— which bench A9 asserts — and becomes visible at the paper's extreme
once-per-second bound, which the same bench also shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.tiering.tiers import MemoryTier
from repro.units import YEAR
from repro.workload.model import ModelConfig


@dataclass(frozen=True)
class SwapCost:
    """One technology's model-swap economics."""

    tier: str
    drain_time_s: float
    load_time_s: float
    update_interval_s: float
    lifetime_s: float

    @property
    def downtime_s(self) -> float:
        """Unavailable seconds per swap (drain overlaps serving; the
        replica is only dark while weights load)."""
        return self.load_time_s

    @property
    def availability(self) -> float:
        """Fraction of wall time serving, at the update cadence."""
        cycle = self.update_interval_s
        if cycle <= 0:
            return 0.0
        return max(0.0, 1.0 - self.downtime_s / cycle)

    def swaps_over_lifetime(self) -> float:
        return self.lifetime_s / self.update_interval_s


class ModelSwapModel:
    """Swap economics for a model on a given memory tier.

    Parameters
    ----------
    model:
        The deployed model (weights size).
    mean_outstanding_decode_s:
        Expected time to serve out in-flight contexts when the drain
        begins (median request's remaining decode; ~tens of seconds).
    """

    def __init__(
        self,
        model: ModelConfig,
        mean_outstanding_decode_s: float = 30.0,
    ) -> None:
        if mean_outstanding_decode_s < 0:
            raise ValueError("drain time must be >= 0")
        self.model = model
        self.mean_outstanding_decode_s = mean_outstanding_decode_s

    def swap_cost(
        self,
        tier: MemoryTier,
        update_interval_s: float,
        lifetime_s: float = 5 * YEAR,
    ) -> SwapCost:
        """Cost of swapping on ``tier`` at a given cadence."""
        if update_interval_s <= 0 or lifetime_s <= 0:
            raise ValueError("intervals must be positive")
        load_time = self.model.weights_bytes / tier.write_bandwidth
        return SwapCost(
            tier=tier.name,
            drain_time_s=self.mean_outstanding_decode_s,
            load_time_s=load_time,
            update_interval_s=update_interval_s,
            lifetime_s=lifetime_s,
        )

    def endurance_consumed(
        self,
        tier: MemoryTier,
        update_interval_s: float,
        lifetime_s: float = 5 * YEAR,
    ) -> float:
        """Fraction of the tier's cell endurance a lifetime of swaps
        burns (each swap rewrites every weight cell once)."""
        swaps = lifetime_s / update_interval_s
        return swaps / tier.profile.endurance_cycles

    def compare_tiers(
        self,
        tiers: Sequence[MemoryTier],
        update_interval_s: float,
        lifetime_s: float = 5 * YEAR,
    ) -> Dict[str, SwapCost]:
        return {
            tier.name: self.swap_cost(tier, update_interval_s, lifetime_s)
            for tier in tiers
        }
