"""Closed-form (fluid-replay) approximation of the serving cluster.

The DES in :mod:`repro.inference.engine` is exact but pays one event per
decode iteration; sweeps over large grids are bounded by its event rate.
This module evaluates the *same* workload — a concrete request list, the
same roofline arithmetic, the same placement map — in a handful of
vectorized NumPy passes, reproducing the
:class:`~repro.inference.cluster.ClusterReport` aggregates at a few
hundred times the speed.

The model is a **trace-driven fluid replay** rather than a pure
steady-state queueing formula: it works from the realized arrival times
of the concrete trace, so small samples (where an ensemble average would
predict overlap that never happened) stay accurate.

1. **Roofline step times** (exact arithmetic): prefill and per-context
   decode-step durations are the same ``max(compute, memory)`` formulas
   the engine evaluates, vectorized over all requests/steps at once.  A
   context decoding at length ``c`` shares its iteration with
   ``b_i - 1`` co-runners of mean length ``c_bar``, where ``b_i`` is the
   request's *realized* mean batch (below).
2. **JSQ replay + concurrency sweep**: requests are assigned to engines
   by replaying the cluster's join-shortest-queue rule against estimated
   residence times; a sweep-line over each engine's decode intervals
   yields every request's realized co-runner integral (``b_i``), the
   engine's busy time, and the realized peak concurrency.  Two rounds
   are run — the second with batch-dilated spans — so batching feedback
   is captured to first order.
3. **Prefill preemption and admission waits**: the engine loop admits
   (and prefills) newly arrived requests between decode iterations, so a
   request's first token and completion shift by the prefill times of
   requests that arrive inside its window; an arrival that lands on a
   busy engine additionally waits out the in-flight iteration
   (~half a mean step) or the tail of an in-flight prefill.

Byte traffic that does not depend on interleaving (KV reads/writes,
prefill weight reads) is **exact**; only quantities tied to iteration
*count* (decode weight-read amortization, busy time, board energy) go
through the realized batch factors.

Scenarios the fluid replay cannot express raise
:class:`UnsupportedScenario` (a ``ValueError``, so the CLI reports it as
one line and exits 2): prefix sharing, fault-injection arms, KV pools
too small for a request, offered loads outside the stability envelope,
and workloads whose realized concurrency spills over the admission cap
(where DES queueing dynamics dominate).  See ``docs/PERFORMANCE.md`` for
the validity envelope and the measured DES-vs-analytic error table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.inference.accelerator import AcceleratorConfig
from repro.inference.cluster import DEFAULT_SLA_THRESHOLDS, ClusterReport
from repro.inference.engine import DEFAULT_PLACEMENT, KVRecoveryConfig
from repro.workload.model import ModelConfig
from repro.workload.requests import InferenceRequest, SLAClass

#: Offered-load ceiling: beyond this the queue is in (or near) a backlog
#: regime whose waiting times a fluid replay cannot summarize.  The check
#: uses best-case batching (the admission cap), so anything it rejects is
#: overloaded under *any* schedule.
MAX_STABLE_UTILIZATION = 0.95

#: Tolerated fraction of concurrency-time above the admission cap before
#: the scenario is declared queue-bound (and analytically unsupported).
MAX_OVERFLOW_FRACTION = 0.05


class UnsupportedScenario(ValueError):
    """The analytic mode cannot represent this scenario; run the DES."""


def _quantile(values: np.ndarray, q: float) -> float:
    """Rank-interpolated quantile, matching ``Cluster.report``'s
    ``merged_quantile`` (linear interpolation at ``q * (n - 1)``)."""
    if values.size == 0:
        return float("nan")
    return float(np.quantile(values, q))


def analytic_cluster_report(
    accelerator: AcceleratorConfig,
    model: ModelConfig,
    requests: Iterable[InferenceRequest],
    num_engines: int = 1,
    placement: Optional[Mapping[str, str]] = None,
    max_batch_size: int = 16,
    tokens_per_page: int = 16,
    enable_prefix_sharing: bool = False,
    kv_recovery: Optional[KVRecoveryConfig] = None,
) -> ClusterReport:
    """Evaluate a serving scenario in closed form.

    Mirrors ``Cluster(...).run(requests)`` — same argument meanings,
    same :class:`ClusterReport` shape — without building a simulator.
    ``kv_recovery`` is accepted for signature parity; with no fault
    injection (the only analytic regime) it never acts.
    """
    if num_engines < 1:
        raise ValueError("need at least one engine")
    if max_batch_size < 1:
        raise ValueError("max batch size must be >= 1")
    if enable_prefix_sharing:
        raise UnsupportedScenario(
            "analytic mode does not support prefix sharing; use mode=des"
        )
    placement = dict(DEFAULT_PLACEMENT, **(placement or {}))
    for tier_name in placement.values():
        accelerator.tier(tier_name)  # raises KeyError on bad placement

    requests = list(requests)
    if not requests:
        return _empty_report(num_engines)

    arrival = np.array([r.arrival_time for r in requests], dtype=np.float64)
    prompt = np.array([r.prompt_tokens for r in requests], dtype=np.float64)
    output = np.array([r.output_tokens for r in requests], dtype=np.int64)
    cached = np.array(
        [r.cached_prompt_tokens for r in requests], dtype=np.float64
    )
    new_tokens = prompt - cached  # InferenceRequest guarantees >= 1
    count = len(requests)
    total_tokens = int(output.sum())

    _check_kv_pool(
        accelerator, model, placement, prompt, max_batch_size,
        tokens_per_page=tokens_per_page,
    )

    # ------------------------------------------------------------------
    # Hardware constants (identical to RooflineModel.time_step)
    # ------------------------------------------------------------------
    flops_eff = accelerator.effective_flops
    bw_eff = accelerator.bandwidth_efficiency
    w_tier = accelerator.tier(placement["weights"])
    kv_tier = accelerator.tier(placement["kv"])
    same_tier = w_tier.name == kv_tier.name
    w_read_bw = w_tier.read_bandwidth * bw_eff
    kv_read_bw = kv_tier.read_bandwidth * bw_eff
    kv_write_bw = kv_tier.write_bandwidth * bw_eff

    weights_bytes = float(model.weights_bytes)
    kv_tok = float(model.kv_bytes_per_token)
    # decode_flops_per_token(c) = dense + attention-slope * c
    flops_dense = 2.0 * model.n_params
    flops_attn = 4.0 * model.n_layers * model.n_kv_heads * model.head_dim

    # ------------------------------------------------------------------
    # Prefill: exact per request (matches engine._run_prefill routing:
    # weights read on the weights tier, KV written on the KV tier).
    # ------------------------------------------------------------------
    pre_flops = (
        2.0 * model.n_params * new_tokens
        + 2.0
        * model.n_layers
        * new_tokens**2
        * model.n_kv_heads
        * model.head_dim
    )
    pre_compute = pre_flops / flops_eff
    t_w = weights_bytes / w_read_bw
    t_kv_write = kv_tok * new_tokens / kv_write_bw
    if same_tier:
        pre_memory = t_w + t_kv_write
    else:
        pre_memory = np.maximum(t_w, t_kv_write)
    pre_time = np.maximum(pre_compute, pre_memory)
    pre_memory_bound = int(np.count_nonzero(pre_memory >= pre_compute))

    # ------------------------------------------------------------------
    # Per-context decode steps: flat arrays over every (request, step).
    # Context length at a request's s-th step is prompt + s.
    # ------------------------------------------------------------------
    ctx = np.repeat(prompt, output) + _step_index(output)
    starts = np.zeros(count, dtype=np.int64)
    np.cumsum(output[:-1], out=starts[1:])
    c_bar = float(ctx.mean())

    def step_times(
        batch_per_step: np.ndarray, co_ctx: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat step durations given each step's batch size.

        Returns ``(durations, memory_bound_flags)``.  The tagged context
        contributes its exact length; its ``b - 1`` co-runners enter at
        their realized summed context ``co_ctx`` (falling back to the
        mean length), mirroring ``decode_step_traffic_batch`` +
        ``RooflineModel.time_step``.
        """
        if co_ctx is None:
            co_ctx = (batch_per_step - 1.0) * c_bar
        compute = (
            flops_dense * batch_per_step + flops_attn * (ctx + co_ctx)
        ) / flops_eff
        kv_read = kv_tok * (ctx + co_ctx)
        if same_tier:
            memory = (
                (weights_bytes + kv_read) / kv_read_bw
                + kv_tok * batch_per_step / kv_write_bw
            )
        else:
            memory = np.maximum(
                weights_bytes / w_read_bw,
                kv_read / kv_read_bw + kv_tok * batch_per_step / kv_write_bw,
            )
        return np.maximum(compute, memory), memory >= compute

    solo = np.ones(ctx.size, dtype=np.float64)
    step_solo, _ = step_times(solo)
    decode_solo = np.add.reduceat(step_solo, starts)

    # ------------------------------------------------------------------
    # Stability guard: even with perfect cap-sized batching the offered
    # load must sit inside the envelope, or the DES is in a backlog
    # regime no fluid model should claim to summarize.
    # ------------------------------------------------------------------
    span = float(arrival.max() - arrival.min())
    lam_e = (count / span / num_engines) if span > 0 else 0.0
    best_service = float(np.mean(pre_time + decode_solo / max_batch_size))
    if lam_e * best_service >= MAX_STABLE_UTILIZATION:
        raise UnsupportedScenario(
            f"offered load rho>={lam_e * best_service:.2f} per engine even "
            f"at the admission cap; outside the analytic stability "
            f"envelope (<{MAX_STABLE_UTILIZATION}), use mode=des"
        )

    # ------------------------------------------------------------------
    # JSQ replay: assign requests to engines exactly as the cluster's
    # join-shortest-queue dispatcher would, using estimated residences.
    # (Engine names sort as "engine-0" < "engine-1" ... so index order is
    # the DES tie-break for the engine counts this model accepts.)
    # ------------------------------------------------------------------
    engine_of = _jsq_replay(
        arrival, arrival + pre_time + decode_solo, num_engines
    )

    # ------------------------------------------------------------------
    # Realized concurrency, two rounds: round 1 sweeps solo-time decode
    # intervals to get first-order batch factors; round 2 re-sweeps with
    # batch-dilated, wait-shifted intervals (batching feedback).
    # ------------------------------------------------------------------
    b_ctx, _, _, _, _ = _engine_geometry(
        arrival + pre_time, decode_solo, prompt, output, engine_of,
        num_engines, max_batch_size,
    )
    b_ctx = np.minimum(b_ctx, float(max_batch_size))
    step_time, _ = step_times(np.repeat(b_ctx, output))
    decode_sum = np.add.reduceat(step_time, starts)

    wait, ttft_delay, fin_delay = _admission_waits(
        arrival, pre_time, decode_sum, output, engine_of, num_engines
    )
    dstart = arrival + wait + pre_time + ttft_delay
    span_len = decode_sum + (fin_delay - ttft_delay)
    _, busy_union, peak, overflow, profiles = _engine_geometry(
        dstart, span_len, prompt, output, engine_of, num_engines,
        max_batch_size,
    )
    conc_time = float(busy_union.sum())
    if overflow > MAX_OVERFLOW_FRACTION * max(conc_time, 1e-12):
        raise UnsupportedScenario(
            f"realized concurrency (peak {int(peak)}) spills over the "
            f"admission cap ({max_batch_size}) for "
            f"{overflow / max(conc_time, 1e-12):.0%} of the busy time; "
            f"queue-bound scenario, use mode=des"
        )
    # Per-step batch sizes and co-runner context sums: sample the
    # engine's realized concurrency and total-context profiles at each
    # step's position within its request's decode span.  This keeps
    # E[1/b] (iteration shares) and the tbt tail honest — one
    # window-averaged batch per request would flatten both, and a mean
    # co-runner length would miss the slow iterations where several
    # long contexts decode together.
    frac = (_step_index(output) + 0.5) / np.repeat(output, output)
    flat_t = np.repeat(dstart, output) + frac * np.repeat(span_len, output)
    step_b, ctx_sum = _sample_profiles(
        flat_t, np.repeat(engine_of, output), profiles
    )
    co_ctx = np.maximum(ctx_sum - ctx, 0.0)
    raw_b = np.maximum(step_b, 1.0)
    np.clip(step_b, 1.0, float(max_batch_size), out=step_b)
    # If the cap trimmed the batch, trim the co-runner context with it.
    co_ctx *= (step_b - 1.0) / np.maximum(raw_b - 1.0, 1.0)
    step_time, step_memory_bound = step_times(step_b, co_ctx)
    decode_sum = np.add.reduceat(step_time, starts)
    first_step = step_time[starts]
    wait, ttft_delay, fin_delay = _admission_waits(
        arrival, pre_time, decode_sum, output, engine_of, num_engines
    )

    first_token = arrival + wait + pre_time + ttft_delay + first_step
    ttft = first_token - arrival
    completion = arrival + wait + pre_time + decode_sum + fin_delay
    duration = float(completion.max())

    # ------------------------------------------------------------------
    # Byte traffic and energy.  KV traffic is exact; decode weight reads
    # amortize over each request's realized batch factor (a request's
    # share of an engine iteration is 1 / b_i).
    # ------------------------------------------------------------------
    step_share = 1.0 / step_b
    engine_steps = float(step_share.sum())
    weights_read = weights_bytes * (count + engine_steps)
    kv_read_total = kv_tok * float(ctx.sum())
    kv_written = kv_tok * (float(new_tokens.sum()) + total_tokens)

    tier_reads: Dict[str, float] = {t.name: 0.0 for t in accelerator.tiers}
    tier_writes: Dict[str, float] = {t.name: 0.0 for t in accelerator.tiers}
    tier_reads[w_tier.name] += weights_read
    tier_reads[kv_tier.name] += kv_read_total
    tier_writes[kv_tier.name] += kv_written
    access_energy = (
        w_tier.read_energy_j(weights_read)
        + kv_tier.read_energy_j(kv_read_total)
        + kv_tier.write_energy_j(kv_written)
    )
    busy_time = float(pre_time.sum()) + float((step_time * step_share).sum())
    board_energy = accelerator.board_power_w * busy_time

    total_steps = count + engine_steps
    memory_bound_fraction = (
        (pre_memory_bound + float(step_share[step_memory_bound].sum()))
        / total_steps
        if total_steps
        else 0.0
    )

    # ------------------------------------------------------------------
    # SLA attainment: same per-request test as Cluster._sla_attainment.
    # ------------------------------------------------------------------
    multi = output > 1
    mean_tbt = np.zeros(count, dtype=np.float64)
    np.divide(
        completion - first_token,
        np.maximum(output - 1, 1),
        out=mean_tbt,
        where=multi,
    )
    sla_attainment: Dict[SLAClass, float] = {}
    slas = np.array([r.sla.value for r in requests])
    for sla in SLAClass:
        mask = slas == sla.value
        total = int(np.count_nonzero(mask))
        if not total:
            continue
        ttft_limit, tbt_limit = DEFAULT_SLA_THRESHOLDS[sla]
        met = np.count_nonzero(
            mask & (ttft <= ttft_limit) & (mean_tbt <= tbt_limit)
        )
        sla_attainment[sla] = met / total

    return ClusterReport(
        engines=num_engines,
        duration_s=duration,
        requests_completed=count,
        tokens_generated=total_tokens,
        throughput_tokens_per_s=(
            total_tokens / duration if duration > 0 else 0.0
        ),
        ttft_p50_s=_quantile(ttft, 0.5),
        ttft_p99_s=_quantile(ttft, 0.99),
        tbt_p50_s=_quantile(step_time, 0.5),
        tbt_p99_s=_quantile(step_time, 0.99),
        memory_bound_fraction=memory_bound_fraction,
        tier_bytes_read=tier_reads,
        tier_bytes_written=tier_writes,
        access_energy_j=access_energy,
        board_energy_j=board_energy,
        sla_attainment=sla_attainment,
        requests_failed=0,
        kv_recoveries=0,
        kv_recompute_tokens=0,
    )


def _step_index(output: np.ndarray) -> np.ndarray:
    """Flat ``[0..n_0-1, 0..n_1-1, ...]`` step offsets for each request."""
    total = int(output.sum())
    index = np.arange(total, dtype=np.float64)
    starts = np.repeat(np.cumsum(output) - output, output)
    return index - starts


def _jsq_replay(
    arrival: np.ndarray, departure_est: np.ndarray, num_engines: int
) -> np.ndarray:
    """Replay the cluster's join-shortest-queue dispatch.

    The DES dispatcher counts each engine's unfinished requests at every
    arrival (ties break toward the lowest engine index).  Here a
    request is "unfinished" while its estimated residence interval
    covers the arrival instant.
    """
    engine_of = np.zeros(arrival.size, dtype=np.int64)
    if num_engines == 1:
        return engine_of
    resident: List[List[float]] = [[] for _ in range(num_engines)]
    for i in np.argsort(arrival, kind="stable"):
        now = arrival[i]
        best, best_load = 0, None
        for e in range(num_engines):
            load = sum(1 for fin in resident[e] if fin > now)
            if best_load is None or load < best_load:
                best, best_load = e, load
        engine_of[i] = best
        resident[best].append(float(departure_est[i]))
    return engine_of


def _engine_geometry(
    dstart: np.ndarray,
    dlen: np.ndarray,
    prompt: np.ndarray,
    output: np.ndarray,
    engine_of: np.ndarray,
    num_engines: int,
    cap: int,
) -> Tuple[np.ndarray, np.ndarray, float, float, List]:
    """Sweep each engine's decode intervals ``[dstart, dstart + dlen)``.

    Returns ``(b_ctx, busy_union, peak, overflow, profiles)``:
    per-request realized mean batch (time-average concurrency over the
    request's own window, self included), per-engine busy-union
    durations, the peak concurrency across engines, the
    concurrency-time integral spent above ``cap`` (nonzero means the
    admission cap would have queued requests the fluid replay runs
    concurrently), and each engine's profile
    ``(boundaries, concurrency, ctx_const, ctx_slope)`` for point
    sampling — concurrency is a step function; the summed context of
    active requests is piecewise linear (each context grows one token
    per iteration), stored as per-segment ``const + slope * t``.
    """
    b_ctx = np.ones(dstart.size, dtype=np.float64)
    busy_union = np.zeros(num_engines, dtype=np.float64)
    peak = 0.0
    overflow = 0.0
    profiles: List = [None] * num_engines
    dend = dstart + dlen
    growth = output / np.maximum(dlen, 1e-300)  # tokens per second
    for e in range(num_engines):
        idx = np.flatnonzero(engine_of == e)
        if idx.size == 0:
            continue
        s, f = dstart[idx], dend[idx]
        bounds = np.concatenate([s, f])
        deltas = np.concatenate([np.ones(idx.size), -np.ones(idx.size)])
        # A request's context over its window is ~prompt + growth*(t-s):
        # accumulate the constant and slope parts at start, remove at end.
        const_part = prompt[idx] - growth[idx] * s
        const_deltas = np.concatenate([const_part, -const_part])
        slope_deltas = np.concatenate([growth[idx], -growth[idx]])
        order = np.argsort(bounds, kind="stable")
        t = bounds[order]
        conc = np.cumsum(deltas[order])
        ctx_const = np.cumsum(const_deltas[order])
        ctx_slope = np.cumsum(slope_deltas[order])
        profiles[e] = (t, conc, ctx_const, ctx_slope)
        seg = np.diff(t)
        if seg.size:
            live_conc = conc[:-1]
            busy_union[e] = float(seg[live_conc > 0.5].sum())
            overflow += float(
                (seg * np.maximum(live_conc - cap, 0.0)).sum()
            )
        peak = max(peak, float(conc.max()))
        # Cumulative ∫ c dt at each boundary; windows query it below.
        cum = np.concatenate([[0.0], np.cumsum(conc[:-1] * seg)])

        def integral(x: np.ndarray) -> np.ndarray:
            k = np.clip(np.searchsorted(t, x, side="right") - 1, 0, t.size - 1)
            return cum[k] + conc[k] * np.maximum(x - t[k], 0.0)

        window = f - s
        live = window > 0
        co_int = integral(f) - integral(s)
        b_ctx[idx[live]] = co_int[live] / window[live]
    return b_ctx, busy_union, peak, overflow, profiles


def _sample_profiles(
    flat_t: np.ndarray, engine_flat: np.ndarray, profiles: List
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate concurrency and summed-context profiles at given times."""
    conc_out = np.ones(flat_t.size, dtype=np.float64)
    ctx_out = np.zeros(flat_t.size, dtype=np.float64)
    for e, profile in enumerate(profiles):
        if profile is None:
            continue
        t, conc, ctx_const, ctx_slope = profile
        mask = engine_flat == e
        x = flat_t[mask]
        k = np.clip(np.searchsorted(t, x, side="right") - 1, 0, t.size - 1)
        conc_out[mask] = conc[k]
        ctx_out[mask] = ctx_const[k] + ctx_slope[k] * x
    return conc_out, ctx_out


def _admission_waits(
    arrival: np.ndarray,
    pre_time: np.ndarray,
    decode_sum: np.ndarray,
    output: np.ndarray,
    engine_of: np.ndarray,
    num_engines: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-request admission wait and prefill-preemption delays.

    ``wait``: time between arrival and prefill start — the tail of an
    earlier request's still-running prefill, plus (when the engine is
    decoding) the remainder of the in-flight iteration (~half a mean
    step).  ``ttft_delay``: prefill time of requests that arrive during
    this request's own prefill (the loop admits them all before the
    next decode iteration).  ``fin_delay``: prefill time of every
    request arriving before this one completes (each preempts one
    iteration-gap).
    """
    count = arrival.size
    wait = np.zeros(count, dtype=np.float64)
    ttft_delay = np.zeros(count, dtype=np.float64)
    fin_delay = np.zeros(count, dtype=np.float64)
    mean_step = decode_sum / np.maximum(output, 1)
    for e in range(num_engines):
        idx = np.flatnonzero(engine_of == e)
        if idx.size < 2:
            continue
        order = np.argsort(arrival[idx], kind="stable")
        idx = idx[order]
        a = arrival[idx]
        pre = pre_time[idx]
        # Tail of an in-flight earlier prefill at this arrival.
        prefill_end = a + pre
        prev_max = np.maximum.accumulate(prefill_end)
        w = np.zeros(idx.size, dtype=np.float64)
        w[1:] = np.maximum(prev_max[:-1] - a[1:], 0.0)
        # In-flight decode iteration residual: an arrival that lands
        # inside an earlier request's decode span waits ~half a step.
        dstart = a + w + pre
        dend = dstart + decode_sum[idx]
        busy_end = np.maximum.accumulate(dend)
        mid_decode = np.zeros(idx.size, dtype=bool)
        mid_decode[1:] = busy_end[:-1] > a[1:]
        w = w + np.where(mid_decode, 0.5 * mean_step[idx], 0.0)
        wait[idx] = w
        # Prefill preemptions: sum of pre over arrivals in a window.
        pre_cum = np.concatenate([[0.0], np.cumsum(pre)])
        lo = np.arange(1, idx.size + 1)  # strictly-after-self positions
        dstart = a + w + pre
        dend = dstart + decode_sum[idx]
        hi_first = np.searchsorted(a, dstart, side="left")
        hi_fin = np.searchsorted(a, dend, side="left")
        ttft_delay[idx] = pre_cum[np.maximum(hi_first, lo)] - pre_cum[lo]
        fin_delay[idx] = pre_cum[np.maximum(hi_fin, lo)] - pre_cum[lo]
    return wait, ttft_delay, fin_delay


def _check_kv_pool(
    accelerator: AcceleratorConfig,
    model: ModelConfig,
    placement: Mapping[str, str],
    prompt: np.ndarray,
    max_batch_size: int,
    admission_headroom_tokens: int = 128,
    tokens_per_page: int = 16,
) -> None:
    """Reject workloads the engine could never admit (it would raise)."""
    kv_tier = accelerator.tier(placement["kv"])
    reserved = 0
    if placement["weights"] == placement["kv"]:
        reserved += model.weights_bytes
    if placement["activations"] == placement["kv"]:
        reserved += model.activation_bytes(max_batch_size)
    capacity = kv_tier.capacity_bytes - reserved
    page_bytes = model.kv_bytes_per_token * tokens_per_page
    if capacity < page_bytes:
        raise UnsupportedScenario(
            f"no KV capacity on tier {kv_tier.name!r} after "
            f"weights/activations reservation"
        )
    total_pages = capacity // page_bytes
    need_tokens = int(prompt.max()) + admission_headroom_tokens
    need_pages = -(-need_tokens // tokens_per_page)
    if need_pages > total_pages:
        raise UnsupportedScenario(
            f"largest prompt ({int(prompt.max())} tokens) cannot fit the "
            f"KV pool ({total_pages} pages); the DES would deadlock too"
        )


def _empty_report(num_engines: int) -> ClusterReport:
    """What ``Cluster.run([])`` reports: zero work, NaN quantiles."""
    nan = float("nan")
    return ClusterReport(
        engines=num_engines,
        duration_s=0.0,
        requests_completed=0,
        tokens_generated=0,
        throughput_tokens_per_s=0.0,
        ttft_p50_s=nan,
        ttft_p99_s=nan,
        tbt_p50_s=nan,
        tbt_p99_s=nan,
        memory_bound_fraction=0.0,
        tier_bytes_read={},
        tier_bytes_written={},
        access_energy_j=0.0,
        board_energy_j=0.0,
        sla_attainment={},
        requests_failed=0,
        kv_recoveries=0,
        kv_recompute_tokens=0,
    )
