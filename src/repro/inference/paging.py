"""PagedAttention-style KV page allocation [22].

The paper leans on two properties of paged KV management: pages are
large ("typically over 10 vectors ... several MBs to 10s of MBs") and
read strictly in order with a *static* virtual-to-physical mapping —
which is why MRM can drop random access.

:class:`PagedAllocator` manages the physical page pool of one memory
tier; :class:`PageTable` is one context's ordered page list.  The
allocator supports reference-counted sharing so prefix caching [54] can
map the same physical pages into several contexts (copy-on-write never
happens for KV: pages are append-only, so sharing is read-only by
construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class OutOfPages(RuntimeError):
    """The physical pool is exhausted (admission control should have
    prevented this — or the caller must evict/offload)."""


class PagedAllocator:
    """Physical page pool with reference counting.

    Parameters
    ----------
    total_pages:
        Pool size (tier capacity / page size).
    page_bytes:
        Page size in bytes.
    """

    def __init__(self, total_pages: int, page_bytes: int) -> None:
        if total_pages < 1 or page_bytes < 1:
            raise ValueError("pool geometry must be >= 1")
        self.total_pages = total_pages
        self.page_bytes = page_bytes
        self._free: List[int] = list(range(total_pages - 1, -1, -1))
        self._refcount: Dict[int, int] = {}

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.total_pages - len(self._free)

    def utilization(self) -> float:
        return self.used_pages / self.total_pages

    def allocate(self) -> int:
        """Take one physical page (refcount 1)."""
        if not self._free:
            raise OutOfPages(
                f"no free pages ({self.total_pages} total, all in use)"
            )
        page = self._free.pop()
        self._refcount[page] = 1
        return page

    def share(self, page: int) -> int:
        """Add a reference to an allocated page (prefix sharing)."""
        if page not in self._refcount:
            raise KeyError(f"page {page} is not allocated")
        self._refcount[page] += 1
        return page

    def release(self, page: int) -> None:
        """Drop one reference; frees the page at zero."""
        count = self._refcount.get(page)
        if count is None:
            raise KeyError(f"page {page} is not allocated")
        if count == 1:
            del self._refcount[page]
            self._free.append(page)
        else:
            self._refcount[page] = count - 1

    def refcount(self, page: int) -> int:
        return self._refcount.get(page, 0)


@dataclass
class PageTable:
    """One context's ordered KV pages.

    ``tokens_per_page`` fixes how many token vectors fit one page; the
    mapping from token index to (page, slot) is static — once a vector
    is written its physical location never changes, the property that
    lets MRM use a static, predictable layout.
    """

    allocator: PagedAllocator
    tokens_per_page: int
    pages: List[int] = field(default_factory=list)
    tokens: int = 0
    shared_prefix_pages: int = 0  # leading pages mapped from another context

    def __post_init__(self) -> None:
        if self.tokens_per_page < 1:
            raise ValueError("tokens_per_page must be >= 1")

    @property
    def capacity_tokens(self) -> int:
        return len(self.pages) * self.tokens_per_page

    def pages_needed_for(self, new_tokens: int) -> int:
        """Pages that must be allocated to append ``new_tokens``."""
        if new_tokens < 0:
            raise ValueError("token count must be >= 0")
        total = self.tokens + new_tokens
        needed_pages = -(-total // self.tokens_per_page)  # ceil
        return max(0, needed_pages - len(self.pages))

    def append_tokens(self, new_tokens: int) -> int:
        """Append vectors for ``new_tokens`` tokens, allocating pages as
        needed.  Returns pages allocated.  Raises :class:`OutOfPages`
        without partial allocation (all-or-nothing)."""
        need = self.pages_needed_for(new_tokens)
        if need > self.allocator.free_pages:
            raise OutOfPages(
                f"need {need} pages, only {self.allocator.free_pages} free"
            )
        for _ in range(need):
            self.pages.append(self.allocator.allocate())
        self.tokens += new_tokens
        return need

    def map_shared_prefix(self, source: "PageTable", prefix_tokens: int) -> int:
        """Map the source's leading pages covering ``prefix_tokens``
        into this (empty) table.  Returns pages shared.

        Only whole pages are shared; the remainder of the prefix is the
        caller's to recompute/append.
        """
        if self.pages or self.tokens:
            raise RuntimeError("can only map a prefix into an empty table")
        if prefix_tokens < 0 or prefix_tokens > source.tokens:
            raise ValueError("prefix longer than the source context")
        whole_pages = prefix_tokens // self.tokens_per_page
        whole_pages = min(whole_pages, len(source.pages))
        for page in source.pages[:whole_pages]:
            self.pages.append(self.allocator.share(page))
        self.tokens = whole_pages * self.tokens_per_page
        self.shared_prefix_pages = whole_pages
        return whole_pages

    def free(self) -> int:
        """Release every page (end of context).  Returns pages released."""
        released = len(self.pages)
        for page in self.pages:
            self.allocator.release(page)
        self.pages = []
        self.tokens = 0
        self.shared_prefix_pages = 0
        return released

    def fragmentation_bytes(self) -> int:
        """Internal fragmentation: allocated-but-unused tail capacity."""
        if not self.pages:
            return 0
        unused_tokens = self.capacity_tokens - self.tokens
        bytes_per_token = self.allocator.page_bytes / self.tokens_per_page
        return int(unused_tokens * bytes_per_token)
