"""Serving sweeps with a DES and an analytic evaluation mode.

:func:`serve_point` is the pure point function (picklable, top level)
that :func:`repro.parallel.run_sweep` fans out: one serving scenario in,
one JSON-able result dict out.  Each point carries a
``mode: "des" | "analytic"`` field selecting the evaluator —

- ``"des"`` builds a :class:`~repro.inference.cluster.Cluster` on the
  discrete-event kernel and runs the trace to completion (exact);
- ``"analytic"`` evaluates the *same trace* through
  :func:`repro.inference.analytic.analytic_cluster_report`
  (closed-form, ~100-1000x faster);
- ``"auto"`` tries analytic first and falls back to the DES when the
  scenario is outside the analytic envelope
  (:class:`~repro.inference.analytic.UnsupportedScenario`), recording
  the fallback in the result row.  Explicit ``"analytic"`` stays
  strict so validity-envelope violations still fail loudly.

Both modes derive the trace from the point's sweep seed, so a DES sweep
and an analytic sweep at the same ``root_seed`` see identical request
streams — that is what makes :func:`cross_validate` an apples-to-apples
comparison, and it is how the cross-validation tests, the CI smoke grid
and ``python -m repro sweep`` are all driven.

The cross-validation contract: on :func:`cross_validation_grid` (pinned
low-to-moderate-load points inside the analytic validity envelope —
see ``docs/PERFORMANCE.md``), every metric in :data:`CROSS_VAL_METRICS`
agrees within :data:`CROSS_VAL_TOLERANCE` relative error.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.parallel import run_sweep

#: Evaluation modes a sweep point may select.  ``"auto"`` tries the
#: analytic evaluator first and falls back to the DES on
#: :class:`~repro.inference.analytic.UnsupportedScenario`; explicit
#: ``"analytic"`` stays strict (the error propagates).
SERVE_MODES = ("des", "analytic", "auto")

#: Metrics compared by :func:`cross_validate`, with the shared relative
#: tolerance.  Count metrics (requests, tokens) and KV byte traffic are
#: exact by construction; the timing-derived metrics are where the fluid
#: approximations earn (or lose) their keep.
CROSS_VAL_METRICS = (
    "requests_completed",
    "tokens_generated",
    "duration_s",
    "throughput_tokens_per_s",
    "ttft_p50_s",
    "tbt_p50_s",
    "tbt_p99_s",
    "access_energy_j",
    "board_energy_j",
    "memory_bound_fraction",
)
CROSS_VAL_TOLERANCE = 0.05

#: Defaults mirroring ``python -m repro serve``.
DEFAULT_POINT = {
    "mode": "des",
    "rate": 1.0,
    "duration": 30.0,
    "engines": 2,
    "tp": 4,
    "batch": 16,
    "model": "llama2-70b",
    "accelerator": "h100-80g",
}


def resolve_model(name: str):
    """Catalog lookup for a sweep/fleet model key (raises on unknown)."""
    from repro.workload.model import LLAMA2_13B, LLAMA2_70B, PHI_3_MINI

    models = {
        "llama2-70b": LLAMA2_70B,
        "llama2-13b": LLAMA2_13B,
        "phi-3-mini": PHI_3_MINI,
    }
    try:
        return models[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; known: {', '.join(sorted(models))}"
        ) from None


def resolve_accelerator(name: str):
    """Catalog lookup for a sweep/fleet accelerator key."""
    from repro.inference.accelerator import A100_80G, B200, H100_80G

    accelerators = {
        "a100-80g": A100_80G,
        "h100-80g": H100_80G,
        "b200": B200,
    }
    try:
        return accelerators[name]
    except KeyError:
        raise ValueError(
            f"unknown accelerator {name!r}; known: "
            f"{', '.join(sorted(accelerators))}"
        ) from None


def _resolve(point: Mapping[str, Any]):
    from repro.inference.cluster import tensor_parallel_group

    merged = dict(DEFAULT_POINT, **point)
    mode = merged["mode"]
    if mode not in SERVE_MODES:
        raise ValueError(
            f"unknown serve mode {mode!r}; known: {', '.join(SERVE_MODES)}"
        )
    model = resolve_model(merged["model"])
    accelerator = tensor_parallel_group(
        resolve_accelerator(merged["accelerator"]), int(merged["tp"])
    )
    return merged, model, accelerator


def report_to_dict(report) -> Dict[str, Any]:
    """Flatten a :class:`ClusterReport` into a JSON-able dict (the
    cacheable/picklable sweep value; SLA keys become strings)."""
    return {
        "engines": report.engines,
        "duration_s": report.duration_s,
        "requests_completed": report.requests_completed,
        "tokens_generated": report.tokens_generated,
        "throughput_tokens_per_s": report.throughput_tokens_per_s,
        "ttft_p50_s": report.ttft_p50_s,
        "ttft_p99_s": report.ttft_p99_s,
        "tbt_p50_s": report.tbt_p50_s,
        "tbt_p99_s": report.tbt_p99_s,
        "memory_bound_fraction": report.memory_bound_fraction,
        "tier_bytes_read": dict(sorted(report.tier_bytes_read.items())),
        "tier_bytes_written": dict(sorted(report.tier_bytes_written.items())),
        "access_energy_j": report.access_energy_j,
        "board_energy_j": report.board_energy_j,
        "sla_attainment": {
            sla.value: value
            for sla, value in sorted(
                (report.sla_attainment or {}).items(), key=lambda kv: kv[0].value
            )
        },
        "requests_failed": report.requests_failed,
        "availability": report.availability,
        "tokens_per_joule": report.tokens_per_joule,
    }


def serve_point(point: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """Evaluate one serving scenario; pure in ``(point, seed)``.

    The trace seed derives from the sweep seed, so the same
    ``(grid index, root_seed)`` sees the same request stream in both
    modes.
    """
    from repro.inference.analytic import (
        UnsupportedScenario,
        analytic_cluster_report,
    )
    from repro.inference.cluster import Cluster
    from repro.sim import Simulator
    from repro.workload.requests import PoissonArrivals
    from repro.workload.traces import generate_trace, replay_trace

    merged, model, accelerator = _resolve(point)
    trace_seed = int(seed.generate_state(1, dtype=np.uint32)[0])
    trace = generate_trace(
        model,
        arrivals=PoissonArrivals(float(merged["rate"])),
        duration_s=float(merged["duration"]),
        seed=trace_seed,
    )
    mode = merged["mode"]
    report = None
    fallback = False
    if mode in ("analytic", "auto"):
        try:
            report = analytic_cluster_report(
                accelerator,
                model,
                replay_trace(trace),
                num_engines=int(merged["engines"]),
                max_batch_size=int(merged["batch"]),
            )
            evaluated = "analytic"
        except UnsupportedScenario:
            if mode == "analytic":
                raise  # explicit analytic stays strict
            fallback = True
    if report is None:
        sim = Simulator()
        cluster = Cluster(
            sim,
            accelerator,
            model,
            num_engines=int(merged["engines"]),
            max_batch_size=int(merged["batch"]),
        )
        report = cluster.run(replay_trace(trace))
        evaluated = "des"
    result = report_to_dict(report)
    # ``mode`` reports the evaluator that actually ran; auto points also
    # carry the request and whether the analytic evaluator declined.
    result["mode"] = evaluated
    if mode == "auto":
        result["requested_mode"] = "auto"
        result["analytic_fallback"] = fallback
    return result


def run_serve_sweep(
    points: Sequence[Mapping[str, Any]],
    root_seed: int = 0,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
    cache=None,
) -> List[dict]:
    """Sweep :func:`serve_point` over ``points`` (grid order).

    ``mode`` overrides every point's mode field — the one-liner for
    "re-run this grid analytically".
    """
    if mode is not None:
        if mode not in SERVE_MODES:
            raise ValueError(
                f"unknown serve mode {mode!r}; known: {', '.join(SERVE_MODES)}"
            )
        points = [dict(p, mode=mode) for p in points]
    return run_sweep(
        serve_point, points, root_seed=root_seed, workers=workers, cache=cache
    )


def cross_validation_grid(tiny: bool = False) -> List[dict]:
    """The pinned DES-vs-analytic grid.

    Points sit inside the analytic validity envelope (per-engine offered
    load under ~0.5, batches well below the cap) across two models, two
    accelerators and 1-2 engines.  The tiny variant is the CI smoke
    grid: one small point per model.
    """
    if tiny:
        return [
            {"rate": 0.4, "duration": 20.0, "engines": 1, "tp": 4,
             "batch": 16, "model": "llama2-13b", "accelerator": "a100-80g"},
            {"rate": 0.5, "duration": 15.0, "engines": 2, "tp": 4,
             "batch": 16, "model": "llama2-70b", "accelerator": "h100-80g"},
        ]
    return [
        {"rate": 0.4, "duration": 60.0, "engines": 1, "tp": 4,
         "batch": 16, "model": "llama2-70b", "accelerator": "h100-80g"},
        {"rate": 1.0, "duration": 60.0, "engines": 2, "tp": 4,
         "batch": 16, "model": "llama2-70b", "accelerator": "h100-80g"},
        {"rate": 2.0, "duration": 60.0, "engines": 4, "tp": 4,
         "batch": 16, "model": "llama2-70b", "accelerator": "h100-80g"},
        {"rate": 0.5, "duration": 60.0, "engines": 1, "tp": 8,
         "batch": 16, "model": "llama2-70b", "accelerator": "a100-80g"},
        {"rate": 1.0, "duration": 60.0, "engines": 1, "tp": 2,
         "batch": 16, "model": "llama2-13b", "accelerator": "a100-80g"},
        {"rate": 2.0, "duration": 60.0, "engines": 2, "tp": 2,
         "batch": 16, "model": "llama2-13b", "accelerator": "h100-80g"},
    ]


def _relative_error(reference: float, candidate: float) -> float:
    if reference == candidate:
        return 0.0  # covers exact zeros
    denominator = max(abs(reference), 1e-300)
    return abs(candidate - reference) / denominator


def cross_validate(
    points: Optional[Sequence[Mapping[str, Any]]] = None,
    root_seed: int = 0,
    workers: Optional[int] = None,
    metrics: Sequence[str] = CROSS_VAL_METRICS,
) -> List[dict]:
    """Run each point through both modes and compare.

    Returns one row per point: the point, per-metric
    ``{des, analytic, rel_err}`` triples, and ``max_rel_err``.
    """
    points = list(points if points is not None else cross_validation_grid())
    des = run_serve_sweep(points, root_seed=root_seed, workers=workers,
                          mode="des")
    analytic = run_serve_sweep(points, root_seed=root_seed, workers=workers,
                               mode="analytic")
    rows: List[dict] = []
    for point, d, a in zip(points, des, analytic):
        comparison = {
            name: {
                "des": d[name],
                "analytic": a[name],
                "rel_err": _relative_error(d[name], a[name]),
            }
            for name in metrics
        }
        rows.append(
            {
                "point": dict(point),
                "metrics": comparison,
                "max_rel_err": max(
                    entry["rel_err"] for entry in comparison.values()
                ),
            }
        )
    return rows
