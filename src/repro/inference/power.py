"""Power-aware serving: DVFS under a rack power cap.

Section 4 lists "power-aware scheduling [46]" (TAPAS) among the OS
mechanisms of the emerging rack-scale inference OS, and Section 2.1
notes "the power density of the infrastructure is very high and
continues to grow, increasing the need for every Watt to be spent on
useful work".

This module makes the interaction between power caps and memory
technology quantitative:

- :class:`PowerModel` — steady-state power of one serving machine:
  compute die (idle + utilization-dependent dynamic, DVFS-scalable) plus
  memory (access power from byte rates, refresh power from the tier's
  technology);
- :func:`best_frequency_under_cap` — the classic memory-bound DVFS
  insight: decode barely uses the compute die, so clocking it down
  costs little throughput while freeing real watts;
- :func:`power_capped_throughput` — tokens/s attainable under a cap for
  a given tier set.  MRM enters through the refresh term: a refresh-free
  memory tier leaves more of the cap for useful work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.inference.accelerator import AcceleratorConfig
from repro.inference.roofline import RooflineModel
from repro.tiering.tiers import MemoryTier
from repro.units import Ratio, Watts
from repro.workload.model import ModelConfig
from repro.workload.phases import decode_step_traffic


@dataclass(frozen=True)
class PowerModel:
    """Steady-state power of one serving machine.

    Attributes
    ----------
    accelerator:
        Compute configuration (board power = compute-die budget).
    idle_fraction:
        Fraction of board power drawn at zero utilization.
    frequency_power_exponent:
        Dynamic compute power scales as ``f**exponent`` under DVFS
        (voltage scaling makes this ~2-3; 2.5 is a common fit).
    """

    accelerator: AcceleratorConfig
    idle_fraction: Ratio = 0.25
    frequency_power_exponent: float = 2.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_fraction < 1.0:
            raise ValueError("idle fraction must be in [0, 1)")
        if self.frequency_power_exponent < 1.0:
            raise ValueError("power exponent must be >= 1")

    def compute_power_w(self, utilization: Ratio, frequency: Ratio = 1.0) -> Watts:
        """Compute-die power at a given utilization and DVFS point."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization in [0, 1]")
        if not 0.0 < frequency <= 1.0:
            raise ValueError("frequency in (0, 1]")
        board = self.accelerator.board_power_w
        idle = board * self.idle_fraction
        dynamic = (
            board
            * (1.0 - self.idle_fraction)
            * utilization
            * frequency**self.frequency_power_exponent
        )
        return idle + dynamic

    def memory_power_w(
        self,
        tiers: Sequence[MemoryTier],
        read_rates: Sequence[float],
        write_rates: Sequence[float],
    ) -> Watts:
        """Memory power: per-tier access power plus refresh power."""
        if not (len(tiers) == len(read_rates) == len(write_rates)):
            raise ValueError("one rate pair per tier")
        total = 0.0
        for tier, reads, writes in zip(tiers, read_rates, write_rates):
            if reads < 0 or writes < 0:
                raise ValueError("rates must be >= 0")
            total += tier.read_energy_j(reads) + tier.write_energy_j(writes)
            total += tier.refresh_power_w()
        return total


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS solution under a power cap."""

    frequency: Ratio
    tokens_per_s: float
    compute_power_w: Watts
    memory_power_w: Watts

    @property
    def total_power_w(self) -> Watts:
        return self.compute_power_w + self.memory_power_w

    @property
    def tokens_per_joule(self) -> float:
        if self.total_power_w <= 0:
            return 0.0
        return self.tokens_per_s / self.total_power_w


def _decode_throughput_at_frequency(
    accelerator: AcceleratorConfig,
    model: ModelConfig,
    context_tokens: int,
    batch_size: int,
    frequency: float,
    tier_name: str,
) -> Tuple[float, float]:
    """(tokens/s, compute utilization) of steady decode at a DVFS point."""
    roofline = RooflineModel(accelerator)
    traffic = decode_step_traffic(model, context_tokens, batch_size)
    compute_time = traffic.flops / (accelerator.effective_flops * frequency)
    tier = accelerator.tier(tier_name)
    memory_time = (
        traffic.bytes_read
        / (tier.read_bandwidth * accelerator.bandwidth_efficiency)
        + traffic.bytes_written
        / (tier.write_bandwidth * accelerator.bandwidth_efficiency)
    )
    step = max(compute_time, memory_time)
    utilization = compute_time / step
    return batch_size / step, utilization


def best_frequency_under_cap(
    power_model: PowerModel,
    model: ModelConfig,
    tiers: Sequence[MemoryTier],
    cap_w: Watts,
    context_tokens: int = 2048,
    batch_size: int = 16,
    tier_name: str = "hbm",
    frequencies: Optional[Sequence[float]] = None,
) -> Optional[OperatingPoint]:
    """Highest-throughput DVFS point whose total power fits the cap.

    Memory power is charged at the achieved byte rates (they scale with
    throughput); refresh power is constant per tier.  Returns ``None``
    when even the lowest frequency cannot fit the cap (the machine
    cannot run this workload at this budget).
    """
    if cap_w <= 0:
        raise ValueError("cap must be positive")
    accelerator = power_model.accelerator
    traffic = decode_step_traffic(model, context_tokens, batch_size)
    frequencies = frequencies or [f / 20.0 for f in range(20, 4, -1)]
    best: Optional[OperatingPoint] = None
    for frequency in frequencies:
        tokens_per_s, utilization = _decode_throughput_at_frequency(
            accelerator, model, context_tokens, batch_size, frequency,
            tier_name,
        )
        steps_per_s = tokens_per_s / batch_size
        read_rate = traffic.bytes_read * steps_per_s
        write_rate = traffic.bytes_written * steps_per_s
        # Route all traffic over the named tier; others only refresh.
        read_rates = [
            read_rate if tier.name == tier_name else 0.0 for tier in tiers
        ]
        write_rates = [
            write_rate if tier.name == tier_name else 0.0 for tier in tiers
        ]
        compute = power_model.compute_power_w(utilization, frequency)
        memory = power_model.memory_power_w(tiers, read_rates, write_rates)
        if compute + memory > cap_w:
            continue
        point = OperatingPoint(
            frequency=frequency,
            tokens_per_s=tokens_per_s,
            compute_power_w=compute,
            memory_power_w=memory,
        )
        if best is None or point.tokens_per_s > best.tokens_per_s:
            best = point
    return best


def power_capped_throughput(
    power_model: PowerModel,
    model: ModelConfig,
    tiers: Sequence[MemoryTier],
    cap_w: Watts,
    **kwargs,
) -> float:
    """Tokens/s under the cap (0.0 when infeasible)."""
    point = best_frequency_under_cap(power_model, model, tiers, cap_w, **kwargs)
    return point.tokens_per_s if point is not None else 0.0
