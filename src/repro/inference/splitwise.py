"""Phase-split serving (Splitwise [37]).

The paper's workload numbers come from Splitwise, which splits serving
across machine pools: *prefill machines* run the compute-bound prompt
phase, then ship the prompt's KV cache over the interconnect to *decode
machines* that run the memory-bound token loop.  This module implements
that architecture on the DES kernel so the reproduction can measure the
phase asymmetry the paper leans on (and so phase-splitting itself can
be compared against mixed serving, ablation A5).

Components:

- :class:`PrefillPool` — machines that only prefill: requests queue
  FIFO, each runs its prompt at roofline speed, then the KV transfer to
  the chosen decode machine is simulated at ``interconnect_bandwidth``.
- :class:`DecodePool` — machines that only decode: continuous batching
  over transferred contexts.
- :class:`SplitwiseCluster` — wires the two pools, dispatches
  join-shortest-queue in each, and reports combined metrics
  (:class:`SplitReport`), including per-pool utilization and the KV
  bytes moved across the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, List, Optional

from repro.inference.accelerator import AcceleratorConfig
from repro.inference.kvcache import KVCacheManager
from repro.inference.roofline import RooflineModel
from repro.sim import MetricRegistry, Simulator, Timeout
from repro.workload.model import ModelConfig
from repro.workload.phases import decode_step_traffic_batch, prefill_traffic
from repro.workload.requests import InferenceRequest


@dataclass
class _TransferredContext:
    """A prefilled context handed to a decode machine."""

    request: InferenceRequest
    prefill_done_at: float
    arrived_at_decode: float
    generated: int = 0
    first_token_at: Optional[float] = None

    @property
    def context_tokens(self) -> int:
        return self.request.prompt_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


class PrefillMachine:
    """One prefill-only machine: FIFO prompt processing + KV push."""

    def __init__(
        self,
        sim: Simulator,
        accelerator: AcceleratorConfig,
        model: ModelConfig,
        cluster: "SplitwiseCluster",
        name: str,
    ) -> None:
        self.sim = sim
        self.roofline = RooflineModel(accelerator)
        self.model = model
        self.cluster = cluster
        self.name = name
        self.queue: List[InferenceRequest] = []
        self.busy_time = 0.0
        self._wakeup = sim.event(name=f"{name}-wakeup")
        self._draining = False
        sim.spawn(self._loop(), name=name)

    def submit(self, request: InferenceRequest) -> None:
        self.queue.append(request)
        self._wake()

    def drain(self) -> None:
        self._draining = True
        self._wake()

    def _wake(self) -> None:
        if not self._wakeup.fired and not self._wakeup.scheduled:
            self.sim.trigger(self._wakeup)

    @property
    def load(self) -> int:
        return len(self.queue)

    def _loop(self) -> Generator:
        while True:
            if not self.queue:
                if self._draining:
                    return
                yield self._wakeup
                self._wakeup = self.sim.event(name=f"{self.name}-wakeup")
                continue
            request = self.queue.pop(0)
            traffic = prefill_traffic(self.model, request.prompt_tokens)
            timing = self.roofline.time_step(
                traffic.flops,
                {"hbm": traffic.bytes_read},
                {"hbm": traffic.bytes_written},
            )
            self.busy_time += timing.duration_s
            yield Timeout(timing.duration_s)
            # Ship the KV cache to the least-loaded decode machine.
            kv_bytes = self.model.kv_cache_bytes(request.prompt_tokens)
            transfer_s = kv_bytes / self.cluster.interconnect_bandwidth
            self.cluster.metrics.counter("kv_transfer_bytes").add(kv_bytes)
            yield Timeout(transfer_s)
            self.cluster.deliver_to_decode(request, self.sim.now)


class DecodeMachine:
    """One decode-only machine: continuous batching over contexts."""

    def __init__(
        self,
        sim: Simulator,
        accelerator: AcceleratorConfig,
        model: ModelConfig,
        cluster: "SplitwiseCluster",
        max_batch_size: int,
        name: str,
    ) -> None:
        self.sim = sim
        self.roofline = RooflineModel(accelerator)
        self.model = model
        self.cluster = cluster
        self.max_batch_size = max_batch_size
        self.name = name
        kv_capacity = (
            accelerator.tier("hbm").capacity_bytes - model.weights_bytes
        )
        if kv_capacity <= 0:
            raise ValueError(f"{name}: weights do not fit the decode machine")
        self.kv = KVCacheManager(model, kv_capacity)
        self.pending: List[_TransferredContext] = []
        self.running: List[_TransferredContext] = []
        self.busy_time = 0.0
        self._wakeup = sim.event(name=f"{name}-wakeup")
        self._draining = False
        sim.spawn(self._loop(), name=name)

    def submit(self, context: _TransferredContext) -> None:
        self.pending.append(context)
        self._wake()

    def drain(self) -> None:
        self._draining = True
        self._wake()

    def _wake(self) -> None:
        if not self._wakeup.fired and not self._wakeup.scheduled:
            self.sim.trigger(self._wakeup)

    @property
    def load(self) -> int:
        return len(self.pending) + len(self.running)

    def _admit(self) -> None:
        while self.pending and len(self.running) < self.max_batch_size:
            context = self.pending[0]
            if not self.kv.can_admit(context.request.prompt_tokens, 128):
                break
            self.pending.pop(0)
            self.kv.register(
                context.request.request_id, context.request.prompt_tokens
            )
            self.running.append(context)

    def _loop(self) -> Generator:
        metrics = self.cluster.metrics
        while True:
            self._admit()
            if not self.running:
                if self._draining and not self.pending:
                    return
                if self.pending:
                    raise RuntimeError(
                        f"{self.name}: contexts stuck unadmitted (KV pool "
                        f"too small for the prompt)"
                    )
                yield self._wakeup
                self._wakeup = self.sim.event(name=f"{self.name}-wakeup")
                continue
            lengths = [c.context_tokens for c in self.running]
            traffic = decode_step_traffic_batch(self.model, lengths)
            timing = self.roofline.time_step(
                traffic.flops,
                {"hbm": traffic.bytes_read},
                {"hbm": traffic.bytes_written},
            )
            self.busy_time += timing.duration_s
            yield Timeout(timing.duration_s)
            now = self.sim.now
            finished: List[_TransferredContext] = []
            self.kv.append_batch([c.request.request_id for c in self.running])
            for context in self.running:
                context.generated += 1
                metrics.counter("tokens_generated").add(1)
                metrics.histogram("tbt_s").observe(timing.duration_s)
                if context.first_token_at is None:
                    context.first_token_at = now
                    metrics.histogram("ttft_s").observe(
                        now - context.request.arrival_time
                    )
                if context.done:
                    finished.append(context)
            for context in finished:
                self.running.remove(context)
                self.kv.release(context.request.request_id)
                metrics.counter("requests_completed").add(1)
                metrics.histogram("request_latency_s").observe(
                    now - context.request.arrival_time
                )


@dataclass
class SplitReport:
    """Results of one phase-split run."""

    requests_completed: int
    tokens_generated: int
    duration_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tbt_p50_s: float
    kv_transfer_bytes: float
    prefill_utilization: float
    decode_utilization: float

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.tokens_generated / self.duration_s


class SplitwiseCluster:
    """Prefill pool + decode pool + interconnect."""

    def __init__(
        self,
        sim: Simulator,
        accelerator: AcceleratorConfig,
        model: ModelConfig,
        num_prefill: int = 1,
        num_decode: int = 1,
        max_batch_size: int = 16,
        interconnect_bandwidth: float = 100e9,  # ~800 Gb/s fabric
    ) -> None:
        if num_prefill < 1 or num_decode < 1:
            raise ValueError("need at least one machine per pool")
        if interconnect_bandwidth <= 0:
            raise ValueError("interconnect bandwidth must be positive")
        self.sim = sim
        self.model = model
        self.interconnect_bandwidth = interconnect_bandwidth
        self.metrics = MetricRegistry()
        self.prefill_pool = [
            PrefillMachine(sim, accelerator, model, self, f"prefill-{i}")
            for i in range(num_prefill)
        ]
        self.decode_pool = [
            DecodeMachine(
                sim, accelerator, model, self, max_batch_size, f"decode-{i}"
            )
            for i in range(num_decode)
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        machine = min(self.prefill_pool, key=lambda m: (m.load, m.name))
        machine.submit(request)

    def deliver_to_decode(self, request: InferenceRequest, now: float) -> None:
        context = _TransferredContext(
            request=request, prefill_done_at=now, arrived_at_decode=now
        )
        machine = min(self.decode_pool, key=lambda m: (m.load, m.name))
        machine.submit(context)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, requests: Iterable[InferenceRequest]) -> SplitReport:
        submitted = 0
        for request in requests:
            self.sim.schedule_at(
                request.arrival_time,
                lambda _ev, r=request: self.submit(r),
            )
            submitted += 1
        self.sim.run()
        for machine in self.prefill_pool:
            machine.drain()
        self.sim.run()
        for machine in self.decode_pool:
            machine.drain()
        self.sim.run()
        completed = int(self.metrics.counter("requests_completed").value)
        if completed != submitted:
            raise RuntimeError(
                f"{submitted - completed} requests never completed"
            )
        return self.report()

    def report(self) -> SplitReport:
        metrics = self.metrics
        duration = self.sim.now

        def q(name: str, quantile: float) -> float:
            value = metrics.histogram(name).quantile(quantile)
            return float("nan") if value is None else value

        prefill_busy = sum(m.busy_time for m in self.prefill_pool)
        decode_busy = sum(m.busy_time for m in self.decode_pool)
        return SplitReport(
            requests_completed=int(
                metrics.counter("requests_completed").value
            ),
            tokens_generated=int(metrics.counter("tokens_generated").value),
            duration_s=duration,
            ttft_p50_s=q("ttft_s", 0.5),
            ttft_p99_s=q("ttft_s", 0.99),
            tbt_p50_s=q("tbt_s", 0.5),
            kv_transfer_bytes=metrics.counter("kv_transfer_bytes").value,
            prefill_utilization=(
                prefill_busy / (duration * len(self.prefill_pool))
                if duration
                else 0.0
            ),
            decode_utilization=(
                decode_busy / (duration * len(self.decode_pool))
                if duration
                else 0.0
            ),
        )
