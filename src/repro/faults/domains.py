"""Correlated fault domains: the failure topology above single devices.

PR 3's fault layer draws *independent* per-device timelines.  Real
datacenter failures are correlated: one bank-group peripheral takes out
several banks, one engine crash loses every resident KV context at
once, one rack power feed drops every engine behind it.  This module
models that hierarchy explicitly —

    device  →  bank group  →  engine  →  rack / power domain

— as a list of :class:`FaultDomain` entries in a :class:`FaultTopology`.
A domain is a named blast radius: when it is struck, **every member**
receives a fault event at the same simulated instant.  The expansion is
pure arithmetic on the strike's frozen magnitude (no fresh RNG draws),
so a correlated schedule stays a pure function of
``(topology, rates, horizon, seed)`` — the property
:func:`repro.faults.schedule.generate_correlated_schedule` guarantees
and ``tests/faults/test_domains.py`` asserts.

Domain levels and the member-event kind a strike expands into:

| level | strike means | member events |
|---|---|---|
| ``bank-group`` | a shared peripheral (wordline driver, sense-amp stripe) dies | one ``BANK_FAILURE`` per member bank |
| ``engine`` | a serving engine crashes mid-decode | one ``ENGINE_CRASH`` for the engine |
| ``power`` | a rack/power feed drops | one ``ENGINE_CRASH`` per member engine, after a ``DOMAIN_POWER_LOSS`` marker |

Member identifiers are plain strings: engine names for serving-level
domains (matched against ``InferenceEngine.name``), device/bank labels
for device-level ones (the controller injector maps a ``BANK_FAILURE``
member event onto a concrete zone via its magnitude, as before).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.faults.events import FaultKind

#: Recognised domain levels, outermost last.
DOMAIN_LEVELS = ("bank-group", "engine", "power")

#: Member-event kind each level's strike expands into.
LEVEL_MEMBER_KIND = {
    "bank-group": FaultKind.BANK_FAILURE,
    "engine": FaultKind.ENGINE_CRASH,
    "power": FaultKind.ENGINE_CRASH,
}

#: Conjugate golden ratio: the low-discrepancy increment used to derive
#: per-member magnitudes from one frozen strike draw.  Provenance: the
#: standard Weyl-sequence constant (sqrt(5)-1)/2.
_GOLDEN = 0.6180339887498949


def spread_magnitude(magnitude: float, member_index: int) -> float:
    """Derive member ``i``'s magnitude from the strike's frozen draw.

    A Weyl sequence seeded at the strike magnitude: member ``i`` gets
    ``frac(magnitude + (i + 1) * golden)``.  Deterministic, in
    ``[0, 1)``, and well-spread across members so one strike does not
    make every member pick the same victim index.
    """
    value = (magnitude + (member_index + 1) * _GOLDEN) % 1.0
    # Guard the half-open interval against float round-up.
    return min(value, 1.0 - 1e-12)


@dataclass(frozen=True)
class FaultDomain:
    """One named blast radius in the failure topology.

    Attributes
    ----------
    name:
        Unique domain identifier (``"pd0"``, ``"bg0/dev0"``...).
    level:
        One of :data:`DOMAIN_LEVELS`; selects the member-event kind.
    members:
        Identifiers struck together — engine names for serving levels,
        device/bank labels for ``bank-group``.
    """

    name: str
    level: str
    members: Tuple[str, ...]

    def member_kind(self) -> FaultKind:
        return LEVEL_MEMBER_KIND[self.level]


@dataclass(frozen=True)
class FaultTopology:
    """The full domain list, in declaration order (the draw order).

    Construct directly or via :func:`cluster_topology`; call
    :meth:`validate` (the schedule generator does) before use —
    malformed topologies raise ``ValueError`` with a one-line message
    the CLI reports as ``error: ...`` with exit 2.
    """

    domains: Tuple[FaultDomain, ...]

    def validate(self) -> "FaultTopology":
        if not self.domains:
            raise ValueError("topology has no fault domains")
        seen: Dict[str, int] = {}
        for domain in self.domains:
            if not domain.name:
                raise ValueError("fault domain with an empty name")
            if domain.name in seen:
                raise ValueError(f"duplicate fault domain {domain.name!r}")
            seen[domain.name] = 1
            if domain.level not in DOMAIN_LEVELS:
                raise ValueError(
                    f"unknown domain level {domain.level!r} for "
                    f"{domain.name!r}; known: {', '.join(DOMAIN_LEVELS)}"
                )
            if not domain.members:
                raise ValueError(f"fault domain {domain.name!r} has no members")
            if len(set(domain.members)) != len(domain.members):
                raise ValueError(
                    f"fault domain {domain.name!r} lists a member twice"
                )
        return self

    def domain(self, name: str) -> FaultDomain:
        for domain in self.domains:
            if domain.name == name:
                return domain
        raise KeyError(f"no fault domain named {name!r}")

    def engines(self) -> List[str]:
        """Every engine name reachable from engine/power domains, in
        first-mention order (deterministic; never set order)."""
        names: List[str] = []
        for domain in self.domains:
            if domain.level not in ("engine", "power"):
                continue
            for member in domain.members:
                if member not in names:
                    names.append(member)
        return names


def cluster_topology(
    num_engines: int,
    engines_per_domain: int = 2,
    banks_per_group: int = 0,
    name_prefix: str = "engine-",
) -> FaultTopology:
    """The standard serving topology: one ``engine`` domain per engine,
    engines grouped round-robin into ``power`` domains, plus optional
    device-level ``bank-group`` domains.

    Engine names follow the :class:`~repro.inference.cluster.Cluster`
    convention (``engine-0``, ``engine-1``...), so the topology lines up
    with a cluster of the same size without extra wiring.
    """
    if num_engines < 1:
        raise ValueError("topology needs at least one engine")
    if engines_per_domain < 1:
        raise ValueError("engines_per_domain must be >= 1")
    if banks_per_group < 0:
        raise ValueError("banks_per_group must be >= 0")
    engine_names = [f"{name_prefix}{i}" for i in range(num_engines)]
    domains: List[FaultDomain] = [
        FaultDomain(name=name, level="engine", members=(name,))
        for name in engine_names
    ]
    num_power = math.ceil(num_engines / engines_per_domain)
    for p in range(num_power):
        members = tuple(
            engine_names[p * engines_per_domain:(p + 1) * engines_per_domain]
        )
        domains.append(FaultDomain(name=f"pd{p}", level="power", members=members))
    if banks_per_group:
        domains.append(
            FaultDomain(
                name="bg0",
                level="bank-group",
                members=tuple(f"bank{i}" for i in range(banks_per_group)),
            )
        )
    return FaultTopology(domains=tuple(domains)).validate()


#: Per-domain strike rates (strikes per simulated second), keyed by
#: domain name.  Missing domains mean rate 0.
DomainRates = Mapping[str, float]


def validate_domain_rates(
    topology: FaultTopology, rates: DomainRates
) -> Dict[str, float]:
    """Check strike rates against a topology; returns a plain dict.

    Rejects (one-line ``ValueError``, the PR 3 CLI contract): rates for
    domains the topology does not define, negative rates, and
    non-finite (NaN/inf) rates.
    """
    known = {domain.name for domain in topology.domains}
    checked: Dict[str, float] = {}
    for name in rates:  # dict order: caller-declared, deterministic
        value = float(rates[name])
        if name not in known:
            raise ValueError(
                f"strike rate for unknown fault domain {name!r}"
            )
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"non-finite strike rate for domain {name!r}")
        if value < 0:
            raise ValueError(f"negative strike rate for domain {name!r}")
        checked[name] = value
    return checked
