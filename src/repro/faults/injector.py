"""Applying fault schedules to the stack.

Two drivers, matching the two experiment families:

- :class:`ControllerFaultInjector` — applies device-level events
  (retention violations, bursts, bank/device failures) to one
  :class:`~repro.core.controller.MRMController` and its device.  It is
  clockless like the controller: the harness calls
  :meth:`~ControllerFaultInjector.apply_until` with the current time.
- :func:`spawn_kv_faults` — a simulation process that fires KV-loss
  events into a set of :class:`~repro.inference.engine.InferenceEngine`
  instances at their scheduled times.

Both record every applied event and its outcome in a :class:`FaultLog`;
``FaultLog.fingerprint()`` digests (time, seq, kind, outcome) so tests
can assert that the *effects*, not just the schedule, are bit-identical
across serial and parallel execution.

Victim selection is pure arithmetic on each event's frozen
``magnitude`` — sorted candidate lists indexed by ``int(magnitude *
len)`` — so the injector consumes no randomness of its own.  The only
RNG in the pipeline is the miscorrection draw inside the ECC decode
path, fed by the harness's seeded generator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from repro.core.controller import MRMController
from repro.core.zones import BlockState
from repro.faults.events import FaultEvent, FaultKind
from repro.faults.schedule import FaultSchedule
from repro.inference.engine import InferenceEngine
from repro.sim import Process, Simulator, Timeout


@dataclass
class FaultLog:
    """What the injector did: one entry per applied event.

    When constructed with an observability registry, every recorded
    entry also bumps a ``faults.applied_total{kind=...,outcome=...}``
    counter — the per-kind/per-outcome breakdown the log itself only
    yields by scanning.
    """

    entries: List[dict] = field(default_factory=list)
    obs: object = None

    def record(self, event: FaultEvent, outcome: str, detail: int = 0) -> None:
        self.entries.append(
            {
                "time_s": event.time_s,
                "seq": event.seq,
                "kind": event.kind.value,
                "outcome": outcome,
                "detail": detail,
            }
        )
        if self.obs is not None and self.obs.enabled:
            self.obs.counter(
                "faults.applied_total", kind=event.kind.value, outcome=outcome
            ).add()

    def fingerprint(self) -> str:
        """Digest of the applied timeline *and its effects*."""
        payload = json.dumps(
            self.entries, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def count(self, outcome: str) -> int:
        return sum(1 for e in self.entries if e["outcome"] == outcome)


def _pick(magnitude: float, count: int) -> int:
    """Map a frozen uniform draw onto an index in ``[0, count)``."""
    index = int(magnitude * count)
    # magnitude < 1.0 by construction, but guard the boundary anyway.
    return min(index, count - 1)


#: Kinds the controller injector must leave to the serving layer.
_SERVING_KINDS = (
    FaultKind.KV_LOSS,
    FaultKind.ENGINE_CRASH,
    FaultKind.DOMAIN_POWER_LOSS,
)


class ControllerFaultInjector:
    """Applies a device-level fault schedule to one controller.

    Parameters
    ----------
    controller:
        The control plane under test (its :attr:`recovery` config
        decides mitigated vs baseline behaviour).
    schedule:
        The frozen fault timeline (KV-loss events are ignored here —
        they belong to the serving layer).
    burst_scale_bits:
        Burst sizes are ``1 + magnitude * burst_scale_bits`` raw bit
        errors; defaults to four times the ECC correction capability so
        bursts straddle the correctable/uncorrectable boundary.
    """

    def __init__(
        self,
        controller: MRMController,
        schedule: FaultSchedule,
        burst_scale_bits: Optional[int] = None,
        obs=None,
    ) -> None:
        self.controller = controller
        self.schedule = schedule
        self.log = FaultLog(obs=obs)
        if burst_scale_bits is None:
            t = controller.ecc_code.t if controller.ecc_code else 16
            burst_scale_bits = 4 * (t + 1)
        self.burst_scale_bits = burst_scale_bits
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.schedule.events)

    def apply_until(self, now: float) -> int:
        """Apply every not-yet-applied event with ``time_s <= now``;
        returns how many fired."""
        fired = 0
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].time_s <= now:
            event = events[self._cursor]
            self._cursor += 1
            if event.kind in _SERVING_KINDS:
                continue  # serving-layer event; not ours
            self._apply(event)
            fired += 1
        return fired

    # ------------------------------------------------------------------
    # Per-kind handlers (deterministic; no RNG)
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        device = self.controller.device
        if device.is_failed:
            self.log.record(event, "device-already-dead")
            return
        if event.kind is FaultKind.RETENTION_VIOLATION:
            self._apply_retention_violation(event)
        elif event.kind is FaultKind.BIT_ERROR_BURST:
            self._apply_burst(event)
        elif event.kind is FaultKind.BANK_FAILURE:
            self._apply_bank_failure(event)
        elif event.kind is FaultKind.DEVICE_FAILURE:
            self._apply_device_failure(event)
        else:  # pragma: no cover - new kinds must add a handler
            raise ValueError(f"no handler for {event.kind}")

    def _victim_block(self, event: FaultEvent):
        blocks = sorted(
            self.controller.device.space.valid_blocks(),
            key=lambda b: (b.zone_id, b.index),
        )
        if not blocks:
            return None
        return blocks[_pick(event.magnitude, len(blocks))]

    def _apply_retention_violation(self, event: FaultEvent) -> None:
        block = self._victim_block(event)
        if block is None:
            self.log.record(event, "no-target")
            return
        # Severity 2x-8x spec retention, derived from the frozen
        # magnitude: the mild end stays within ECC margin (the code
        # absorbs it), the severe end is uncorrectable decay that only
        # refresh escalation can recover.
        severity = 2.0 + 6.0 * event.magnitude
        self.controller.device.inject_retention_violation(
            block, event.time_s, severity=severity
        )
        self.log.record(
            event, "aged", detail=block.zone_id * 10_000 + block.index
        )

    def _apply_burst(self, event: FaultEvent) -> None:
        block = self._victim_block(event)
        if block is None:
            self.log.record(event, "no-target")
            return
        bits = 1 + int(event.magnitude * self.burst_scale_bits)
        self.controller.device.inject_bit_errors(block, bits)
        self.log.record(event, "burst", detail=bits)

    def _apply_bank_failure(self, event: FaultEvent) -> None:
        device = self.controller.device
        candidates = sorted(
            zone.zone_id
            for zone in device.space.zones
            if zone.zone_id not in device.failed_zones
        )
        if not candidates:
            self.log.record(event, "no-target")
            return
        zone_id = candidates[_pick(event.magnitude, len(candidates))]
        lost = device.fail_bank(zone_id)
        self.controller.handle_bank_failure(zone_id, lost)
        self.log.record(event, "bank-failed", detail=len(lost))

    def _apply_device_failure(self, event: FaultEvent) -> None:
        controller = self.controller
        lost = controller.device.fail_device()
        for block in lost:
            controller.scheduler.deregister(block)
            block.state = BlockState.EXPIRED
        if controller.recovery.enabled:
            # Graceful degradation: the failure was detected as
            # progressive degradation and the control plane drained the
            # device in time — data moves instead of dying.
            controller.migration_queue.extend(lost)
            controller.stats.migrations_requested += len(lost)
            self.log.record(event, "drained", detail=len(lost))
        else:
            controller.stats.data_loss_blocks += len(lost)
            self.log.record(event, "device-lost", detail=len(lost))


def spawn_kv_faults(
    sim: Simulator,
    engines: Sequence[InferenceEngine],
    schedule: FaultSchedule,
    log: Optional[FaultLog] = None,
    obs=None,
) -> Tuple[Process, FaultLog]:
    """Start the serving-layer fault process; returns ``(process, log)``.

    At each KV-loss event's time, one engine (picked from the frozen
    magnitude) loses one running request's KV pages via
    :meth:`~repro.inference.engine.InferenceEngine.inject_kv_loss`.
    Engines are addressed in sorted-name order so the mapping from
    timeline to victim never depends on construction order.
    """
    if log is None:
        log = FaultLog(obs=obs)
    ordered = sorted(engines, key=lambda e: e.name)
    if not ordered:
        raise ValueError("need at least one engine")

    def _process() -> Generator:
        for event in schedule:
            if event.kind is not FaultKind.KV_LOSS:
                continue
            delay = event.time_s - sim.now
            if delay > 0:
                yield Timeout(delay)
            # Split the one frozen draw: integer part picks the engine,
            # the rescaled remainder picks the victim inside it.
            scaled = event.magnitude * len(ordered)
            index = min(int(scaled), len(ordered) - 1)
            inner = min(max(scaled - index, 0.0), 1.0 - 1e-12)
            outcome = ordered[index].inject_kv_loss(inner)
            log.record(event, outcome, detail=index)

    process = sim.spawn(_process(), name="kv-fault-injector")
    return process, log


def spawn_domain_faults(
    sim: Simulator,
    cluster,
    schedule: FaultSchedule,
    log: Optional[FaultLog] = None,
    obs=None,
) -> Tuple[Process, FaultLog]:
    """Deliver a correlated schedule's serving events to a cluster.

    ``ENGINE_CRASH`` events (the per-member expansion of engine and
    power-domain strikes) call
    :meth:`~repro.inference.cluster.Cluster.handle_engine_crash` on the
    named engine; ``DOMAIN_POWER_LOSS`` markers are logged as the strike
    record (their members arrive as separate events at the same
    instant).  Device-level kinds in a merged schedule are ignored here,
    mirroring how :class:`ControllerFaultInjector` ignores serving
    kinds.

    The timeline is a pure function of the schedule: delivery order is
    event order, and each outcome (``crashed`` with the displaced count,
    or ``already-down``) lands in the :class:`FaultLog`, so
    ``log.fingerprint()`` captures schedule *and* effect.
    """
    if log is None:
        log = FaultLog(obs=obs)

    def _process() -> Generator:
        for event in schedule:
            if event.kind is FaultKind.DOMAIN_POWER_LOSS:
                delay = event.time_s - sim.now
                if delay > 0:
                    yield Timeout(delay)
                log.record(event, "domain-struck")
            elif event.kind is FaultKind.ENGINE_CRASH:
                delay = event.time_s - sim.now
                if delay > 0:
                    yield Timeout(delay)
                outcome, detail = cluster.handle_engine_crash(event.device)
                log.record(event, outcome, detail=detail)

    process = sim.spawn(_process(), name="domain-fault-injector")
    return process, log
