"""From catalog fault-rate specs to per-kind event rates.

The catalog (:data:`repro.devices.catalog.FAULT_RATES`) speaks datasheet
units — soft events per GiB per hour, hard failures per device-year.
The schedule generator wants one number per :class:`FaultKind`: events
per simulated second for *this* device instance.  :func:`rates_for`
does that conversion: soft rates scale with the device's capacity, hard
rates are per-device, and an optional ``kv_loss_per_hour`` adds the
serving-layer fault stream (KV loss is a system-level event, so it has
no catalog entry — experiments choose it directly).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.devices.base import FaultRateSpec
from repro.devices.catalog import get_fault_rates
from repro.faults.events import FaultKind
from repro.units import Bytes, GiB, HOUR, Ratio, YEAR

#: Per-kind event rates in events per simulated second.
KindRates = Dict[FaultKind, float]


def rates_for(
    profile_name: str,
    capacity_bytes: Bytes,
    rate_multiplier: Ratio = 1.0,
    kv_loss_per_hour: float = 0.0,
    spec: Optional[FaultRateSpec] = None,
) -> KindRates:
    """Per-kind event rates (events/s) for one device instance.

    Parameters
    ----------
    profile_name:
        Catalog profile the device derives from (sets the base rates
        unless ``spec`` overrides them).
    capacity_bytes:
        Device capacity; soft-event rates scale linearly with it.
    rate_multiplier:
        Sweep knob: all catalog rates scaled by this factor.
    kv_loss_per_hour:
        Serving-layer KV-cache-loss rate (per engine-hour); zero when
        the experiment runs below the serving layer.
    spec:
        Explicit rate spec; bypasses the catalog lookup when given.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    if math.isnan(rate_multiplier) or rate_multiplier < 0:
        raise ValueError("rate multiplier must be a number >= 0")
    if math.isnan(kv_loss_per_hour) or kv_loss_per_hour < 0:
        raise ValueError("kv_loss_per_hour must be a number >= 0")
    spec = (spec or get_fault_rates(profile_name)).scaled(rate_multiplier)
    gib = capacity_bytes / GiB
    return {
        FaultKind.RETENTION_VIOLATION: (
            spec.retention_violations_per_gib_hour * gib / HOUR
        ),
        FaultKind.BIT_ERROR_BURST: (
            spec.bit_error_bursts_per_gib_hour * gib / HOUR
        ),
        FaultKind.BANK_FAILURE: spec.bank_failures_per_device_year / YEAR,
        FaultKind.DEVICE_FAILURE: spec.device_failures_per_device_year / YEAR,
        FaultKind.KV_LOSS: kv_loss_per_hour * rate_multiplier / HOUR,
        # Topology-level kinds have no per-device catalog entry: they
        # are emitted by correlated-domain schedules
        # (:func:`repro.faults.schedule.generate_correlated_schedule`),
        # never by the independent per-device generator.
        FaultKind.ENGINE_CRASH: 0.0,
        FaultKind.DOMAIN_POWER_LOSS: 0.0,
    }
