"""Seeded fault-schedule generation.

A :class:`FaultSchedule` is the *entire* randomness of a fault-injected
run, drawn up front from one ``numpy`` generator and frozen.  That is
the determinism contract:

1. Per-kind Poisson processes are drawn in the fixed
   :data:`~repro.faults.events.KIND_ORDER` (never set order), each as a
   cumulative sum of exponential gaps, from a single
   ``np.random.Generator`` seeded by the caller's ``SeedSequence``.
2. The per-kind streams are merged by ``(time, kind order, draw
   index)`` and numbered with a global ``seq`` — ties at the same
   instant break the same way on every run.
3. Each event carries a ``magnitude`` uniform draw frozen at schedule
   time; handlers never draw fresh randomness, so identical schedules
   produce identical effects.

Because the schedule is a pure function of ``(rates, duration, seed)``,
the same seed yields a bit-identical timeline whether the run executes
serially or as one point of a ``repro.parallel.run_sweep`` fan-out —
the property ``tests/faults/test_determinism.py`` asserts.

:func:`generate_correlated_schedule` extends the contract one level up:
strikes are drawn per *fault domain* (see :mod:`repro.faults.domains`)
and each strike expands into per-member events by pure arithmetic on
the strike's frozen magnitude, so correlated timelines are a pure
function of ``(topology, rates, horizon, seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.faults.domains import (
    DomainRates,
    FaultTopology,
    spread_magnitude,
    validate_domain_rates,
)
from repro.faults.events import (
    KIND_ORDER,
    FaultEvent,
    FaultKind,
    timeline_fingerprint,
)
from repro.faults.rates import KindRates

SeedLike = Union[int, np.random.SeedSequence]


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered fault timeline for one run."""

    events: Tuple[FaultEvent, ...]
    duration_s: float

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def fingerprint(self) -> str:
        """Digest for serial-vs-parallel equality checks."""
        return timeline_fingerprint(self.events)

    def of_kind(self, kind: FaultKind) -> List[FaultEvent]:
        return [event for event in self.events if event.kind is kind]


def generate_schedule(
    rates: KindRates,
    duration_s: float,
    seed: SeedLike,
    device: str = "mrm",
) -> FaultSchedule:
    """Draw the fault timeline for one run.

    Parameters
    ----------
    rates:
        Events per second for each kind (missing kinds mean rate 0).
    duration_s:
        Horizon; events beyond it are not generated.
    seed:
        Root randomness — an int or a ``SeedSequence`` (e.g. the
        per-point seed ``run_sweep`` hands a point function).
    device:
        Device name stamped on every event.
    """
    if math.isnan(duration_s) or duration_s < 0:
        raise ValueError("duration must be >= 0")
    if isinstance(seed, np.random.SeedSequence):
        rng = np.random.default_rng(seed)
    else:
        rng = np.random.default_rng(np.random.SeedSequence(seed))
    # (time, kind_index, draw_index, magnitude) tuples, merged after all
    # kinds are drawn so the draw order never depends on the rates.
    drawn: List[Tuple[float, int, int, float]] = []
    for kind_index, kind in enumerate(KIND_ORDER):
        rate = rates.get(kind, 0.0)
        if math.isnan(rate) or math.isinf(rate):
            raise ValueError(f"non-finite rate for {kind.value}")
        if rate < 0:
            raise ValueError(f"negative rate for {kind.value}")
        if rate == 0 or duration_s == 0:
            continue
        # Expected count + slack; top up in the (vanishingly rare) case
        # the gap sum falls short of the horizon.
        times: List[float] = []
        t = 0.0
        batch = max(8, int(rate * duration_s * 1.5) + 8)
        while t < duration_s:
            gaps = rng.exponential(1.0 / rate, size=batch)
            for gap in gaps:
                t += float(gap)
                if t >= duration_s:
                    break
                times.append(t)
        magnitudes = rng.random(size=len(times))
        for draw_index, (time_s, magnitude) in enumerate(
            zip(times, magnitudes)
        ):
            drawn.append((time_s, kind_index, draw_index, float(magnitude)))
    drawn.sort(key=lambda item: (item[0], item[1], item[2]))
    events = tuple(
        FaultEvent(
            time_s=time_s,
            kind=KIND_ORDER[kind_index],
            device=device,
            magnitude=magnitude,
            seq=seq,
        )
        for seq, (time_s, kind_index, _draw, magnitude) in enumerate(drawn)
    )
    return FaultSchedule(events=events, duration_s=float(duration_s))


def generate_correlated_schedule(
    topology: FaultTopology,
    strike_rates: DomainRates,
    duration_s: float,
    seed: SeedLike,
) -> FaultSchedule:
    """Draw a domain-correlated fault timeline for one run.

    Strikes are Poisson per domain, drawn in topology declaration order
    from one generator (same discipline as :func:`generate_schedule`'s
    per-kind streams).  Each strike freezes one uniform magnitude; the
    expansion into per-member events is pure arithmetic on that draw
    (:func:`~repro.faults.domains.spread_magnitude`), so the whole
    timeline — including every member event — is a pure function of
    ``(topology, rates, horizon, seed)``.

    Expansion per strike, all at the strike instant:

    - ``power`` domains emit a ``DOMAIN_POWER_LOSS`` marker (device =
      domain name) followed by one ``ENGINE_CRASH`` per member engine;
    - ``engine`` and ``bank-group`` domains emit member events only
      (``ENGINE_CRASH`` / ``BANK_FAILURE``, device = member name).

    Unlike :func:`generate_schedule`, a zero horizon is rejected: a
    correlated availability run with nothing to observe is a config
    error, not an empty timeline.
    """
    topology.validate()
    rates = validate_domain_rates(topology, strike_rates)
    if math.isnan(duration_s) or duration_s <= 0:
        raise ValueError("horizon must be > 0 for a correlated schedule")
    if isinstance(seed, np.random.SeedSequence):
        rng = np.random.default_rng(seed)
    else:
        rng = np.random.default_rng(np.random.SeedSequence(seed))
    # (time, domain_index, draw_index, member_slot, kind, device,
    # magnitude): member_slot -1 is the domain marker, 0.. the members.
    drawn: List[Tuple[float, int, int, int, FaultKind, str, float]] = []
    for domain_index, domain in enumerate(topology.domains):
        rate = rates.get(domain.name, 0.0)
        if rate == 0:
            continue
        times: List[float] = []
        t = 0.0
        batch = max(8, int(rate * duration_s * 1.5) + 8)
        while t < duration_s:
            gaps = rng.exponential(1.0 / rate, size=batch)
            for gap in gaps:
                t += float(gap)
                if t >= duration_s:
                    break
                times.append(t)
        magnitudes = rng.random(size=len(times))
        member_kind = domain.member_kind()
        for draw_index, (time_s, magnitude) in enumerate(
            zip(times, magnitudes)
        ):
            strike_mag = float(magnitude)
            if domain.level == "power":
                drawn.append((
                    time_s, domain_index, draw_index, -1,
                    FaultKind.DOMAIN_POWER_LOSS, domain.name, strike_mag,
                ))
            for member_index, member in enumerate(domain.members):
                drawn.append((
                    time_s, domain_index, draw_index, member_index,
                    member_kind, member,
                    spread_magnitude(strike_mag, member_index),
                ))
    drawn.sort(key=lambda item: (item[0], item[1], item[2], item[3]))
    events = tuple(
        FaultEvent(
            time_s=time_s,
            kind=kind,
            device=device,
            magnitude=magnitude,
            seq=seq,
        )
        for seq, (time_s, _d, _i, _m, kind, device, magnitude) in enumerate(
            drawn
        )
    )
    return FaultSchedule(events=events, duration_s=float(duration_s))


def merge_schedules(schedules: Sequence[FaultSchedule]) -> FaultSchedule:
    """Merge per-device schedules into one timeline (stable re-sequence).

    Events order by ``(time, original device position, original seq)``;
    the merged events are renumbered with fresh ``seq`` values.
    """
    if not schedules:
        return FaultSchedule(events=(), duration_s=0.0)
    keyed: List[Tuple[float, int, int, FaultEvent]] = []
    for position, schedule in enumerate(schedules):
        for event in schedule.events:
            keyed.append((event.time_s, position, event.seq, event))
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    merged = tuple(
        FaultEvent(
            time_s=event.time_s,
            kind=event.kind,
            device=event.device,
            magnitude=event.magnitude,
            seq=seq,
        )
        for seq, (_t, _p, _s, event) in enumerate(keyed)
    )
    return FaultSchedule(
        events=merged,
        duration_s=max(s.duration_s for s in schedules),
    )
