"""Deterministic fault injection and graceful degradation.

The robustness layer of the MRM stack.  The paper's control-plane
argument (Section 4) is that software with global visibility is
best-placed to manage retention, wear *and failure*: this package makes
that claim testable.  It threads failure events through every layer —

- **devices** (:mod:`repro.devices.catalog`) publish per-technology
  fault rates (:class:`~repro.devices.base.FaultRateSpec`);
- **schedules** (:mod:`repro.faults.schedule`) turn rates + a seed into
  a frozen, bit-reproducible fault timeline;
- **injectors** (:mod:`repro.faults.injector`) apply the timeline to a
  controller/device or a serving cluster;
- **mitigations** live where they belong: retry/remap/refresh-escalation
  in :class:`~repro.core.controller.MRMController`, uncorrectable-error
  outcomes in :mod:`repro.ecc`, drain plans in
  :func:`~repro.tiering.migration.plan_drain`, KV recompute-from-prefix
  in :class:`~repro.inference.engine.InferenceEngine`;
- **experiments** (:mod:`repro.faults.experiment`) measure availability
  and goodput vs fault rate, with and without the mitigations.

Everything is deterministic: one seed fixes the whole fault timeline
and all of its effects, serially or under
:func:`repro.parallel.run_sweep` — see ``docs/ROBUSTNESS.md``.
"""

from repro.faults.domains import (
    FaultDomain,
    FaultTopology,
    cluster_topology,
    validate_domain_rates,
)
from repro.faults.events import (
    KIND_ORDER,
    FaultEvent,
    FaultKind,
    parse_fault_kind,
    timeline_fingerprint,
)
from repro.faults.experiment import (
    chaos_grid,
    chaos_point,
    controller_grid,
    controller_point,
    run_chaos_experiment,
    run_controller_experiment,
    run_serving_experiment,
    serving_grid,
    serving_point,
)
from repro.faults.injector import (
    ControllerFaultInjector,
    FaultLog,
    spawn_domain_faults,
    spawn_kv_faults,
)
from repro.faults.rates import KindRates, rates_for
from repro.faults.schedule import (
    FaultSchedule,
    generate_correlated_schedule,
    generate_schedule,
    merge_schedules,
)

__all__ = [
    "KIND_ORDER",
    "ControllerFaultInjector",
    "FaultDomain",
    "FaultEvent",
    "FaultKind",
    "FaultLog",
    "FaultSchedule",
    "FaultTopology",
    "KindRates",
    "chaos_grid",
    "chaos_point",
    "cluster_topology",
    "controller_grid",
    "controller_point",
    "generate_correlated_schedule",
    "generate_schedule",
    "merge_schedules",
    "parse_fault_kind",
    "rates_for",
    "run_chaos_experiment",
    "run_controller_experiment",
    "run_serving_experiment",
    "serving_grid",
    "serving_point",
    "spawn_domain_faults",
    "spawn_kv_faults",
    "timeline_fingerprint",
    "validate_domain_rates",
]
