"""The fault experiments: availability / goodput vs fault rate.

Two experiment families, both built as *pure point functions* so they
run under :func:`repro.parallel.run_sweep` — serial and parallel
executions are bit-identical, fault timeline included:

- :func:`controller_point` — one MRM device + controller serving a
  fixed read-mostly working set while device-level faults (retention
  violations, bit-error bursts, bank/device failures) fire from a
  seeded schedule.  Measures block-delivery availability and the cost
  of the mitigation ladder.
- :func:`serving_point` — a small inference cluster while KV-cache-loss
  faults strike running requests.  Measures request availability and
  goodput (throughput net of recomputed tokens).
- :func:`chaos_point` — a cluster under *correlated* domain faults
  (engine crashes and power-domain losses expanded from one
  :func:`~repro.faults.schedule.generate_correlated_schedule`
  timeline), baseline vs the full graceful-degradation stack
  (:class:`~repro.inference.resilience.ResiliencePolicy`: deadlines,
  retries, hedging, crash re-dispatch + KV recompute).  Measures
  delivered goodput, SLO attainment, shed/retry/hedge counts and
  time-to-recovery vs domain strike rate.

Each point draws **one** fault schedule and plays it through two arms —
``baseline`` (mitigations off: detected errors are immediate data loss,
KV losses immediately fail requests) and ``mitigated`` (the default
recovery configs) — so the comparison is on the *identical* timeline,
not merely identically-distributed ones.  The headline claim the
benchmarks assert: at every positive fault rate, mitigation improves
availability on the same faults.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.controller import MRMController, RecoveryConfig
from repro.core.mrm import MRMConfig, MRMDevice
from repro.core.zones import BlockState
from repro.ecc.bch import BCHCode
from repro.faults.domains import cluster_topology
from repro.faults.events import FaultKind
from repro.faults.injector import (
    ControllerFaultInjector,
    spawn_domain_faults,
    spawn_kv_faults,
)
from repro.faults.rates import rates_for
from repro.faults.schedule import (
    FaultSchedule,
    generate_correlated_schedule,
    generate_schedule,
)
from repro.inference.accelerator import H100_80G
from repro.inference.cluster import Cluster, tensor_parallel_group
from repro.inference.engine import KVRecoveryConfig
from repro.inference.resilience import ResiliencePolicy
from repro.obs import MetricsRegistry
from repro.parallel.sweep import run_sweep
from repro.sim import Simulator
from repro.units import HOUR, MiB
from repro.workload.model import LLAMA2_13B
from repro.workload.requests import InferenceRequest, SLAClass

SeedLike = Union[int, np.random.SeedSequence]

#: Catalog profile whose fault rates drive the controller experiment.
DEFAULT_PROFILE = "rram-potential"

#: Rate multipliers for the device-level sweep.  Base catalog rates are
#: datasheet-scale (events per GiB-hour on a sub-GiB device), so the
#: sweep accelerates them to get meaningful counts in a two-hour run.
CONTROLLER_MULTIPLIERS = (0.0, 1000.0, 4000.0, 16000.0)
CONTROLLER_MULTIPLIERS_TINY = (0.0, 4000.0)

#: KV-loss events per engine-hour for the serving sweep.
SERVING_KV_RATES_PER_HOUR = (0.0, 360.0, 1440.0)
SERVING_KV_RATES_PER_HOUR_TINY = (0.0, 1440.0)

#: Per-engine-domain strikes per hour for the chaos sweep (power-domain
#: strikes run at a quarter of this — shared feeds fail rarer than
#: single engines, but take several engines down at once).
CHAOS_STRIKE_RATES_PER_HOUR = (0.0, 120.0, 360.0)
CHAOS_STRIKE_RATES_PER_HOUR_TINY = (0.0, 240.0)

#: The mitigated arm's graceful-degradation knobs.  Queue depth stays
#: unbounded here so the struck-point comparison isolates crash
#: recovery; shedding determinism is covered by the unit tests.
CHAOS_POLICY = ResiliencePolicy(
    enabled=True,
    deadline_s=10.0,
    max_retries=2,
    retry_backoff_s=0.05,
    hedge_delay_s=1.0,
    max_queue_depth=0,
    restart_delay_s=0.5,
)


def _seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def controller_grid(tiny: bool = False) -> List[Dict[str, Any]]:
    """One point per fault-rate multiplier for :func:`controller_point`."""
    multipliers = (
        CONTROLLER_MULTIPLIERS_TINY if tiny else CONTROLLER_MULTIPLIERS
    )
    return [{"rate_multiplier": multiplier} for multiplier in multipliers]


def serving_grid(tiny: bool = False) -> List[Dict[str, Any]]:
    """One point per KV-loss rate for :func:`serving_point`."""
    rates = (
        SERVING_KV_RATES_PER_HOUR_TINY if tiny else SERVING_KV_RATES_PER_HOUR
    )
    return [{"kv_loss_per_hour": rate} for rate in rates]


def chaos_grid(tiny: bool = False) -> List[Dict[str, Any]]:
    """One point per domain strike rate for :func:`chaos_point`."""
    rates = (
        CHAOS_STRIKE_RATES_PER_HOUR_TINY if tiny else CHAOS_STRIKE_RATES_PER_HOUR
    )
    return [{"strike_rate_per_hour": rate} for rate in rates]


def _controller_arm(
    schedule: FaultSchedule,
    mitigated: bool,
    decode_seed: np.random.SeedSequence,
    duration_s: float,
    step_s: float,
    observe: bool = False,
) -> Dict[str, Any]:
    """Play one schedule through one controller configuration.

    A 64 MiB device holds a 40-block working set (retention set past
    the experiment horizon, liveness "still needed"), read in full every
    ``step_s`` while the fault schedule plays.  Availability counts
    every demanded block every round: a block lost at t stays
    undelivered for the rest of the run — data loss has a lasting cost,
    exactly what graceful degradation buys back.
    """
    rng = np.random.default_rng(decode_seed)
    # Per-arm registry (when observing): a pure function of the arm's
    # inputs, so sweep snapshots stay serial-vs-parallel identical.
    obs = MetricsRegistry() if observe else None
    device = MRMDevice(
        MRMConfig(
            capacity_bytes=64 * MiB,
            block_bytes=1 * MiB,
            blocks_per_zone=8,
        )
    )
    controller = MRMController(
        device,
        ecc_code=BCHCode(n=32768, k=32648, t=8),
        recovery=RecoveryConfig(enabled=mitigated),
        obs=obs,
    )
    injector = ControllerFaultInjector(controller, schedule, obs=obs)

    retention_s = 2 * duration_s  # outlives the run: no planned expiry
    working_set = []
    for _ in range(40):
        working_set.extend(
            controller.write(
                1 * MiB, retention_s, 0.0,
                liveness=lambda _block, _now: True,
            )
        )

    demanded = 0
    delivered = 0
    read_latency_s = 0.0
    read_energy_j = 0.0
    now = 0.0
    while now < duration_s:
        now = min(now + step_s, duration_s)
        injector.apply_until(now)
        controller.tick(now)
        live = [b for b in working_set if b.state is BlockState.VALID]
        demanded += len(working_set)
        if live and not device.is_failed:
            result = controller.read_with_recovery(live, now, rng=rng)
            delivered += len(live) - len(result.lost_blocks)
            read_latency_s += result.latency_s
            read_energy_j += result.energy_j

    stats = controller.stats
    result = {
        "mitigated": mitigated,
        "log_fingerprint": injector.log.fingerprint(),
        "availability": delivered / demanded if demanded else 1.0,
        "blocks_demanded": demanded,
        "blocks_delivered": delivered,
        "data_loss_blocks": stats.data_loss_blocks,
        "blocks_recovered": stats.blocks_recovered,
        "read_retries": stats.read_retries,
        "escalated_refreshes": stats.escalated_refreshes,
        "silent_corruptions": stats.silent_corruptions,
        "remapped_zones": stats.remapped_zones,
        "read_latency_s": read_latency_s,
        "read_energy_j": read_energy_j,
    }
    if obs is not None:
        result["obs"] = obs.snapshot()
    return result


def controller_point(
    point: Dict[str, Any], seed: SeedLike
) -> Dict[str, Any]:
    """One device-level availability measurement: both arms, one timeline."""
    rate_multiplier = float(point["rate_multiplier"])
    duration_s = float(point.get("duration_s", 2 * HOUR))
    step_s = float(point.get("step_s", 120.0))
    observe = bool(point.get("observe", False))

    root = _seed_sequence(seed)
    schedule_seed, baseline_seed, mitigated_seed = root.spawn(3)
    rates = rates_for(
        point.get("profile", DEFAULT_PROFILE),
        capacity_bytes=64 * MiB,
        rate_multiplier=rate_multiplier,
    )
    schedule = generate_schedule(rates, duration_s, schedule_seed)
    return {
        "rate_multiplier": rate_multiplier,
        "fault_events": len(schedule),
        "timeline_fingerprint": schedule.fingerprint(),
        "baseline": _controller_arm(
            schedule, False, baseline_seed, duration_s, step_s, observe
        ),
        "mitigated": _controller_arm(
            schedule, True, mitigated_seed, duration_s, step_s, observe
        ),
    }


def _serving_arm(
    schedule: FaultSchedule,
    mitigated: bool,
    num_requests: int,
    observe: bool = False,
) -> Dict[str, Any]:
    """Serve the fixed request stream through one fault timeline.

    The request stream is deterministic (fixed arrivals and token
    counts) so the *only* randomness is the fault timeline — both arms
    see the identical stream and identical faults.
    """
    obs = MetricsRegistry() if observe else None
    sim = Simulator(obs=obs)
    cluster = Cluster(
        sim,
        tensor_parallel_group(H100_80G, 2),
        LLAMA2_13B,
        num_engines=2,
        max_batch_size=8,
        kv_recovery=KVRecoveryConfig(enabled=mitigated),
        obs=obs,
    )
    _process, log = spawn_kv_faults(sim, cluster.engines, schedule, obs=obs)
    requests = [
        InferenceRequest(
            arrival_time=0.25 * i, prompt_tokens=256, output_tokens=32
        )
        for i in range(num_requests)
    ]
    report = cluster.run(requests)
    result = {
        "mitigated": mitigated,
        "log_fingerprint": log.fingerprint(),
        "availability": report.availability,
        "goodput_tokens_per_s": report.goodput_tokens_per_s,
        "throughput_tokens_per_s": report.throughput_tokens_per_s,
        "requests_completed": report.requests_completed,
        "requests_failed": report.requests_failed,
        "kv_recoveries": report.kv_recoveries,
        "kv_recompute_tokens": report.kv_recompute_tokens,
    }
    if obs is not None:
        result["obs"] = obs.snapshot()
    return result


def serving_point(point: Dict[str, Any], seed: SeedLike) -> Dict[str, Any]:
    """One serving-layer availability/goodput measurement: both arms."""
    kv_loss_per_hour = float(point["kv_loss_per_hour"])
    horizon_s = float(point.get("horizon_s", 30.0))
    num_requests = int(point.get("num_requests", 60))
    observe = bool(point.get("observe", False))

    schedule = generate_schedule(
        {FaultKind.KV_LOSS: kv_loss_per_hour / HOUR},
        horizon_s,
        _seed_sequence(seed),
        device="cluster",
    )
    return {
        "kv_loss_per_hour": kv_loss_per_hour,
        "fault_events": len(schedule),
        "timeline_fingerprint": schedule.fingerprint(),
        "baseline": _serving_arm(schedule, False, num_requests, observe),
        "mitigated": _serving_arm(schedule, True, num_requests, observe),
    }


def _chaos_arm(
    schedule: FaultSchedule,
    mitigated: bool,
    num_engines: int,
    num_requests: int,
    horizon_s: float,
    output_tokens: int = 32,
    arrival_period_s: float = 0.25,
    observe: bool = False,
) -> Dict[str, Any]:
    """Serve the fixed stream through one correlated fault timeline.

    The mitigated arm runs the full stack — :data:`CHAOS_POLICY`
    dispatching (deadlines, retries, hedging, crash re-dispatch) plus
    KV recompute-from-prefix; the baseline arm routes around dead
    engines (plain JSQ liveness) but recovers nothing: a crash fails
    every resident and queued request.

    Goodput uses the shared schedule horizon as the denominator so the
    arms are compared over the identical wall-clock window, independent
    of how long each one's event queue takes to drain.
    """
    obs = MetricsRegistry() if observe else None
    sim = Simulator(obs=obs)
    cluster = Cluster(
        sim,
        tensor_parallel_group(H100_80G, 2),
        LLAMA2_13B,
        num_engines=num_engines,
        max_batch_size=8,
        kv_recovery=KVRecoveryConfig(enabled=mitigated),
        resilience=CHAOS_POLICY if mitigated else None,
        obs=obs,
    )
    _process, log = spawn_domain_faults(sim, cluster, schedule, obs=obs)
    requests = [
        InferenceRequest(
            arrival_time=arrival_period_s * i,
            prompt_tokens=256,
            output_tokens=output_tokens,
        )
        for i in range(num_requests)
    ]
    report = cluster.run(requests)
    interactive = (report.sla_attainment or {}).get(
        SLAClass.INTERACTIVE, 0.0
    )
    result = {
        "mitigated": mitigated,
        "log_fingerprint": log.fingerprint(),
        "availability": report.availability,
        "goodput_tokens_per_s": report.useful_tokens / horizon_s,
        "slo_attainment": interactive,
        "requests_completed": report.requests_completed,
        "requests_failed": report.requests_failed,
        "requests_shed": report.requests_shed,
        "retries": report.retries,
        "hedges": report.hedges,
        "hedge_wins": report.hedge_wins,
        "deadline_timeouts": report.deadline_timeouts,
        "engine_crashes": report.engine_crashes,
        "engine_restarts": report.engine_restarts,
        "kv_recoveries": report.kv_recoveries,
        "kv_recompute_tokens": report.kv_recompute_tokens,
        "wasted_tokens": report.wasted_tokens,
        "time_to_recovery_s": report.time_to_recovery_s,
    }
    if obs is not None:
        result["obs"] = obs.snapshot()
    return result


def chaos_point(point: Dict[str, Any], seed: SeedLike) -> Dict[str, Any]:
    """One correlated-fault availability measurement: both arms, one
    domain timeline."""
    strike_rate_per_hour = float(point["strike_rate_per_hour"])
    horizon_s = float(point.get("horizon_s", 30.0))
    num_requests = int(point.get("num_requests", 60))
    num_engines = int(point.get("num_engines", 3))
    output_tokens = int(point.get("output_tokens", 32))
    arrival_period_s = float(point.get("arrival_period_s", 0.25))
    observe = bool(point.get("observe", False))

    topology = cluster_topology(num_engines, engines_per_domain=2)
    strike_rates = {}
    for domain in topology.domains:
        if domain.level == "engine":
            strike_rates[domain.name] = strike_rate_per_hour / HOUR
        elif domain.level == "power":
            strike_rates[domain.name] = strike_rate_per_hour / (4 * HOUR)
    schedule = generate_correlated_schedule(
        topology, strike_rates, horizon_s, _seed_sequence(seed)
    )
    return {
        "strike_rate_per_hour": strike_rate_per_hour,
        "fault_events": len(schedule),
        "timeline_fingerprint": schedule.fingerprint(),
        "baseline": _chaos_arm(
            schedule, False, num_engines, num_requests, horizon_s,
            output_tokens, arrival_period_s, observe,
        ),
        "mitigated": _chaos_arm(
            schedule, True, num_engines, num_requests, horizon_s,
            output_tokens, arrival_period_s, observe,
        ),
    }


def run_controller_experiment(
    tiny: bool = False,
    root_seed: SeedLike = 0,
    workers: Optional[int] = None,
    points: Optional[Sequence[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Sweep :func:`controller_point` over the availability grid."""
    return run_sweep(
        controller_point,
        points if points is not None else controller_grid(tiny),
        root_seed=root_seed,
        workers=workers,
    )


def run_serving_experiment(
    tiny: bool = False,
    root_seed: SeedLike = 0,
    workers: Optional[int] = None,
    points: Optional[Sequence[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Sweep :func:`serving_point` over the KV-loss grid."""
    return run_sweep(
        serving_point,
        points if points is not None else serving_grid(tiny),
        root_seed=root_seed,
        workers=workers,
    )


def run_chaos_experiment(
    tiny: bool = False,
    root_seed: SeedLike = 0,
    workers: Optional[int] = None,
    points: Optional[Sequence[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Sweep :func:`chaos_point` over the domain-strike grid."""
    return run_sweep(
        chaos_point,
        points if points is not None else chaos_grid(tiny),
        root_seed=root_seed,
        workers=workers,
    )
