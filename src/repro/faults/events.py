"""Fault-event vocabulary shared by every layer of the stack.

The framework models the failure modes the paper's Section 4 says the
*system* (not the device) must manage once retention is a write
parameter:

- **retention violations** — data outlives its programmed retention
  (a missed refresh deadline, thermal excursion, or mis-programmed
  write) and decays early;
- **bit-error bursts** — transient raw-bit-error spikes on a read
  (read disturb, voltage noise) on top of the telegraph decay model;
- **bank failures** — a zone's worth of cells becomes unreadable
  (peripheral/wordline failure); the data is gone, the capacity too;
- **device failures** — the whole device drops off the fabric;
- **KV-cache loss** — the serving-layer projection of any of the above:
  a running request's KV pages are no longer trustworthy;
- **engine crashes** — one inference engine (a tensor-parallel group and
  its serving loop) dies mid-decode: every resident KV context is gone
  and the engine is out of rotation until it restarts;
- **domain power loss** — a whole failure domain (rack/power feed)
  strikes at once; the event expands into correlated per-member events
  (see :mod:`repro.faults.domains`), so one bad feed takes out every
  engine behind it in the same simulated instant.

Every fault is a frozen :class:`FaultEvent` carrying the simulated time
it strikes, the device it targets, and a uniform ``magnitude`` draw in
``[0, 1)`` frozen at schedule-generation time.  Handlers turn the
magnitude into a concrete victim (which zone, which running context,
how many flipped bits) with pure arithmetic — never with fresh RNG
draws — so a timeline's effect is a function of the timeline alone.

:func:`timeline_fingerprint` hashes a sequence of events into a short
hex digest; the serial-vs-parallel determinism tests compare these
fingerprints across worker counts.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Tuple


class FaultKind(enum.Enum):
    """The failure mode a fault event models."""

    RETENTION_VIOLATION = "retention-violation"
    BIT_ERROR_BURST = "bit-error-burst"
    BANK_FAILURE = "bank-failure"
    DEVICE_FAILURE = "device-failure"
    KV_LOSS = "kv-loss"
    # Serving-topology kinds (appended so existing KIND_ORDER indices —
    # and therefore existing schedule fingerprints — never move).
    ENGINE_CRASH = "engine-crash"
    DOMAIN_POWER_LOSS = "domain-power-loss"


#: Deterministic ordering of kinds for schedule merging (enum definition
#: order — never iterate a set of kinds).
KIND_ORDER: Tuple[FaultKind, ...] = tuple(FaultKind)


def parse_fault_kind(name: str) -> FaultKind:
    """Resolve a fault-kind string with a CLI-friendly error message."""
    try:
        return FaultKind(name)
    except ValueError:
        known = ", ".join(kind.value for kind in KIND_ORDER)
        raise ValueError(
            f"unknown fault kind {name!r}; known: {known}"
        ) from None


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    time_s:
        Simulated time the fault strikes.
    kind:
        Failure mode.
    device:
        Name of the targeted device (catalog profile or instance name).
    magnitude:
        Uniform draw in ``[0, 1)`` frozen at schedule time; handlers map
        it onto a concrete victim/size deterministically.
    seq:
        Position in the merged schedule (0-based); the tie-break for
        events striking at the same instant.
    """

    time_s: float
    kind: FaultKind
    device: str
    magnitude: float
    seq: int

    def as_record(self) -> dict:
        """JSON-serializable view (used by fingerprints and logs)."""
        record = asdict(self)
        record["kind"] = self.kind.value
        return record


def timeline_fingerprint(events: Iterable[FaultEvent]) -> str:
    """Short stable digest of an event sequence.

    Canonical JSON (sorted keys, explicit float repr) hashed with
    SHA-256; equal timelines — bit-identical times, kinds, targets,
    magnitudes, order — produce equal fingerprints.
    """
    payload = json.dumps(
        [event.as_record() for event in events],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
