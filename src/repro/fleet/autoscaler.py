"""Reactive per-tenant capacity planning: replicas and MRM-vs-HBM.

The autoscaler closes ROADMAP item 1's loop: *observed demand in, a
capacity plan out*.  Time is divided into fixed epochs; each epoch's
plan reacts to the demand observed in the previous epoch (classic
reactive autoscaling — it lags by construction, which is exactly the
behaviour the E14 comparison against static peak provisioning prices).

Per tenant and epoch the planner decides:

- **replica count** — ``ceil(demand_rps / target_rps_per_replica)``
  with hysteresis: scale-up is immediate (underprovisioning burns SLO),
  scale-down waits ``hysteresis_epochs`` epochs of low utilization
  (flapping burns model-swap downtime, see
  :class:`repro.inference.deployment.ModelSwapModel`), bounded by the
  tenant's ``min/max_replicas``, the fleet-wide replica budget, and
  per-cluster capacity;
- **memory configuration** — HBM-only replicas, or MRM-augmented
  replicas (weights placed on an MRM tier, freeing HBM for KV) when
  the expected resident bytes at the epoch's demand no longer fit in
  HBM headroom.  This is the paper's provisioning question asked per
  tenant: which retention class does *this* workload's capacity come
  from?
- **cluster spread** — replicas placed one at a time round-robin over
  clusters starting at the tenant's rotation offset, skipping clusters
  that are full; placement is a pure function of (tenants, demand,
  config), so plans are identical across sweep workers.

Determinism contract: no RNG anywhere in this module — plans are pure
arithmetic over the demand series, and fleet budget contention resolves
in tenant declaration order (declaration order is priority order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.retention import RetentionModel
from repro.devices.catalog import RRAM_POTENTIAL
from repro.fleet.tenant import TenantConfig
from repro.inference.accelerator import AcceleratorConfig, MemoryTierSpec
from repro.units import HOUR
from repro.workload.traces import TraceRecord

#: Memory configurations a tenant allocation may carry.
MEMORY_CONFIGS = ("hbm", "mrm")

#: Retention point of the fleet's MRM tier: long enough to hold weights
#: and session KV across serving, short enough to buy the paper's
#: write-energy/density relaxation (Section 3).
MRM_RETENTION_S = 6 * HOUR

#: MRM capacity provisioned per replica, as a multiple of the replica's
#: HBM capacity (MRM's density advantage is the point: Section 2.1's
#: "HBM density wall" is what the extra capacity steps around).
MRM_CAPACITY_MULTIPLE = 4


def mrm_tier_spec(hbm: MemoryTierSpec) -> MemoryTierSpec:
    """The MRM tier the fleet attaches next to an HBM tier.

    Read bandwidth matches HBM (co-packaged target, Section 3); write
    bandwidth is an eighth — the write performance MRM deliberately
    forfeits.  The technology point is the paper's potential-RRAM
    profile relaxed to :data:`MRM_RETENTION_S`.
    """
    profile = RetentionModel(RRAM_POTENTIAL).profile_at(MRM_RETENTION_S)
    return MemoryTierSpec(
        name="mrm",
        capacity_bytes=MRM_CAPACITY_MULTIPLE * hbm.capacity_bytes,
        read_bandwidth=hbm.read_bandwidth,
        write_bandwidth=hbm.read_bandwidth / 8,
        profile=profile,
    )


def apply_memory_config(
    accelerator: AcceleratorConfig, memory: str
) -> Tuple[AcceleratorConfig, Dict[str, str]]:
    """The (accelerator, placement) pair a memory configuration means.

    ``"hbm"`` leaves the accelerator untouched; ``"mrm"`` attaches the
    MRM tier and places weights on it (the read-dominated structure the
    paper moves first), keeping KV and activations on HBM.
    """
    if memory not in MEMORY_CONFIGS:
        raise ValueError(
            f"unknown memory config {memory!r}; known: "
            f"{', '.join(MEMORY_CONFIGS)}"
        )
    if memory == "hbm":
        return accelerator, {}
    hbm = accelerator.tier("hbm")
    augmented = accelerator.with_tiers((hbm, mrm_tier_spec(hbm)))
    return augmented, {"weights": "mrm"}


@dataclass(frozen=True)
class AutoscalerConfig:
    """The planner's knobs (fleet-wide)."""

    #: Scale up when demand exceeds this fraction of provisioned rate.
    scale_up_utilization: float = 0.8
    #: Scale down only when demand falls below this fraction ...
    scale_down_utilization: float = 0.4
    #: ... for at least this many consecutive epochs (hysteresis).
    hysteresis_epochs: int = 1
    #: Replica slots one cluster can host (all tenants combined).
    cluster_capacity_replicas: int = 16
    #: Replica slots the whole fleet can host (capacity limit).
    fleet_max_replicas: int = 256
    #: Switch a tenant's replicas to the MRM configuration when expected
    #: resident bytes exceed this fraction of the replica's HBM.
    mrm_headroom_fraction: float = 0.8

    def __post_init__(self) -> None:
        if not 0 < self.scale_down_utilization < self.scale_up_utilization <= 1:
            raise ValueError(
                "need 0 < scale_down < scale_up <= 1 utilization thresholds"
            )
        if self.hysteresis_epochs < 0:
            raise ValueError("hysteresis must be >= 0 epochs")
        if self.cluster_capacity_replicas < 1:
            raise ValueError("cluster capacity must be >= 1 replica")
        if self.fleet_max_replicas < 1:
            raise ValueError("fleet capacity must be >= 1 replica")
        if not 0 < self.mrm_headroom_fraction <= 1:
            raise ValueError("MRM headroom fraction must be in (0, 1]")


@dataclass(frozen=True)
class TenantAllocation:
    """One tenant's capacity in one epoch."""

    tenant: str
    replicas: int
    memory: str  # "hbm" | "mrm"
    per_cluster: Tuple[Tuple[int, int], ...]  # ((cluster, replicas), ...)

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError("replica count cannot be negative")
        if self.memory not in MEMORY_CONFIGS:
            raise ValueError(f"unknown memory config {self.memory!r}")
        spread = sum(count for _cluster, count in self.per_cluster)
        if spread != self.replicas:
            raise ValueError(
                f"cluster spread {spread} != replica count {self.replicas}"
            )

    def replicas_in(self, cluster: int) -> int:
        for candidate, count in self.per_cluster:
            if candidate == cluster:
                return count
        return 0


def epoch_count(horizon_s: float, epoch_s: float) -> int:
    """Number of (possibly partial-final) epochs covering a horizon."""
    if horizon_s <= 0 or epoch_s <= 0:
        raise ValueError("horizon and epoch length must be positive")
    return max(1, int(math.ceil(horizon_s / epoch_s - 1e-12)))


def epoch_demand_rps(
    traces: Dict[str, List[TraceRecord]],
    tenants: Sequence[TenantConfig],
    horizon_s: float,
    epoch_s: float,
) -> List[Dict[str, float]]:
    """Observed demand series: requests/s per tenant per epoch.

    The final epoch may be partial; its rate uses the actual covered
    span so short horizons don't understate demand.
    """
    epochs = epoch_count(horizon_s, epoch_s)
    counts = [
        {tenant.name: 0 for tenant in tenants} for _ in range(epochs)
    ]
    for tenant in tenants:
        for record in traces.get(tenant.name, []):
            epoch = min(int(record.arrival_time // epoch_s), epochs - 1)
            counts[epoch][tenant.name] += 1
    series: List[Dict[str, float]] = []
    for epoch in range(epochs):
        span = min(epoch_s, horizon_s - epoch * epoch_s)
        series.append(
            {
                tenant.name: counts[epoch][tenant.name] / span
                for tenant in tenants
            }
        )
    return series


def _expected_resident_bytes(
    tenant: TenantConfig, utilization: float, model, accelerator
) -> float:
    """Expected bytes resident on one replica at a utilization level.

    Weights are always resident; KV residency scales with the expected
    steady-state batch (utilization × batch cap) at the profile's mean
    context.  Means are closed-form from the token distributions, so
    the estimate is deterministic.
    """
    profile = tenant.token_profile
    mean_context = profile.prompt.mean() + profile.output.mean()
    mean_context = min(mean_context, float(model.context_limit_tokens))
    expected_batch = max(0.0, min(1.0, utilization)) * tenant.max_batch_size
    return float(model.weights_bytes) + (
        model.kv_cache_bytes(int(round(mean_context))) * expected_batch
    )


def _memory_config_for(
    tenant: TenantConfig, utilization: float, config: AutoscalerConfig,
    model, accelerator,
) -> str:
    hbm = accelerator.tier("hbm")
    resident = _expected_resident_bytes(tenant, utilization, model,
                                        accelerator)
    if resident > config.mrm_headroom_fraction * hbm.capacity_bytes:
        return "mrm"
    return "hbm"


def _spread(
    replicas: int,
    num_clusters: int,
    rotation: int,
    cluster_used: List[int],
    cluster_capacity: int,
) -> Tuple[Tuple[Tuple[int, int], ...], int]:
    """Place replicas one at a time round-robin from ``rotation``.

    Skips full clusters; replicas that fit nowhere are dropped (the
    capacity limit binds).  Returns the sorted spread and the count
    actually placed.  ``cluster_used`` is mutated with the placements.
    """
    placed: Dict[int, int] = {}
    count = 0
    offset = 0
    attempts_without_fit = 0
    while count < replicas and attempts_without_fit < num_clusters:
        cluster = (rotation + offset) % num_clusters
        offset += 1
        if cluster_used[cluster] >= cluster_capacity:
            attempts_without_fit += 1
            continue
        attempts_without_fit = 0
        cluster_used[cluster] += 1
        placed[cluster] = placed.get(cluster, 0) + 1
        count += 1
    return tuple(sorted(placed.items())), count


def plan_capacity(
    tenants: Sequence[TenantConfig],
    demand_series: Sequence[Dict[str, float]],
    num_clusters: int,
    config: AutoscalerConfig,
) -> List[Dict[str, TenantAllocation]]:
    """The reactive epoch plan for a demand series.

    ``demand_series[e]`` is the demand *observed during* epoch ``e``;
    the plan for epoch ``e`` reacts to ``demand_series[e-1]`` (epoch 0
    provisions against each tenant's configured baseline rate — the
    deployment-time prior).
    """
    from repro.inference.sweep import resolve_accelerator, resolve_model
    from repro.inference.cluster import tensor_parallel_group

    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    tenants = list(tenants)
    resolved = {}
    for tenant in tenants:
        model = resolve_model(tenant.model)
        accelerator = tensor_parallel_group(
            resolve_accelerator(tenant.accelerator), tenant.tp
        )
        resolved[tenant.name] = (model, accelerator)

    current: Dict[str, int] = {}
    low_streak: Dict[str, int] = {}
    for tenant in tenants:
        prior = int(math.ceil(
            tenant.rate_per_s / tenant.target_rps_per_replica - 1e-12
        ))
        floor = tenant.min_replicas
        if tenant.rate_per_s > 0:
            floor = max(floor, 1)
        current[tenant.name] = min(max(prior, floor), tenant.max_replicas)
        low_streak[tenant.name] = 0

    plan: List[Dict[str, TenantAllocation]] = []
    for epoch in range(len(demand_series)):
        if epoch == 0:
            observed = {
                tenant.name: tenant.rate_per_s for tenant in tenants
            }
        else:
            observed = demand_series[epoch - 1]

        # 1. Per-tenant desired counts with hysteresis.
        wishes: Dict[str, int] = {}
        for tenant in tenants:
            demand = observed.get(tenant.name, 0.0)
            have = current[tenant.name]
            desired = int(math.ceil(
                demand / tenant.target_rps_per_replica - 1e-12
            ))
            provisioned_rps = have * tenant.target_rps_per_replica
            if have == 0:
                utilization = math.inf if demand > 0 else 0.0
            else:
                utilization = demand / provisioned_rps
            if desired > have and utilization > config.scale_up_utilization:
                have = desired  # scale up immediately
                low_streak[tenant.name] = 0
            elif (
                desired < have
                and utilization < config.scale_down_utilization
            ):
                low_streak[tenant.name] += 1
                if low_streak[tenant.name] > config.hysteresis_epochs:
                    have = desired
                    low_streak[tenant.name] = 0
            else:
                low_streak[tenant.name] = 0
            have = min(max(have, tenant.min_replicas), tenant.max_replicas)
            current[tenant.name] = have
            wishes[tenant.name] = have

        # 2. Fleet budget, granted in declaration (priority) order.
        remaining = config.fleet_max_replicas
        granted: Dict[str, int] = {}
        for tenant in tenants:
            granted[tenant.name] = min(wishes[tenant.name], remaining)
            remaining -= granted[tenant.name]

        # 3. Cluster spread under per-cluster capacity.
        cluster_used = [0] * num_clusters
        allocations: Dict[str, TenantAllocation] = {}
        for rank, tenant in enumerate(tenants):
            spread, placed = _spread(
                granted[tenant.name], num_clusters, rank % num_clusters,
                cluster_used, config.cluster_capacity_replicas,
            )
            demand = observed.get(tenant.name, 0.0)
            if placed == 0:
                utilization = 0.0
            else:
                utilization = demand / (
                    placed * tenant.target_rps_per_replica
                )
            model, accelerator = resolved[tenant.name]
            allocations[tenant.name] = TenantAllocation(
                tenant=tenant.name,
                replicas=placed,
                memory=_memory_config_for(
                    tenant, utilization, config, model, accelerator
                ),
                per_cluster=spread,
            )
            # The spread is what the tenant actually got; keep the
            # controller's state honest so later epochs react to real
            # capacity, not the unmet wish.
            current[tenant.name] = placed
        plan.append(allocations)
    return plan


def static_plan(
    tenants: Sequence[TenantConfig],
    demand_series: Sequence[Dict[str, float]],
    num_clusters: int,
    config: AutoscalerConfig,
) -> List[Dict[str, TenantAllocation]]:
    """The E14 comparison arm: peak provisioning, held for the horizon.

    Each tenant gets its whole-horizon *peak* desired replica count in
    every epoch — no reaction, no hysteresis, the capacity a fleet
    without an autoscaler must hold to survive its worst epoch.
    Budget and spread rules are identical to :func:`plan_capacity` so
    the only difference E14 measures is the scaling policy.
    """
    from repro.inference.sweep import resolve_accelerator, resolve_model
    from repro.inference.cluster import tensor_parallel_group

    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    tenants = list(tenants)
    peaks: Dict[str, int] = {}
    for tenant in tenants:
        demands = [tenant.rate_per_s] + [
            series.get(tenant.name, 0.0) for series in demand_series
        ]
        desired = int(math.ceil(
            max(demands) / tenant.target_rps_per_replica - 1e-12
        ))
        floor = tenant.min_replicas
        if any(d > 0 for d in demands):
            floor = max(floor, 1)
        peaks[tenant.name] = min(max(desired, floor), tenant.max_replicas)

    # Fleet budget in declaration order, then the same round-robin
    # spread the reactive planner uses; held for every epoch.
    remaining = config.fleet_max_replicas
    granted: Dict[str, int] = {}
    for tenant in tenants:
        granted[tenant.name] = min(peaks[tenant.name], remaining)
        remaining -= granted[tenant.name]
    cluster_used = [0] * num_clusters
    allocations: Dict[str, TenantAllocation] = {}
    for rank, tenant in enumerate(tenants):
        spread, placed = _spread(
            granted[tenant.name], num_clusters, rank % num_clusters,
            cluster_used, config.cluster_capacity_replicas,
        )
        # Memory config sized for the peak the capacity is held against.
        peak_demand = peaks[tenant.name] * tenant.target_rps_per_replica
        if placed == 0:
            utilization = 0.0
        else:
            utilization = peak_demand / (
                placed * tenant.target_rps_per_replica
            )
        model = resolve_model(tenant.model)
        accelerator = tensor_parallel_group(
            resolve_accelerator(tenant.accelerator), tenant.tp
        )
        allocations[tenant.name] = TenantAllocation(
            tenant=tenant.name,
            replicas=placed,
            memory=_memory_config_for(
                tenant, utilization, config, model, accelerator
            ),
            per_cluster=spread,
        )
    return [dict(allocations) for _ in range(len(demand_series))]
