"""Trace-driven fleet arrivals: diurnal + bursty modulation, seed-pure.

Production LLM traffic is neither flat nor memoryless: it follows the
day (interactive products peak in waking hours) and it bursts (feature
launches, batch kickoffs, retry storms).  The fleet layer composes both
effects over the Splitwise-shaped request generator:

- a **diurnal profile** — a sinusoid with configurable amplitude and
  peak time modulating the tenant's base rate over a 24 h period;
- a **burst process** — a two-state (quiet/burst) Markov modulation
  multiplying the diurnal rate by ``burst_multiplier`` during bursts.

Arrivals are drawn by *thinning* (Lewis & Shedler): candidates arrive
at the tenant's constant peak-envelope rate and are accepted with
probability ``rate(t) / peak_rate``.  Thinning keeps the process exact
for any bounded rate function while consuming a deterministic draw
sequence, which is what makes traces a pure function of
``(tenant, horizon, seed)``.

Seed discipline: :func:`generate_fleet_traces` spawns one child
``SeedSequence`` per tenant **in tenant declaration order**, so adding
a tenant at the end never perturbs earlier tenants' traces, and
per-tenant streams are independent by construction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fleet.tenant import TenantConfig
from repro.units import DAY
from repro.workload.traces import TraceRecord


def diurnal_multiplier(
    t: float, amplitude: float, peak_time_s: float, period_s: float = DAY
) -> float:
    """Rate multiplier at simulated time ``t``: ``1 + a*cos(...)``,
    peaking (``1 + a``) at ``peak_time_s`` and bottoming (``1 - a``)
    half a period later."""
    if period_s <= 0:
        raise ValueError("period must be positive")
    phase = 2.0 * math.pi * (t - peak_time_s) / period_s
    return 1.0 + amplitude * math.cos(phase)


class _BurstState:
    """The quiet/burst telegraph process, advanced lazily.

    Sojourn times are drawn from the tenant's RNG *only when the
    timeline reaches them*, so the draw sequence — and therefore the
    whole trace — is a pure function of the seed.  Starts quiet.
    """

    def __init__(
        self, rng: np.random.Generator, mean_quiet_s: float, mean_burst_s: float
    ) -> None:
        self._rng = rng
        self._mean = (mean_quiet_s, mean_burst_s)
        self.in_burst = False
        self._until = float(rng.exponential(mean_quiet_s))

    def advance_to(self, t: float) -> bool:
        """State at time ``t`` (drawing any sojourns crossed en route)."""
        while self._until < t:
            self.in_burst = not self.in_burst
            mean = self._mean[1] if self.in_burst else self._mean[0]
            self._until += float(self._rng.exponential(mean))
        return self.in_burst


def generate_tenant_trace(
    tenant: TenantConfig,
    duration_s: float,
    seed: np.random.SeedSequence,
    context_limit_tokens: int = 4096,
) -> List[TraceRecord]:
    """One tenant's modulated arrival trace over ``[0, duration_s)``.

    Pure in ``(tenant, duration_s, seed)``.  A ``rate_per_s`` of zero
    yields the empty trace (the zero-traffic tenant).
    """
    if duration_s < 0:
        raise ValueError("duration must be >= 0")
    if tenant.rate_per_s == 0 or duration_s == 0:
        return []
    rng = np.random.default_rng(seed)
    burst = _BurstState(rng, tenant.mean_quiet_s, tenant.mean_burst_s)
    peak = tenant.peak_rate_per_s
    profile = tenant.token_profile
    sla_values = [sla for sla, _weight in tenant.sla_mix]
    sla_cdf = np.cumsum([weight for _sla, weight in tenant.sla_mix])

    records: List[TraceRecord] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= duration_s:
            return records
        in_burst = burst.advance_to(t)
        rate = tenant.rate_per_s * diurnal_multiplier(
            t, tenant.diurnal_amplitude, tenant.peak_time_s
        )
        if in_burst:
            rate *= tenant.burst_multiplier
        # Thinning: accept this candidate with probability rate/peak.
        # The uniform draw happens unconditionally so the stream shape
        # never depends on float round-off in the acceptance test.
        u = float(rng.random())
        if u >= rate / peak:
            continue
        prompt, output = profile.sample(rng, context_limit_tokens)
        sla_index = int(np.searchsorted(sla_cdf, float(rng.random()),
                                        side="right"))
        sla_index = min(sla_index, len(sla_values) - 1)
        records.append(
            TraceRecord(
                arrival_time=t,
                prompt_tokens=prompt,
                output_tokens=output,
                sla=sla_values[sla_index],
            )
        )


def generate_fleet_traces(
    tenants: Sequence[TenantConfig],
    duration_s: float,
    root_seed: np.random.SeedSequence,
) -> Dict[str, List[TraceRecord]]:
    """Per-tenant traces from independent spawned seed streams.

    Children are spawned in tenant declaration order; the result maps
    tenant name to its (possibly empty) trace.
    """
    tenants = list(tenants)
    children = root_seed.spawn(len(tenants))
    return {
        tenant.name: generate_tenant_trace(tenant, duration_s, child)
        for tenant, child in zip(tenants, children)
    }


def merge_arrivals(
    traces: Dict[str, List[TraceRecord]],
    tenant_order: Sequence[str],
) -> List[Tuple[float, str, int, TraceRecord]]:
    """All tenants' arrivals in one deterministic timeline.

    Returns ``(arrival_time, tenant, per_tenant_index, record)`` tuples
    sorted by arrival time with ties broken by tenant declaration
    order, then per-tenant index — a total order independent of dict
    insertion history.
    """
    rank = {name: index for index, name in enumerate(tenant_order)}
    unknown = sorted(set(traces) - set(rank))
    if unknown:
        raise ValueError(f"traces for unknown tenant(s): {unknown}")
    merged: List[Tuple[float, str, int, TraceRecord]] = []
    for name in tenant_order:
        for index, record in enumerate(traces.get(name, [])):
            merged.append((record.arrival_time, name, index, record))
    merged.sort(key=lambda item: (item[0], rank[item[1]], item[2]))
    return merged


def offered_rate_per_s(
    trace: Sequence[TraceRecord], duration_s: float
) -> float:
    """Mean offered request rate of a trace over a horizon."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return len(trace) / duration_s
