"""E13/E14: the fleet-scale experiments.

**E13 — tail latency and MRM endurance at a million users a day.**
The paper's pitch is datacenter-scale economics: MRM pays off when
fleets serve "millions of users" (Section 1).  E13 stands a fleet of
≥4 clusters and 3 tenants — one of them a 70B deployment whose weights
no longer fit HBM headroom, so the autoscaler provisions it on MRM —
and drives ≥1M simulated users/day of diurnal+bursty traffic through
each routing policy.  Reported per tenant: SLO attainment by SLA
class, worst-cell p99 TTFT, users/day served, and the MRM endurance
burned per simulated day (the Figure 1 question asked by a serving
fleet instead of a device table).

**E14 — reactive vs static provisioning.**
"Five-Minute Rule"-style residency economics need a capacity planner to
act on: E14 runs the same fleet under the reactive autoscaler and under
static peak provisioning (same traces, same seed) and reports the
per-tenant capacity breakdown — replica-epochs held, MRM vs HBM
replica-epochs, peaks — plus the capacity saving reactive scaling buys
at what SLO cost.

Both experiments are pure in ``(tiny, root_seed)``; tiny variants are
the CI/golden grids.  Obs snapshots from the arms merge under an
``arm=`` label so one snapshot carries the whole experiment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.fleet import FleetConfig, run_fleet
from repro.fleet.routing import ROUTING_POLICIES
from repro.fleet.tenant import DEFAULT_TENANTS, TenantConfig
from repro.units import HOUR

#: The E13/E14 tenant mix: the default three-tenant fleet with the chat
#: tenant promoted to a 70B deployment.  Its 140 GB of weights exceed a
#: 2-GPU HBM group's MRM headroom threshold, so the autoscaler serves
#: it from MRM — giving the endurance-burn table a real workload.
E13_TENANTS = (
    replace(DEFAULT_TENANTS[0], model="llama2-70b", tp=2, max_replicas=96),
    replace(DEFAULT_TENANTS[1], max_replicas=96),
    replace(DEFAULT_TENANTS[2], max_replicas=96),
)

#: Traffic multiplier for the full E13 run, sized so the fleet admits
#: over one million simulated users/day at the horizon's diurnal phase
#: (the acceptance headline; the realized figure is in the results).
E13_RATE_SCALE = 35.0

#: Autoscaler sized for the full-scale run (the tiny grids use the
#: defaults).
E13_AUTOSCALER = AutoscalerConfig(
    cluster_capacity_replicas=48,
    fleet_max_replicas=192,
)


def e13_config(
    tiny: bool = False, routing: str = "least-loaded"
) -> FleetConfig:
    """The E13 fleet for one routing arm."""
    if tiny:
        return FleetConfig(
            tenants=E13_TENANTS,
            num_clusters=4,
            horizon_s=120.0,
            epoch_s=60.0,
            routing=routing,
            mode="auto",
        )
    return FleetConfig(
        tenants=E13_TENANTS,
        num_clusters=4,
        horizon_s=1800.0,
        epoch_s=300.0,
        routing=routing,
        mode="auto",
        autoscaler=E13_AUTOSCALER,
        rate_scale=E13_RATE_SCALE,
    )


def run_e13(
    tiny: bool = False,
    root_seed=0,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
) -> Dict[str, Any]:
    """Run E13: one fleet per routing policy over shared traces.

    ``mode`` overrides the cell evaluator for every arm (the bench uses
    this to time analytic vs DES on the same scenario).
    """
    from repro.obs import merge_snapshots, relabel_snapshot

    arms: Dict[str, Any] = {}
    snapshots = []
    for policy in ROUTING_POLICIES:
        config = e13_config(tiny=tiny, routing=policy)
        if mode is not None:
            config = replace(config, mode=mode)
        result = run_fleet(config, root_seed=root_seed, workers=workers)
        arms[policy] = result
        snapshots.append(relabel_snapshot(result["obs"], arm=policy))

    table = {
        policy: {
            tenant: {
                "users_per_day": entry["users_per_day"],
                "sla_attainment": entry["sla_attainment"],
                "ttft_p99_worst_cell_s": entry["ttft_p99_worst_cell_s"],
                "shed_total": entry["shed_total"],
                "mrm_replica_epochs": entry["mrm_replica_epochs"],
                "mrm_bytes_written": entry["mrm_bytes_written"],
                "mrm_endurance_burn_per_day": entry[
                    "mrm_endurance_burn_per_day"
                ],
            }
            for tenant, entry in arms[policy]["tenants"].items()
        }
        for policy in ROUTING_POLICIES
    }
    return {
        "experiment": "e13",
        "tiny": tiny,
        "arms": arms,
        "table": table,
        "users_per_day_total": {
            policy: arms[policy]["totals"]["users_per_day"]
            for policy in ROUTING_POLICIES
        },
        "obs": merge_snapshots(snapshots),
    }


#: Traffic multiplier for the full E14 run: moderate enough that a
#: 4-hour window spanning the diurnal trough stays tractable, large
#: enough that reactive-vs-static capacity differences are real.
E14_RATE_SCALE = 6.0

#: The E14 tenant mix: the E13 tenants re-phased so their diurnal peak
#: falls at hour 12 — the simulated window then starts in the trough
#: (~0.4× base for the chat tenant) and rides the morning ramp.  A
#: provisioning experiment needs a swing to track; at a steady diurnal
#: phase reactive trivially converges to the static plan.
E14_TENANTS = tuple(
    replace(tenant, peak_time_s=12 * HOUR) for tenant in E13_TENANTS
)

#: E14 scales down more eagerly than the default (utilization < 0.6
#: instead of < 0.4): with the window starting at the diurnal trough —
#: realized demand ~0.45× declared capacity — the default dead band
#: would never release the rate-prior provisioning and the reactive arm
#: would degenerate to the static one.
E14_AUTOSCALER = AutoscalerConfig(
    cluster_capacity_replicas=48,
    fleet_max_replicas=192,
    scale_down_utilization=0.6,
)


def e14_config(tiny: bool = False, scaling: str = "reactive") -> FleetConfig:
    """The E14 fleet for one scaling arm (routing held at the default)."""
    if tiny:
        return FleetConfig(
            tenants=E14_TENANTS,
            num_clusters=4,
            horizon_s=120.0,
            epoch_s=60.0,
            scaling=scaling,
            mode="auto",
        )
    return FleetConfig(
        tenants=E14_TENANTS,
        num_clusters=4,
        horizon_s=4 * HOUR,
        epoch_s=HOUR / 2,
        scaling=scaling,
        mode="auto",
        autoscaler=E14_AUTOSCALER,
        rate_scale=E14_RATE_SCALE,
    )


def run_e14(
    tiny: bool = False,
    root_seed=0,
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Run E14: reactive vs static provisioning on the same traces."""
    from repro.fleet.fleet import SCALING_POLICIES
    from repro.obs import merge_snapshots, relabel_snapshot

    tenant_names = [tenant.name for tenant in E14_TENANTS]

    arms: Dict[str, Any] = {}
    snapshots = []
    for scaling in SCALING_POLICIES:
        config = e14_config(tiny=tiny, scaling=scaling)
        result = run_fleet(config, root_seed=root_seed, workers=workers)
        arms[scaling] = result
        snapshots.append(relabel_snapshot(result["obs"], arm=scaling))

    table: Dict[str, Dict[str, Any]] = {}
    for tenant in tenant_names:
        reactive = arms["reactive"]["tenants"][tenant]
        static = arms["static"]["tenants"][tenant]
        saving = (
            1.0 - reactive["replica_epochs"] / static["replica_epochs"]
            if static["replica_epochs"] > 0
            else 0.0
        )
        table[tenant] = {
            "reactive_replica_epochs": reactive["replica_epochs"],
            "static_replica_epochs": static["replica_epochs"],
            "capacity_saving": saving,
            "reactive_peak": reactive["replica_peak"],
            "static_peak": static["replica_peak"],
            "reactive_mrm_replica_epochs": reactive["mrm_replica_epochs"],
            "static_mrm_replica_epochs": static["mrm_replica_epochs"],
            "reactive_sla_attainment": reactive["sla_attainment"],
            "static_sla_attainment": static["sla_attainment"],
            "reactive_shed_total": reactive["shed_total"],
            "static_shed_total": static["shed_total"],
        }
    return {
        "experiment": "e14",
        "tiny": tiny,
        "arms": arms,
        "table": table,
        "obs": merge_snapshots(snapshots),
    }
