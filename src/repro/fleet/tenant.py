"""Tenants: the unit of multi-tenancy in a serving fleet.

Section 2 frames the paper's economics at datacenter scale: "many
inference requests are multiplexed over the same cluster, but all of
them are for the same model".  A *fleet* hosts many such model
deployments at once — each one a :class:`TenantConfig` here — and the
fleet layer's job is to provision, route and serve all of them from a
shared pool of simulated clusters.

A tenant bundles:

- **what it serves** — a model + accelerator + tensor-parallel group
  (the same catalog keys ``python -m repro serve`` uses);
- **how its traffic looks** — a Splitwise token-length profile, an SLA
  mix, a base arrival rate, and the diurnal/bursty modulation knobs
  :mod:`repro.fleet.arrivals` composes over it;
- **how it is provisioned** — replica bounds and the per-replica
  request-rate target the autoscaler and router both plan against;
- **how scale is reported** — ``requests_per_user_day`` converts an
  offered request rate into the "simulated users per day" figure the
  E13 headline is stated in.

Everything is a frozen dataclass of plain values so tenant configs are
picklable across sweep workers and hashable into cache keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.units import DAY, HOUR
from repro.workload.distributions import (
    SPLITWISE_CODE,
    SPLITWISE_CONVERSATION,
    TokenLengthProfile,
)
from repro.workload.requests import SLAClass

#: Token-length profiles a tenant may name (keys are config strings so
#: tenants stay picklable; the profile objects are looked up on use).
TENANT_PROFILES: Dict[str, TokenLengthProfile] = {
    "conversation": SPLITWISE_CONVERSATION,
    "code": SPLITWISE_CODE,
}


@dataclass(frozen=True)
class TenantConfig:
    """One model deployment sharing the fleet.

    Attributes
    ----------
    name:
        Tenant label; becomes the ``tenant=`` metric label, so it must
        be unique within a fleet.
    model / accelerator / tp / max_batch_size:
        The deployment: catalog keys resolved through
        :func:`repro.inference.sweep.resolve_model` /
        :func:`~repro.inference.sweep.resolve_accelerator`, the
        tensor-parallel group size and the engine batch cap.
    profile:
        Token-length profile key in :data:`TENANT_PROFILES`.
    rate_per_s:
        Fleet-wide mean arrival rate for this tenant at the diurnal
        baseline.  ``0`` is a legal *zero-traffic* tenant (provisioned
        but idle — the empty-tenant regression case).
    sla_mix:
        ``((sla_value, probability), ...)`` pairs summing to 1, in
        draw order (tuple, not dict, so the config hashes).
    diurnal_amplitude / peak_time_s:
        Sinusoidal day-shape: the instantaneous rate swings by
        ``±amplitude`` around ``rate_per_s`` peaking at ``peak_time_s``
        (seconds into the simulated day).
    burst_multiplier / mean_quiet_s / mean_burst_s:
        Two-state burst modulation on top of the diurnal shape: during
        a burst the modulated rate is multiplied by
        ``burst_multiplier``; sojourn times are exponential with the
        given means.  ``burst_multiplier=1`` disables bursts.
    target_rps_per_replica:
        Requests/s one replica of this deployment is provisioned to
        absorb — the autoscaler's demand-to-replicas conversion and the
        router's drain-rate estimate.
    min_replicas / max_replicas:
        Autoscaler bounds for this tenant (fleet-wide).
    requests_per_user_day:
        Mean requests one user issues per day; converts offered load
        into simulated users/day.
    """

    name: str
    model: str = "llama2-13b"
    accelerator: str = "h100-80g"
    tp: int = 2
    max_batch_size: int = 16
    profile: str = "conversation"
    rate_per_s: float = 1.0
    sla_mix: Tuple[Tuple[str, float], ...] = (
        (SLAClass.INTERACTIVE.value, 1.0),
    )
    diurnal_amplitude: float = 0.0
    peak_time_s: float = 0.0
    burst_multiplier: float = 1.0
    mean_quiet_s: float = 60.0
    mean_burst_s: float = 10.0
    target_rps_per_replica: float = 1.0
    min_replicas: int = 0
    max_replicas: int = 64
    requests_per_user_day: float = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a non-empty name")
        if self.profile not in TENANT_PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; known: "
                f"{', '.join(sorted(TENANT_PROFILES))}"
            )
        if self.rate_per_s < 0:
            raise ValueError("arrival rate must be >= 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")
        if self.mean_quiet_s <= 0 or self.mean_burst_s <= 0:
            raise ValueError("burst sojourn means must be positive")
        if self.target_rps_per_replica <= 0:
            raise ValueError("per-replica rate target must be positive")
        if self.min_replicas < 0:
            raise ValueError("replica floor must be >= 0")
        if self.max_replicas < max(1, self.min_replicas):
            raise ValueError("replica cap must be >= max(1, floor)")
        if self.requests_per_user_day <= 0:
            raise ValueError("requests/user/day must be positive")
        total = math.fsum(weight for _sla, weight in self.sla_mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"SLA mix must sum to 1, got {total}")
        for sla_value, weight in self.sla_mix:
            SLAClass(sla_value)  # raises on unknown class values
            if weight < 0:
                raise ValueError("SLA mix weights must be >= 0")

    @property
    def token_profile(self) -> TokenLengthProfile:
        return TENANT_PROFILES[self.profile]

    @property
    def peak_rate_per_s(self) -> float:
        """Upper envelope of the modulated rate (thinning ceiling)."""
        return (
            self.rate_per_s
            * (1.0 + self.diurnal_amplitude)
            * self.burst_multiplier
        )

    def users_per_day(self, offered_rate_per_s: float) -> float:
        """Simulated users/day behind an offered request rate."""
        return offered_rate_per_s * DAY / self.requests_per_user_day


def validate_tenants(tenants) -> Tuple[TenantConfig, ...]:
    """Check a tenant set for fleet use (unique names, non-empty)."""
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError("a fleet needs at least one tenant")
    names = [tenant.name for tenant in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names: {names}")
    return tenants


#: The default three-tenant mix the E13/E14 experiments serve: an
#: interactive chat product with a strong day shape, a bursty coding
#: assistant, and a flat batch/summarization tenant.  Models are kept
#: at the 13B scale so the DES arms of the experiments stay tractable;
#: the *shapes* (diurnal swing, bursts, SLA mixes) are what the fleet
#: layer is exercising.
DEFAULT_TENANTS: Tuple[TenantConfig, ...] = (
    TenantConfig(
        name="chat",
        model="llama2-13b",
        accelerator="h100-80g",
        tp=2,
        profile="conversation",
        rate_per_s=2.0,
        sla_mix=((SLAClass.INTERACTIVE.value, 1.0),),
        diurnal_amplitude=0.6,
        peak_time_s=14 * HOUR,
        burst_multiplier=1.5,
        mean_quiet_s=120.0,
        mean_burst_s=15.0,
        target_rps_per_replica=1.0,
        max_replicas=64,
        requests_per_user_day=12.0,
    ),
    TenantConfig(
        name="code",
        model="llama2-13b",
        accelerator="h100-80g",
        tp=2,
        profile="code",
        rate_per_s=1.5,
        sla_mix=(
            (SLAClass.INTERACTIVE.value, 0.8),
            (SLAClass.THROUGHPUT.value, 0.2),
        ),
        diurnal_amplitude=0.4,
        peak_time_s=11 * HOUR,
        burst_multiplier=2.0,
        mean_quiet_s=60.0,
        mean_burst_s=10.0,
        target_rps_per_replica=1.5,
        max_replicas=48,
        requests_per_user_day=30.0,
    ),
    TenantConfig(
        name="batch",
        model="llama2-13b",
        accelerator="a100-80g",
        tp=2,
        profile="conversation",
        rate_per_s=1.0,
        sla_mix=(
            (SLAClass.THROUGHPUT.value, 0.5),
            (SLAClass.BEST_EFFORT.value, 0.5),
        ),
        diurnal_amplitude=0.1,
        peak_time_s=2 * HOUR,
        burst_multiplier=1.0,
        target_rps_per_replica=1.0,
        max_replicas=32,
        requests_per_user_day=4.0,
    ),
)
