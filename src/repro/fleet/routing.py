"""Fleet-level request routing: tenant arrivals onto clusters.

The fleet has two dispatch layers.  *Inside* a cluster the existing
join-shortest-queue dispatcher (:class:`repro.inference.cluster.Cluster`)
places requests on engines.  *Above* the clusters, this module decides
which cluster serves each arriving request — the decision a real
front-end makes before a request ever reaches an inference scheduler.

Three policy families:

- ``least-loaded`` — route to the candidate cluster with the lowest
  estimated outstanding work per replica (ties by cluster id);
- ``tenant-affinity`` — each tenant prefers a *home* rotation of
  clusters (cache/locality affinity); it spills to the least-loaded
  candidate only when the home's estimated load crosses
  ``spill_outstanding_per_replica``;
- ``power-of-two`` — classic two-random-choices: sample two candidate
  clusters from the router's seeded stream, route to the less loaded.

The router never inspects simulator state (routing happens *before*
cell evaluation, so cells stay independent and fan out across sweep
workers).  Instead it runs a deterministic **work estimator**: each
``(tenant, cluster)`` replica group carries an outstanding-request
count that drains at ``replicas × target_rps_per_replica`` — the same
per-replica rate target the autoscaler provisions against.  The
estimate is deliberately simple; it is the router's *belief*, and like
any front-end load signal it can be wrong in detail while still
shaping sensible placements.

Shedding: a request is shed when its tenant has **zero replicas**
fleet-wide in the epoch (``no-capacity``), or when the chosen group's
estimated backlog exceeds ``shed_outstanding_per_replica`` requests per
replica (``overload``; ``0`` disables the bound, mirroring the
``max_queue_depth=0`` idiom in :class:`~repro.inference.resilience.
ResiliencePolicy`).  Every arrival therefore ends in exactly one of
{routed, shed} — the first leg of the fleet conservation identity the
property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.autoscaler import TenantAllocation
from repro.fleet.tenant import TenantConfig
from repro.workload.traces import TraceRecord

#: The routing policy families the fleet knows.
ROUTING_POLICIES = ("least-loaded", "tenant-affinity", "power-of-two")

#: Shed reasons a decision may carry.
SHED_NO_CAPACITY = "no-capacity"
SHED_OVERLOAD = "overload"


@dataclass(frozen=True)
class RoutingDecision:
    """Where one arrival went (or why it did not)."""

    tenant: str
    index: int  # per-tenant arrival index
    epoch: int
    arrival_time: float
    cluster: Optional[int]  # None when shed
    shed_reason: Optional[str] = None

    @property
    def shed(self) -> bool:
        return self.cluster is None


class FleetRouter:
    """Deterministic fleet-level router over an epoch capacity plan.

    Parameters
    ----------
    tenants:
        Fleet tenants in declaration order (the order fixes affinity
        rotations and tie-breaks).
    num_clusters:
        Cluster count; clusters are addressed ``0..num_clusters-1``.
    policy:
        One of :data:`ROUTING_POLICIES`.
    seed:
        Seed stream for the power-of-two choices (unused by the other
        policies, but always consumed from the same child so policy
        comparisons share tenant traces).
    spill_outstanding_per_replica:
        Tenant-affinity spill threshold (estimated outstanding requests
        per replica at the home cluster).
    shed_outstanding_per_replica:
        Shed threshold on the *chosen* group's estimated backlog;
        ``0`` disables shedding by overload.
    """

    def __init__(
        self,
        tenants: Sequence[TenantConfig],
        num_clusters: int,
        policy: str = "least-loaded",
        seed: Optional[np.random.SeedSequence] = None,
        spill_outstanding_per_replica: float = 4.0,
        shed_outstanding_per_replica: float = 0.0,
    ) -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; known: "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        if num_clusters < 1:
            raise ValueError("need at least one cluster")
        if spill_outstanding_per_replica <= 0:
            raise ValueError("spill threshold must be positive")
        if shed_outstanding_per_replica < 0:
            raise ValueError("shed threshold must be >= 0")
        self.policy = policy
        self.num_clusters = num_clusters
        self.tenants = {tenant.name: tenant for tenant in tenants}
        self._rank = {
            tenant.name: index for index, tenant in enumerate(tenants)
        }
        self.spill_outstanding_per_replica = spill_outstanding_per_replica
        self.shed_outstanding_per_replica = shed_outstanding_per_replica
        self._rng = np.random.default_rng(
            seed if seed is not None else np.random.SeedSequence(0)
        )
        # Work estimator state per (tenant, cluster): outstanding
        # request estimate and the time it was last drained to.
        self._outstanding: Dict[Tuple[str, int], float] = {}
        self._drained_at: Dict[Tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    # Work estimator
    # ------------------------------------------------------------------
    def _drain(self, tenant: TenantConfig, cluster: int, now: float,
               replicas: int) -> float:
        """Outstanding estimate for a group, drained to ``now``."""
        key = (tenant.name, cluster)
        outstanding = self._outstanding.get(key, 0.0)
        last = self._drained_at.get(key, 0.0)
        if now > last:
            rate = replicas * tenant.target_rps_per_replica
            outstanding = max(0.0, outstanding - rate * (now - last))
        self._outstanding[key] = outstanding
        self._drained_at[key] = max(last, now)
        return outstanding

    # ------------------------------------------------------------------
    # Policy choice
    # ------------------------------------------------------------------
    def _choose(
        self,
        tenant: TenantConfig,
        candidates: List[int],
        loads: Dict[int, float],
    ) -> int:
        """Pick a cluster among ``candidates`` (all with replicas)."""
        if self.policy == "least-loaded":
            return min(candidates, key=lambda c: (loads[c], c))
        if self.policy == "tenant-affinity":
            rotation = self._rank[tenant.name] % len(candidates)
            home = candidates[rotation]
            if loads[home] < self.spill_outstanding_per_replica:
                return home
            return min(candidates, key=lambda c: (loads[c], c))
        # power-of-two: two seeded draws over the candidate list.  Both
        # draws always happen so the stream stays aligned across
        # requests regardless of candidate-set size.
        first = int(self._rng.integers(len(candidates)))
        second = int(self._rng.integers(len(candidates)))
        a, b = candidates[first], candidates[second]
        return min((a, b), key=lambda c: (loads[c], c))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(
        self,
        merged_arrivals: Sequence[Tuple[float, str, int, TraceRecord]],
        epoch_plan: Sequence[Dict[str, TenantAllocation]],
        epoch_s: float,
    ) -> List[RoutingDecision]:
        """Route a merged arrival timeline against an epoch plan.

        ``merged_arrivals`` comes from
        :func:`repro.fleet.arrivals.merge_arrivals`;
        ``epoch_plan[e][tenant]`` is the epoch's
        :class:`~repro.fleet.autoscaler.TenantAllocation`.
        """
        if epoch_s <= 0:
            raise ValueError("epoch length must be positive")
        decisions: List[RoutingDecision] = []
        for arrival_time, name, index, _record in merged_arrivals:
            tenant = self.tenants[name]
            epoch = min(int(arrival_time // epoch_s), len(epoch_plan) - 1)
            allocation = epoch_plan[epoch].get(name)
            per_cluster = (
                dict(allocation.per_cluster) if allocation is not None else {}
            )
            candidates = sorted(
                cluster
                for cluster, replicas in per_cluster.items()
                if replicas > 0
            )
            if not candidates:
                decisions.append(
                    RoutingDecision(
                        tenant=name, index=index, epoch=epoch,
                        arrival_time=arrival_time, cluster=None,
                        shed_reason=SHED_NO_CAPACITY,
                    )
                )
                continue
            loads = {
                cluster: self._drain(
                    tenant, cluster, arrival_time, per_cluster[cluster]
                )
                / per_cluster[cluster]
                for cluster in candidates
            }
            chosen = self._choose(tenant, candidates, loads)
            threshold = self.shed_outstanding_per_replica
            if threshold > 0 and loads[chosen] >= threshold:
                decisions.append(
                    RoutingDecision(
                        tenant=name, index=index, epoch=epoch,
                        arrival_time=arrival_time, cluster=None,
                        shed_reason=SHED_OVERLOAD,
                    )
                )
                continue
            self._outstanding[(name, chosen)] += 1.0
            decisions.append(
                RoutingDecision(
                    tenant=name, index=index, epoch=epoch,
                    arrival_time=arrival_time, cluster=chosen,
                )
            )
        return decisions
