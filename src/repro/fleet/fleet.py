"""The fleet: N clusters, many tenants, one deterministic serving layer.

ROADMAP item 1 asks for the paper's actual operating regime — "many
inference requests ... multiplexed over the same cluster" (Section 2) at
datacenter scale — rather than one cluster serving one workload.  This
module is the composition root:

1. **arrivals** — per-tenant diurnal+bursty traces from spawned seed
   streams (:mod:`repro.fleet.arrivals`);
2. **autoscaling** — a reactive epoch plan (replicas + MRM-vs-HBM per
   tenant) from observed demand (:mod:`repro.fleet.autoscaler`);
3. **routing** — every arrival placed on a cluster (or shed) by a
   pluggable fleet policy (:mod:`repro.fleet.routing`);
4. **evaluation** — the routed work decomposes into independent
   ``(tenant, cluster, epoch)`` *cells*, each evaluated exactly like a
   ``python -m repro serve`` scenario (DES, analytic, or auto) through
   :func:`fleet_cell_point` — a pure top-level point function that
   :func:`repro.parallel.run_sweep` fans out across workers;
5. **aggregation** — cell rows fold into per-tenant / per-cluster /
   fleet tables and one labeled obs snapshot.

Determinism contract: stages 1-3 are seed-pure pre-passes, stage 4 is a
pure point function over a deterministic cell list, and stage 5 reduces
rows in grid order with sorted-key folds — so a fleet run is bit-
identical for any worker count (the ``tests/obs`` identity tests pin
this, serial vs ``REPRO_WORKERS=4``).

Why cells may be evaluated independently: replicas are *dedicated* —
the autoscaler assigns each tenant its own replica slots on each
cluster, so tenants share the fleet's capacity pool but never a batch
queue, and epochs hold capacity fixed between plan changes.  Each cell
is therefore a self-contained serving scenario: this tenant's routed
requests for this epoch, on its replicas in this cluster, JSQ-dispatched
among them by :class:`repro.inference.cluster.Cluster`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.arrivals import generate_fleet_traces, merge_arrivals
from repro.fleet.autoscaler import (
    AutoscalerConfig,
    apply_memory_config,
    mrm_tier_spec,
    epoch_count,
    epoch_demand_rps,
    plan_capacity,
    static_plan,
)
from repro.fleet.routing import ROUTING_POLICIES, FleetRouter
from repro.fleet.tenant import TenantConfig, DEFAULT_TENANTS, validate_tenants
from repro.units import DAY
from repro.workload.traces import TraceRecord

#: Capacity-planning policies a fleet may select.
SCALING_POLICIES = ("reactive", "static")

#: Obs schema tag for fleet snapshots.
FLEET_OBS_SCHEMA = "repro.fleet/1"


@dataclass(frozen=True)
class FleetConfig:
    """One fleet scenario (picklable, hashable, validation on build)."""

    tenants: Tuple[TenantConfig, ...] = DEFAULT_TENANTS
    num_clusters: int = 4
    horizon_s: float = 600.0
    epoch_s: float = 120.0
    routing: str = "least-loaded"
    scaling: str = "reactive"
    mode: str = "auto"  # cell evaluator: des | analytic | auto
    autoscaler: AutoscalerConfig = AutoscalerConfig()
    spill_outstanding_per_replica: float = 4.0
    shed_outstanding_per_replica: float = 0.0
    #: Uniform traffic multiplier — the E13 scale knob (tenant *shapes*
    #: stay fixed while the fleet's user population grows).
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        from repro.inference.sweep import SERVE_MODES

        validate_tenants(self.tenants)
        if self.num_clusters < 1:
            raise ValueError("need at least one cluster")
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if not 0 < self.epoch_s <= self.horizon_s:
            raise ValueError("epoch must be in (0, horizon]")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; known: "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        if self.scaling not in SCALING_POLICIES:
            raise ValueError(
                f"unknown scaling policy {self.scaling!r}; known: "
                f"{', '.join(SCALING_POLICIES)}"
            )
        if self.mode not in SERVE_MODES:
            raise ValueError(
                f"unknown serve mode {self.mode!r}; known: "
                f"{', '.join(SERVE_MODES)}"
            )
        if self.rate_scale <= 0:
            raise ValueError("rate scale must be positive")

    def scaled_tenants(self) -> Tuple[TenantConfig, ...]:
        """Tenants with the fleet's traffic multiplier applied."""
        if self.rate_scale == 1.0:  # repro-lint: disable=RL006 -- exact default, not a computed float
            return self.tenants
        return tuple(
            replace(tenant, rate_per_s=tenant.rate_per_s * self.rate_scale)
            for tenant in self.tenants
        )

    def epochs(self) -> int:
        return epoch_count(self.horizon_s, self.epoch_s)


def fleet_cell_point(
    point: Mapping[str, Any], seed: np.random.SeedSequence
) -> dict:
    """Evaluate one ``(tenant, cluster, epoch)`` cell; pure in ``point``.

    The point carries everything the cell needs as plain values (model
    and accelerator catalog keys, memory config, replica count, the
    routed records with epoch-relative arrival times), so the function
    is picklable and fans out across sweep workers.  The sweep seed is
    unused — cells replay fixed traces — but kept for the
    :func:`repro.parallel.run_sweep` point-function contract.
    """
    from repro.inference.analytic import (
        UnsupportedScenario,
        analytic_cluster_report,
    )
    from repro.inference.cluster import Cluster, tensor_parallel_group
    from repro.inference.sweep import (
        SERVE_MODES,
        report_to_dict,
        resolve_accelerator,
        resolve_model,
    )
    from repro.sim import Simulator

    del seed  # cells are trace replays; nothing stochastic remains
    mode = point["mode"]
    if mode not in SERVE_MODES:
        raise ValueError(
            f"unknown serve mode {mode!r}; known: {', '.join(SERVE_MODES)}"
        )
    model = resolve_model(point["model"])
    accelerator = tensor_parallel_group(
        resolve_accelerator(point["accelerator"]), int(point["tp"])
    )
    accelerator, placement = apply_memory_config(
        accelerator, point["memory"]
    )
    replicas = int(point["replicas"])
    if replicas < 1:
        raise ValueError("a cell needs at least one replica")
    records = [
        TraceRecord(
            arrival_time=arrival,
            prompt_tokens=int(prompt),
            output_tokens=int(output),
            sla=sla,
        )
        for arrival, prompt, output, sla in point["records"]
    ]

    report = None
    fallback = False
    if mode in ("analytic", "auto"):
        try:
            report = analytic_cluster_report(
                accelerator,
                model,
                (record.to_request() for record in records),
                num_engines=replicas,
                placement=placement or None,
                max_batch_size=int(point["batch"]),
            )
            evaluated = "analytic"
        except UnsupportedScenario:
            if mode == "analytic":
                raise  # explicit analytic stays strict (sweep idiom)
            fallback = True
    if report is None:
        sim = Simulator()
        cluster = Cluster(
            sim,
            accelerator,
            model,
            num_engines=replicas,
            placement=placement or None,
            max_batch_size=int(point["batch"]),
        )
        report = cluster.run(record.to_request() for record in records)
        evaluated = "des"

    sla_admitted: Dict[str, int] = {}
    for record in records:
        sla_admitted[record.sla] = sla_admitted.get(record.sla, 0) + 1
    result = report_to_dict(report)
    result["mode"] = evaluated
    result["analytic_fallback"] = fallback
    result["tenant"] = point["tenant"]
    result["cluster"] = int(point["cluster"])
    result["epoch"] = int(point["epoch"])
    result["memory"] = point["memory"]
    result["replicas"] = replicas
    result["admitted"] = len(records)
    result["sla_admitted"] = dict(sorted(sla_admitted.items()))
    return result


def build_cells(
    config: FleetConfig,
    root_seed=0,
) -> Tuple[List[dict], Dict[str, Any]]:
    """Stages 1-3: traces, capacity plan, routing → the cell point list.

    Returns ``(points, context)`` where ``context`` carries the
    pre-pass artifacts aggregation needs (traces, plan, decisions,
    scaled tenants).  Pure in ``(config, root_seed)``.
    """
    tenants = config.scaled_tenants()
    root = (
        root_seed
        if isinstance(root_seed, np.random.SeedSequence)
        else np.random.SeedSequence(int(root_seed))
    )
    trace_seed, router_seed = root.spawn(2)
    traces = generate_fleet_traces(tenants, config.horizon_s, trace_seed)
    demand = epoch_demand_rps(
        traces, tenants, config.horizon_s, config.epoch_s
    )
    planner = plan_capacity if config.scaling == "reactive" else static_plan
    plan = planner(tenants, demand, config.num_clusters, config.autoscaler)
    merged = merge_arrivals(traces, [tenant.name for tenant in tenants])
    router = FleetRouter(
        tenants,
        config.num_clusters,
        policy=config.routing,
        seed=router_seed,
        spill_outstanding_per_replica=config.spill_outstanding_per_replica,
        shed_outstanding_per_replica=config.shed_outstanding_per_replica,
    )
    decisions = router.route(merged, plan, config.epoch_s)

    # Group routed arrivals into (tenant, cluster, epoch) cells with
    # epoch-relative arrival times.  Cell order is the deterministic
    # grid order: tenant declaration rank, then cluster, then epoch.
    by_tenant = {tenant.name: tenant for tenant in tenants}
    cells: Dict[Tuple[str, int, int], List[Tuple[float, int, int, str]]] = {}
    for (arrival, name, _index, record), decision in zip(merged, decisions):
        if decision.shed:
            continue
        key = (name, decision.cluster, decision.epoch)
        cells.setdefault(key, []).append(
            (
                arrival - decision.epoch * config.epoch_s,
                record.prompt_tokens,
                record.output_tokens,
                record.sla,
            )
        )
    rank = {tenant.name: index for index, tenant in enumerate(tenants)}
    points: List[dict] = []
    for key in sorted(cells, key=lambda k: (rank[k[0]], k[1], k[2])):
        name, cluster, epoch = key
        tenant = by_tenant[name]
        allocation = plan[epoch][name]
        points.append(
            {
                "tenant": name,
                "cluster": cluster,
                "epoch": epoch,
                "model": tenant.model,
                "accelerator": tenant.accelerator,
                "tp": tenant.tp,
                "batch": tenant.max_batch_size,
                "memory": allocation.memory,
                "replicas": allocation.replicas_in(cluster),
                "mode": config.mode,
                "records": tuple(cells[key]),
            }
        )
    context = {
        "tenants": tenants,
        "traces": traces,
        "demand": demand,
        "plan": plan,
        "decisions": decisions,
    }
    return points, context


def _weighted_sla_attainment(
    rows: Sequence[dict],
) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Fold cell SLA attainment into class fractions weighted by each
    cell's admitted class counts (exact while every routed request
    completes, which holds in the fault-free fleet).  Classes with zero
    requests report vacuous ``1.0``."""
    weighted: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for row in rows:
        for sla, count in sorted(row["sla_admitted"].items()):
            fraction = row["sla_attainment"].get(sla, 1.0)
            weighted[sla] = weighted.get(sla, 0.0) + fraction * count
            counts[sla] = counts.get(sla, 0) + count
    attainment = {}
    for sla in sorted(counts):
        attainment[sla] = (
            weighted[sla] / counts[sla] if counts[sla] > 0 else 1.0
        )
    return attainment, counts


def _resolve_tenant_model(tenant: TenantConfig):
    from repro.inference.sweep import resolve_model

    return resolve_model(tenant.model)


def _tenant_mrm_constants(tenant: TenantConfig) -> Tuple[float, float]:
    """(capacity bytes, endurance cycles) of one replica's MRM tier."""
    from repro.inference.cluster import tensor_parallel_group
    from repro.inference.sweep import resolve_accelerator

    accelerator = tensor_parallel_group(
        resolve_accelerator(tenant.accelerator), tenant.tp
    )
    spec = mrm_tier_spec(accelerator.tier("hbm"))
    return float(spec.capacity_bytes), float(spec.profile.endurance_cycles)


def aggregate_fleet(
    config: FleetConfig,
    rows: Sequence[dict],
    context: Mapping[str, Any],
) -> Dict[str, Any]:
    """Stage 5: fold cell rows + pre-pass context into the fleet result.

    Deterministic: iterates rows in grid order and dict folds in sorted
    key order, so the result (and its obs snapshot) is bit-identical
    across worker counts.
    """
    from repro.obs import MetricsRegistry

    tenants: Sequence[TenantConfig] = context["tenants"]
    traces = context["traces"]
    plan = context["plan"]
    decisions = context["decisions"]
    epochs = config.epochs()

    by_tenant_rows: Dict[str, List[dict]] = {t.name: [] for t in tenants}
    for row in rows:
        by_tenant_rows[row["tenant"]].append(row)

    shed_counts: Dict[str, Dict[str, int]] = {
        tenant.name: {} for tenant in tenants
    }
    routed_counts: Dict[str, int] = {tenant.name: 0 for tenant in tenants}
    for decision in decisions:
        if decision.shed:
            per = shed_counts[decision.tenant]
            per[decision.shed_reason] = per.get(decision.shed_reason, 0) + 1
        else:
            routed_counts[decision.tenant] += 1

    obs = MetricsRegistry()
    obs.info("fleet_schema").set(FLEET_OBS_SCHEMA)
    obs.info("fleet_routing").set(config.routing)
    obs.info("fleet_scaling").set(config.scaling)
    obs.info("fleet_mode").set(config.mode)

    tenant_tables: Dict[str, Dict[str, Any]] = {}
    cluster_tables: Dict[str, Dict[str, Any]] = {
        str(cluster): {
            "requests_completed": 0,
            "tokens_generated": 0,
            "access_energy_j": 0.0,
            "board_energy_j": 0.0,
            "replica_epochs": 0,
        }
        for cluster in range(config.num_clusters)
    }
    for epoch in range(epochs):
        for tenant in tenants:
            allocation = plan[epoch][tenant.name]
            for cluster, count in allocation.per_cluster:
                cluster_tables[str(cluster)]["replica_epochs"] += count

    for tenant in tenants:
        t_rows = by_tenant_rows[tenant.name]
        admitted = len(traces.get(tenant.name, []))
        routed = routed_counts[tenant.name]
        shed = shed_counts[tenant.name]
        shed_total = sum(shed[reason] for reason in sorted(shed))
        completed = sum(r["requests_completed"] for r in t_rows)
        failed = sum(r["requests_failed"] for r in t_rows)
        tokens = sum(r["tokens_generated"] for r in t_rows)
        access_j = math.fsum(r["access_energy_j"] for r in t_rows)
        board_j = math.fsum(r["board_energy_j"] for r in t_rows)
        attainment, sla_counts = _weighted_sla_attainment(t_rows)
        ttft_worst = 0.0
        for row in t_rows:
            value = row["ttft_p99_s"]
            if not math.isnan(value):
                ttft_worst = max(ttft_worst, value)

        replica_epochs = 0
        replica_peak = 0
        mrm_replica_epochs = 0
        for epoch in range(epochs):
            allocation = plan[epoch][tenant.name]
            replica_epochs += allocation.replicas
            replica_peak = max(replica_peak, allocation.replicas)
            if allocation.memory == "mrm":
                mrm_replica_epochs += allocation.replicas

        # Serving-path writes to the MRM tier (zero while only weights
        # are placed there) plus weight-load writes implied by the plan:
        # every replica that newly enters the MRM configuration writes
        # the model's weights once — the deployment-swap wear that
        # :mod:`repro.inference.deployment` prices per device.
        serving_bytes = math.fsum(
            r["tier_bytes_written"].get("mrm", 0.0) for r in t_rows
        )
        weights_bytes = float(
            _resolve_tenant_model(tenant).weights_bytes
        )
        weight_loads = 0
        previous_mrm = 0
        for epoch in range(epochs):
            allocation = plan[epoch][tenant.name]
            current_mrm = (
                allocation.replicas if allocation.memory == "mrm" else 0
            )
            weight_loads += max(0, current_mrm - previous_mrm)
            previous_mrm = current_mrm
        weight_load_bytes = weight_loads * weights_bytes
        mrm_bytes_written = serving_bytes + weight_load_bytes
        capacity, endurance = _tenant_mrm_constants(tenant)
        if mrm_replica_epochs > 0:
            # Time-weighted provisioned MRM bytes; burn is the fraction
            # of the provisioned pool's total write endurance consumed,
            # scaled to a per-simulated-day rate.
            provisioned = capacity * (mrm_replica_epochs / epochs)
            burn_per_day = (
                mrm_bytes_written
                / (provisioned * endurance)
                * (DAY / config.horizon_s)
            )
        else:
            burn_per_day = 0.0

        offered_rate = admitted / config.horizon_s
        users_day = tenant.users_per_day(offered_rate)

        tenant_tables[tenant.name] = {
            "admitted": admitted,
            "routed": routed,
            "shed": dict(sorted(shed.items())),
            "shed_total": shed_total,
            "requests_completed": completed,
            "requests_failed": failed,
            "in_flight": routed - completed - failed,
            "tokens_generated": tokens,
            "access_energy_j": access_j,
            "board_energy_j": board_j,
            "sla_attainment": attainment,
            "sla_counts": sla_counts,
            "ttft_p99_worst_cell_s": ttft_worst,
            "replica_epochs": replica_epochs,
            "replica_peak": replica_peak,
            "mrm_replica_epochs": mrm_replica_epochs,
            "mrm_weight_loads": weight_loads,
            "mrm_bytes_written": mrm_bytes_written,
            "mrm_endurance_burn_per_day": burn_per_day,
            "offered_rate_per_s": offered_rate,
            "users_per_day": users_day,
        }

        labels = {"tenant": tenant.name}
        obs.counter("fleet_requests_admitted", **labels).add(admitted)
        obs.counter("fleet_requests_routed", **labels).add(routed)
        for reason in sorted(shed):
            obs.counter(
                "fleet_requests_shed", reason=reason, **labels
            ).add(shed[reason])
        obs.counter("fleet_requests_completed", **labels).add(completed)
        obs.counter("fleet_requests_failed", **labels).add(failed)
        obs.counter("fleet_tokens_generated", **labels).add(tokens)
        obs.counter("fleet_mrm_bytes_written", **labels).add(
            mrm_bytes_written
        )
        obs.gauge("fleet_replica_epochs", **labels).set(replica_epochs)
        obs.gauge("fleet_replica_peak", **labels).set(replica_peak)
        obs.gauge("fleet_mrm_replica_epochs", **labels).set(
            mrm_replica_epochs
        )
        obs.gauge("fleet_users_per_day", **labels).set(users_day)
        obs.gauge("fleet_ttft_p99_worst_cell_s", **labels).set(ttft_worst)
        obs.gauge("fleet_mrm_endurance_burn_per_day", **labels).set(
            burn_per_day
        )
        for sla in sorted(attainment):
            obs.gauge(
                "fleet_sla_attainment", sla=sla, **labels
            ).set(attainment[sla])

    for row in rows:
        table = cluster_tables[str(row["cluster"])]
        table["requests_completed"] += row["requests_completed"]
        table["tokens_generated"] += row["tokens_generated"]
        table["access_energy_j"] += row["access_energy_j"]
        table["board_energy_j"] += row["board_energy_j"]
        labels = {"cluster": row["cluster"], "tenant": row["tenant"]}
        obs.counter("fleet_cell_requests_completed", **labels).add(
            row["requests_completed"]
        )
        obs.counter("fleet_cell_tokens_generated", **labels).add(
            row["tokens_generated"]
        )
    for cluster in sorted(cluster_tables, key=int):
        table = cluster_tables[cluster]
        obs.counter(
            "fleet_cluster_requests_completed", cluster=cluster
        ).add(table["requests_completed"])
        obs.counter(
            "fleet_cluster_tokens_generated", cluster=cluster
        ).add(table["tokens_generated"])
        obs.gauge("fleet_cluster_replica_epochs", cluster=cluster).set(
            table["replica_epochs"]
        )

    modes = {"des": 0, "analytic": 0}
    for row in rows:
        modes[row["mode"]] += 1
    for mode in sorted(modes):
        obs.counter("fleet_cells", mode=mode).add(modes[mode])

    totals = {
        "admitted": sum(
            tenant_tables[name]["admitted"] for name in sorted(tenant_tables)
        ),
        "routed": sum(
            tenant_tables[name]["routed"] for name in sorted(tenant_tables)
        ),
        "shed": sum(
            tenant_tables[name]["shed_total"]
            for name in sorted(tenant_tables)
        ),
        "requests_completed": sum(
            tenant_tables[name]["requests_completed"]
            for name in sorted(tenant_tables)
        ),
        "requests_failed": sum(
            tenant_tables[name]["requests_failed"]
            for name in sorted(tenant_tables)
        ),
        "tokens_generated": sum(
            tenant_tables[name]["tokens_generated"]
            for name in sorted(tenant_tables)
        ),
        "users_per_day": math.fsum(
            tenant_tables[name]["users_per_day"]
            for name in sorted(tenant_tables)
        ),
        "num_cells": len(rows),
        "cells_analytic": modes["analytic"],
        "cells_des": modes["des"],
    }
    obs.gauge("fleet_users_per_day_total").set(totals["users_per_day"])

    return {
        "config": {
            "tenants": [tenant.name for tenant in tenants],
            "num_clusters": config.num_clusters,
            "horizon_s": config.horizon_s,
            "epoch_s": config.epoch_s,
            "epochs": epochs,
            "routing": config.routing,
            "scaling": config.scaling,
            "mode": config.mode,
            "rate_scale": config.rate_scale,
        },
        "tenants": tenant_tables,
        "clusters": cluster_tables,
        "totals": totals,
        "obs": obs.snapshot(),
    }


def run_fleet(
    config: FleetConfig,
    root_seed=0,
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one fleet scenario end to end; pure in ``(config, root_seed)``.

    ``workers`` follows the :func:`repro.parallel.run_sweep` convention
    (``None`` → ``REPRO_WORKERS`` or serial); results are bit-identical
    for any worker count.
    """
    points, context = build_cells(config, root_seed=root_seed)
    from repro.parallel import run_sweep

    rows = run_sweep(
        fleet_cell_point, points, root_seed=root_seed, workers=workers
    )
    return aggregate_fleet(config, rows, context)
