"""Fleet-scale multi-tenant serving simulation (ROADMAP item 1).

Layers a fleet of simulated clusters over the single-cluster serving
stack: trace-driven tenant arrivals (:mod:`~repro.fleet.arrivals`),
reactive MRM-vs-HBM capacity planning (:mod:`~repro.fleet.autoscaler`),
pluggable fleet routing (:mod:`~repro.fleet.routing`) and the cell
decomposition + aggregation that keeps it all bit-identical across
sweep workers (:mod:`~repro.fleet.fleet`).  Experiments E13/E14 live in
:mod:`~repro.fleet.experiment`; see ``docs/FLEET.md``.
"""

from repro.fleet.arrivals import (
    diurnal_multiplier,
    generate_fleet_traces,
    generate_tenant_trace,
    merge_arrivals,
    offered_rate_per_s,
)
from repro.fleet.autoscaler import (
    AutoscalerConfig,
    TenantAllocation,
    apply_memory_config,
    epoch_count,
    epoch_demand_rps,
    mrm_tier_spec,
    plan_capacity,
    static_plan,
)
from repro.fleet.fleet import (
    FLEET_OBS_SCHEMA,
    SCALING_POLICIES,
    FleetConfig,
    aggregate_fleet,
    build_cells,
    fleet_cell_point,
    run_fleet,
)
from repro.fleet.routing import (
    ROUTING_POLICIES,
    SHED_NO_CAPACITY,
    SHED_OVERLOAD,
    FleetRouter,
    RoutingDecision,
)
from repro.fleet.tenant import (
    DEFAULT_TENANTS,
    TENANT_PROFILES,
    TenantConfig,
    validate_tenants,
)

__all__ = [
    "AutoscalerConfig",
    "DEFAULT_TENANTS",
    "FLEET_OBS_SCHEMA",
    "FleetConfig",
    "FleetRouter",
    "ROUTING_POLICIES",
    "RoutingDecision",
    "SCALING_POLICIES",
    "SHED_NO_CAPACITY",
    "SHED_OVERLOAD",
    "TENANT_PROFILES",
    "TenantAllocation",
    "TenantConfig",
    "aggregate_fleet",
    "apply_memory_config",
    "build_cells",
    "diurnal_multiplier",
    "epoch_count",
    "epoch_demand_rps",
    "fleet_cell_point",
    "generate_fleet_traces",
    "generate_tenant_trace",
    "merge_arrivals",
    "mrm_tier_spec",
    "offered_rate_per_s",
    "plan_capacity",
    "run_fleet",
    "static_plan",
    "validate_tenants",
]
