"""Metric recorders for simulations.

These are deliberately simple and allocation-light so simulations can
record millions of samples:

- :class:`Counter` — monotonically increasing tally (events, bytes).
- :class:`TimeWeightedValue` — integrates a piecewise-constant signal over
  simulated time (queue depth, occupancy, power draw) and reports its
  time-weighted mean.
- :class:`Histogram` — fixed-bin histogram with exact count/sum and
  approximate quantiles.
- :class:`RateMeter` — counts per unit of simulated time.
- :class:`MetricRegistry` — a named bag of all of the above, with a
  ``snapshot()`` for report generation.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Union

import numpy as np
from repro.lint.effects.contracts import declared_pure


class Counter:
    """Monotonic event/byte counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class TimeWeightedValue:
    """Time-weighted integral of a piecewise-constant signal.

    Call :meth:`set` whenever the signal changes; the recorder integrates
    the previous level over the elapsed simulated time.
    """

    __slots__ = ("name", "_level", "_last_time", "_area", "_max", "_min", "_started")

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0) -> None:
        self.name = name
        self._level = initial
        self._last_time = start_time
        self._area = 0.0
        self._max = initial
        self._min = initial
        self._started = start_time

    @property
    def level(self) -> float:
        """Current signal level."""
        return self._level

    @property
    def peak(self) -> float:
        return self._max

    @property
    def trough(self) -> float:
        return self._min

    def set(self, now: float, level: float) -> None:
        """Record that the signal becomes ``level`` at time ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards in {self.name!r}: {now} < {self._last_time}"
            )
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        self._max = max(self._max, level)
        self._min = min(self._min, level)

    def adjust(self, now: float, delta: float) -> None:
        """Add ``delta`` to the current level at time ``now``."""
        self.set(now, self._level + delta)

    @declared_pure
    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean from creation until ``now`` (default: last update)."""
        end = self._last_time if now is None else now
        span = end - self._started
        if span <= 0:
            return self._level
        area = self._area + self._level * (end - self._last_time)
        return area / span


class Histogram:
    """Histogram with exact moments and sorted-sample quantiles.

    Keeps every sample (simulations here record millions) in a growable
    NumPy buffer — amortised O(1) ingestion with no per-sample Python
    object, C-speed sorting for quantiles, and a vectorised
    :meth:`observe_many` bulk path for batched recorders.
    """

    __slots__ = ("name", "_buf", "_n", "_sorted", "_sum", "_sumsq")

    _INITIAL_CAPACITY = 64

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buf = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0
        self._sorted = True
        self._sum = 0.0
        self._sumsq = 0.0

    def _grow_to(self, need: int) -> None:
        """Grow to ``max(2x, need)`` in one allocation and one copy.

        At-least-doubling keeps ingestion amortised O(1) per sample for
        any interleaving of scalar :meth:`observe` calls and
        :meth:`observe_many` bursts: a burst far beyond the current
        capacity is sized exactly (no power-of-two overshoot on huge
        arrays), while small spills still double so the number of
        reallocations stays logarithmic in the sample count.
        """
        capacity = max(2 * len(self._buf), need)
        grown = np.empty(capacity, dtype=np.float64)
        grown[: self._n] = self._buf[: self._n]
        self._buf = grown

    def observe(self, value: float) -> None:
        n = self._n
        if n and self._sorted and value < self._buf[n - 1]:
            self._sorted = False
        if n == len(self._buf):
            self._grow_to(n + 1)
        self._buf[n] = value
        self._n = n + 1
        self._sum += value
        self._sumsq += value * value

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk ingestion: one NumPy copy instead of a Python loop.

        Moments accumulate with NumPy's (deterministic) pairwise
        summation, which may round differently from an equivalent
        sequence of scalar :meth:`observe` calls — batched recorders
        should ingest consistently through one path.
        """
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        n = self._n
        need = n + arr.size
        if need > len(self._buf):
            self._grow_to(need)
        self._buf[n:need] = arr
        if self._sorted and (
            (n and arr[0] < self._buf[n - 1])
            or (arr.size > 1 and bool(np.any(np.diff(arr) < 0)))
        ):
            self._sorted = False
        self._n = need
        self._sum += float(np.add.reduce(arr))
        self._sumsq += float(np.add.reduce(arr * arr))

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @declared_pure
    def mean(self) -> float:
        if not self._n:
            return float("nan")
        return self._sum / self._n

    @declared_pure
    def stdev(self) -> float:
        n = self._n
        if n < 2:
            return 0.0
        mean = self._sum / n
        var = max(0.0, self._sumsq / n - mean * mean)
        return math.sqrt(var)

    def _ensure_sorted(self) -> np.ndarray:
        view = self._buf[: self._n]
        if not self._sorted:
            view.sort()
            self._sorted = True
        return view

    def samples(self) -> np.ndarray:
        """A copy of the recorded samples (insertion order not kept
        once a quantile has been asked for)."""
        return self._buf[: self._n].copy()

    def quantile(self, q: float) -> Optional[float]:
        """Exact empirical quantile, linear interpolation between ranks.

        Returns ``None`` when no samples have been recorded — callers
        must handle the empty case explicitly rather than propagate a
        quiet NaN into reports.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        samples = self._ensure_sorted()
        n = samples.size
        if n == 0:
            return None
        if n == 1:
            return float(samples[0])
        pos = q * (n - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return float(samples[lo] * (1 - frac) + samples[hi] * frac)

    def median(self) -> Optional[float]:
        return self.quantile(0.5)

    def max(self) -> float:
        return float(self._ensure_sorted()[-1]) if self._n else float("nan")

    def min(self) -> float:
        return float(self._ensure_sorted()[0]) if self._n else float("nan")

    def cdf(self, value: float) -> float:
        """Fraction of samples <= value."""
        samples = self._ensure_sorted()
        if samples.size == 0:
            return float("nan")
        rank = int(np.searchsorted(samples, value, side="right"))
        return rank / samples.size


class RateMeter:
    """Counts per unit of simulated time over an observation window."""

    __slots__ = ("name", "_count", "_start")

    def __init__(self, name: str = "", start_time: float = 0.0) -> None:
        self.name = name
        self._count = 0.0
        self._start = start_time

    def tick(self, amount: float = 1.0) -> None:
        self._count += amount

    @declared_pure
    def rate(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return 0.0
        return self._count / span

    @property
    def count(self) -> float:
        return self._count


MetricLike = Union[Counter, TimeWeightedValue, Histogram, RateMeter]


class MetricRegistry:
    """A named collection of metrics with lazy creation.

    >>> reg = MetricRegistry()
    >>> reg.counter("reads").add(3)
    >>> reg.snapshot()["reads"]
    3.0
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricLike] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def time_weighted(self, name: str, start_time: float = 0.0) -> TimeWeightedValue:
        metric = self._metrics.get(name)
        if metric is None:
            metric = TimeWeightedValue(name, start_time=start_time)
            self._metrics[name] = metric
        elif not isinstance(metric, TimeWeightedValue):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}")
        return metric

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def rate(self, name: str, start_time: float = 0.0) -> RateMeter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = RateMeter(name, start_time=start_time)
            self._metrics[name] = metric
        elif not isinstance(metric, RateMeter):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}")
        return metric

    def _get(self, name: str, cls: type) -> MetricLike:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}, not {cls.__name__}")
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> Sequence[str]:
        return sorted(self._metrics)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        """One representative scalar per metric (counter value, TW mean,
        histogram mean, rate count)."""
        out: Dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, TimeWeightedValue):
                out[name] = metric.mean(now)
            elif isinstance(metric, Histogram):
                out[name] = metric.mean()
            elif isinstance(metric, RateMeter):
                out[name] = metric.count
        return out
