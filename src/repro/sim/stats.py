"""Metric recorders for simulations.

These are deliberately simple and allocation-light so simulations can
record millions of samples:

- :class:`Counter` — monotonically increasing tally (events, bytes).
- :class:`TimeWeightedValue` — integrates a piecewise-constant signal over
  simulated time (queue depth, occupancy, power draw) and reports its
  time-weighted mean.
- :class:`Histogram` — fixed-bin histogram with exact count/sum and
  approximate quantiles.
- :class:`RateMeter` — counts per unit of simulated time.
- :class:`MetricRegistry` — a named bag of all of the above, with a
  ``snapshot()`` for report generation.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Union


class Counter:
    """Monotonic event/byte counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class TimeWeightedValue:
    """Time-weighted integral of a piecewise-constant signal.

    Call :meth:`set` whenever the signal changes; the recorder integrates
    the previous level over the elapsed simulated time.
    """

    __slots__ = ("name", "_level", "_last_time", "_area", "_max", "_min", "_started")

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0) -> None:
        self.name = name
        self._level = initial
        self._last_time = start_time
        self._area = 0.0
        self._max = initial
        self._min = initial
        self._started = start_time

    @property
    def level(self) -> float:
        """Current signal level."""
        return self._level

    @property
    def peak(self) -> float:
        return self._max

    @property
    def trough(self) -> float:
        return self._min

    def set(self, now: float, level: float) -> None:
        """Record that the signal becomes ``level`` at time ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards in {self.name!r}: {now} < {self._last_time}"
            )
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        self._max = max(self._max, level)
        self._min = min(self._min, level)

    def adjust(self, now: float, delta: float) -> None:
        """Add ``delta`` to the current level at time ``now``."""
        self.set(now, self._level + delta)

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean from creation until ``now`` (default: last update)."""
        end = self._last_time if now is None else now
        span = end - self._started
        if span <= 0:
            return self._level
        area = self._area + self._level * (end - self._last_time)
        return area / span


class Histogram:
    """Histogram with exact moments and sorted-sample quantiles.

    Keeps every sample (simulations here record at most a few hundred
    thousand), so quantiles are exact rather than bin-approximated.
    """

    __slots__ = ("name", "_samples", "_sorted", "_sum", "_sumsq")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted = True
        self._sum = 0.0
        self._sumsq = 0.0

    def observe(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)
        self._sum += value
        self._sumsq += value * value

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return self._sum

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return self._sum / len(self._samples)

    def stdev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean = self._sum / n
        var = max(0.0, self._sumsq / n - mean * mean)
        return math.sqrt(var)

    def _ensure_sorted(self) -> List[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def quantile(self, q: float) -> float:
        """Exact empirical quantile, linear interpolation between ranks."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        samples = self._ensure_sorted()
        if not samples:
            return float("nan")
        if len(samples) == 1:
            return samples[0]
        pos = q * (len(samples) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1 - frac) + samples[hi] * frac

    def median(self) -> float:
        return self.quantile(0.5)

    def max(self) -> float:
        return self._ensure_sorted()[-1] if self._samples else float("nan")

    def min(self) -> float:
        return self._ensure_sorted()[0] if self._samples else float("nan")

    def cdf(self, value: float) -> float:
        """Fraction of samples <= value."""
        samples = self._ensure_sorted()
        if not samples:
            return float("nan")
        return bisect.bisect_right(samples, value) / len(samples)


class RateMeter:
    """Counts per unit of simulated time over an observation window."""

    __slots__ = ("name", "_count", "_start")

    def __init__(self, name: str = "", start_time: float = 0.0) -> None:
        self.name = name
        self._count = 0.0
        self._start = start_time

    def tick(self, amount: float = 1.0) -> None:
        self._count += amount

    def rate(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return 0.0
        return self._count / span

    @property
    def count(self) -> float:
        return self._count


MetricLike = Union[Counter, TimeWeightedValue, Histogram, RateMeter]


class MetricRegistry:
    """A named collection of metrics with lazy creation.

    >>> reg = MetricRegistry()
    >>> reg.counter("reads").add(3)
    >>> reg.snapshot()["reads"]
    3.0
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricLike] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def time_weighted(self, name: str, start_time: float = 0.0) -> TimeWeightedValue:
        metric = self._metrics.get(name)
        if metric is None:
            metric = TimeWeightedValue(name, start_time=start_time)
            self._metrics[name] = metric
        elif not isinstance(metric, TimeWeightedValue):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}")
        return metric

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def rate(self, name: str, start_time: float = 0.0) -> RateMeter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = RateMeter(name, start_time=start_time)
            self._metrics[name] = metric
        elif not isinstance(metric, RateMeter):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}")
        return metric

    def _get(self, name: str, cls: type) -> MetricLike:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}, not {cls.__name__}")
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> Sequence[str]:
        return sorted(self._metrics)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        """One representative scalar per metric (counter value, TW mean,
        histogram mean, rate count)."""
        out: Dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, TimeWeightedValue):
                out[name] = metric.mean(now)
            elif isinstance(metric, Histogram):
                out[name] = metric.mean()
            elif isinstance(metric, RateMeter):
                out[name] = metric.count
        return out
