"""The discrete-event simulation kernel (event loop).

:class:`Simulator` owns the clock and the event queue.  Time only moves
when the loop pops the next event; between events, callbacks and process
steps run instantaneously at the current simulated time.

The loop is batched: the queue hands back whole same-timestamp *cohorts*
(see :meth:`repro.sim.events.EventQueue.pop_cohort`) and the kernel
dispatches each payload through a closure-free opcode switch — a plain
tuple ``(opcode, ...)`` for process wakeups, resource grants and throws,
or an :class:`~repro.sim.events.Event` to fire.  Nothing on the per-event
path allocates a lambda (rule RL019) and the clock/observability updates
are paid once per cohort instead of once per event.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Generator, Optional

from repro.sim.events import (
    OP_BOOT,
    OP_GRANT,
    OP_STEP,
    OP_THROW,
    OP_THROW_RAW,
    Event,
    EventQueue,
)
from repro.sim.process import Process


class Simulator:
    """Deterministic discrete-event simulator.

    Time units are whatever the caller chooses (this library uses
    seconds everywhere).  Determinism: same schedule order in, same
    execution order out — ties in time break by scheduling order.

    Observability is opt-in: pass a :class:`repro.obs.MetricsRegistry`
    as ``obs`` to count events/spawns (plus a deterministic
    ``sim.events_per_sec`` gauge — events per *simulated* second, never
    wall time), and a :class:`repro.obs.Tracer` as ``tracer`` to open
    one simulated-time span per process.  Both default to off; the hot
    loop then pays one ``is not None`` branch per cohort (asserted < 2%
    in ``benchmarks/obs/``).

    Example
    -------
    >>> sim = Simulator()
    >>> sim.schedule(5.0, lambda ev: None)
    >>> sim.run()
    >>> sim.now
    5.0
    """

    __slots__ = (
        "_now",
        "_start",
        "_queue",
        "_running",
        "_events_done",
        "_obs_events",
        "_obs_spawns",
        "_obs_eps",
        "_tracer",
        "_sanitizer",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        obs: Any = None,
        tracer: Any = None,
    ) -> None:
        self._now = float(start_time)
        self._start = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_done = 0
        # Bind the counters once so the per-event cost with obs off (or
        # the null registry) is a single attribute check, not a lookup.
        live = obs is not None and obs.enabled
        self._obs_events = obs.counter("sim.events_total") if live else None
        self._obs_spawns = obs.counter("sim.processes_spawned_total") if live else None
        self._obs_eps = obs.gauge("sim.events_per_sec") if live else None
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        if self._tracer is not None:
            self._tracer.set_clock(self._clock)
        # Runtime cohort sanitizer (REPRO_SANITIZE=1): same null-binding
        # pattern as obs — disabled costs one `is not None` per cohort.
        # Imported lazily so the sim package never pays for the lint
        # stack unless the sanitizer is actually requested.
        self._sanitizer = None
        if os.environ.get("REPRO_SANITIZE", "") == "1":
            from repro.lint.races.sanitizer import get_sanitizer

            self._sanitizer = get_sanitizer()

    def _clock(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Optional[Callable[[Event], None]] = None,
        value: Any = None,
        name: str = "",
    ) -> Event:
        """Create an event that fires ``delay`` from now; return it.

        ``callback`` (if given) is registered on the event.  ``value``
        becomes the event payload.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(name=name)
        event.value = value
        if callback is not None:
            event.add_callback(callback)
        self._queue.push(self._now + delay, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Optional[Callable[[Event], None]] = None,
        value: Any = None,
        name: str = "",
    ) -> Event:
        """Like :meth:`schedule` but with an absolute timestamp."""
        return self.schedule(time - self._now, callback, value, name)

    def event(self, name: str = "") -> Event:
        """Create an unscheduled event, to be triggered manually."""
        return Event(name=name)

    def trigger(self, event: Event, value: Any = None, delay: float = 0.0) -> None:
        """Schedule a manual event to fire ``delay`` from now with ``value``."""
        event.value = value
        self._queue.push(self._now + delay, event)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a simulation process.

        The first step runs at the current time (via a zero-delay
        wakeup) so that spawning inside a callback is safe.
        """
        process = Process(self, generator, name=name)
        if self._obs_spawns is not None:
            self._obs_spawns.add()
        if self._tracer is not None:
            # Span names come from Process.name (generator __name__ or
            # the caller's label) — deterministic, unlike event reprs.
            # The span handle rides on the process and closes when the
            # generator finishes (see Process._finish) — no callback
            # closure on the done event.
            span = self._tracer.begin(f"process:{process.name}")
            process._trace = (self._tracer, span)
        self._queue.push_wakeup(self._now, (OP_BOOT, process))
        return process

    def _throw_into(self, process: Process, exc: BaseException) -> None:
        self._queue.push_wakeup(self._now, (OP_THROW_RAW, process, exc))

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _dispatch(self, payload: Any) -> None:
        """Fire one queue payload: an opcode tuple or an Event."""
        if payload.__class__ is tuple:
            op = payload[0]
            if op == OP_STEP:
                payload[1]._step_if(payload[2], payload[3])
            elif op == OP_BOOT:
                payload[1]._step(None)
            elif op == OP_GRANT:
                payload[1]._grant(payload[2], payload[3])
            elif op == OP_THROW:
                payload[1]._step_if(payload[2], throw=payload[3])
            else:  # OP_THROW_RAW
                payload[1]._step(throw=payload[2])
        else:
            payload._fire()

    def step(self) -> bool:
        """Process the single earliest event.  Return False if none left."""
        if not self._queue:
            return False
        time, payload = self._queue.pop()
        if time < self._now:
            raise RuntimeError(f"time went backwards: {time} < {self._now}")
        self._now = time
        self._events_done += 1
        if self._obs_events is not None:
            self._obs_events.add()
        self._dispatch(payload)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` (events at later times stay queued).
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        queue = self._queue
        obs_events = self._obs_events
        sanitizer = self._sanitizer
        try:
            if max_events is None:
                # Hot path: opcode dispatch inlined into the loop body so
                # each event costs zero extra method calls.  Whether the
                # clock stops at `until` because later events remain or
                # because the queue drained, it lands on exactly `until`,
                # so no peek is needed.
                pop_cohort = queue.pop_cohort
                while True:
                    cohort = pop_cohort(until)
                    if cohort is None:
                        break
                    time, payloads = cohort
                    if time < self._now:
                        raise RuntimeError(
                            f"time went backwards: {time} < {self._now}"
                        )
                    self._now = time
                    count = len(payloads)
                    processed += count
                    self._events_done += count
                    if obs_events is not None:
                        # One exact integer add per cohort: bit-identical
                        # to count repeated add(1) calls (integers are
                        # exact in float64 far beyond any event count).
                        obs_events.add(count)
                    if sanitizer is not None and count > 1:
                        sanitizer.observe_cohort(time, payloads)
                    for payload in payloads:
                        if payload.__class__ is tuple:
                            op = payload[0]
                            if op == OP_STEP:
                                process = payload[1]
                                if payload[2] == process._wait_generation:
                                    process._step(payload[3])
                            elif op == OP_BOOT:
                                payload[1]._step(None)
                            elif op == OP_GRANT:
                                payload[1]._grant(payload[2], payload[3])
                            elif op == OP_THROW:
                                process = payload[1]
                                if payload[2] == process._wait_generation:
                                    process._step(None, payload[3])
                            else:  # OP_THROW_RAW
                                payload[1]._step(throw=payload[2])
                        else:
                            payload._fire()
                if until is not None and until > self._now:
                    self._now = until
                return
            # Bounded path: max_events needs a peek before every cohort so
            # the stop-at-`until` check keeps priority over the budget.
            while True:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    return
                if processed >= max_events:
                    return
                time, payloads = queue.pop_cohort(until, max_events - processed)
                if time < self._now:
                    raise RuntimeError(f"time went backwards: {time} < {self._now}")
                self._now = time
                count = len(payloads)
                processed += count
                self._events_done += count
                if obs_events is not None:
                    obs_events.add(count)
                if sanitizer is not None and count > 1:
                    sanitizer.observe_cohort(time, payloads)
                for payload in payloads:
                    self._dispatch(payload)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            if self._obs_eps is not None:
                elapsed = self._now - self._start
                if elapsed > 0.0:
                    # Deterministic throughput gauge: events per
                    # *simulated* second (RL011 bans wall clocks here).
                    self._obs_eps.set(self._events_done / elapsed)

    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
