"""The discrete-event simulation kernel (event loop).

:class:`Simulator` owns the clock and the event queue.  Time only moves
when the loop pops the next event; between events, callbacks and process
steps run instantaneously at the current simulated time.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.process import Process


class Simulator:
    """Deterministic discrete-event simulator.

    Time units are whatever the caller chooses (this library uses
    seconds everywhere).  Determinism: same schedule order in, same
    execution order out — ties in time break by scheduling order.

    Observability is opt-in: pass a :class:`repro.obs.MetricsRegistry`
    as ``obs`` to count events/spawns, and a :class:`repro.obs.Tracer`
    as ``tracer`` to open one simulated-time span per process.  Both
    default to off; the hot loop then pays one ``is not None`` branch
    per event (asserted < 2% in ``benchmarks/obs/``).

    Example
    -------
    >>> sim = Simulator()
    >>> sim.schedule(5.0, lambda ev: None)
    >>> sim.run()
    >>> sim.now
    5.0
    """

    __slots__ = (
        "_now",
        "_queue",
        "_running",
        "_obs_events",
        "_obs_spawns",
        "_tracer",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        obs: Any = None,
        tracer: Any = None,
    ) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        # Bind the counters once so the per-event cost with obs off (or
        # the null registry) is a single attribute check, not a lookup.
        live = obs is not None and obs.enabled
        self._obs_events = obs.counter("sim.events_total") if live else None
        self._obs_spawns = obs.counter("sim.processes_spawned_total") if live else None
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        if self._tracer is not None:
            self._tracer.set_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Optional[Callable[[Event], None]] = None,
        value: Any = None,
        name: str = "",
    ) -> Event:
        """Create an event that fires ``delay`` from now; return it.

        ``callback`` (if given) is registered on the event.  ``value``
        becomes the event payload.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(name=name)
        event.value = value
        if callback is not None:
            event.add_callback(callback)
        self._queue.push(self._now + delay, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Optional[Callable[[Event], None]] = None,
        value: Any = None,
        name: str = "",
    ) -> Event:
        """Like :meth:`schedule` but with an absolute timestamp."""
        return self.schedule(time - self._now, callback, value, name)

    def event(self, name: str = "") -> Event:
        """Create an unscheduled event, to be triggered manually."""
        return Event(name=name)

    def trigger(self, event: Event, value: Any = None, delay: float = 0.0) -> None:
        """Schedule a manual event to fire ``delay`` from now with ``value``."""
        event.value = value
        self._queue.push(self._now + delay, event)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a simulation process.

        The first step runs at the current time (via a zero-delay event)
        so that spawning inside a callback is safe.
        """
        process = Process(self, generator, name=name)
        if self._obs_spawns is not None:
            self._obs_spawns.add()
        if self._tracer is not None:
            # Span names come from Process.name (generator __name__ or
            # the caller's label) — deterministic, unlike event reprs.
            span = self._tracer.begin(f"process:{process.name}")
            tracer = self._tracer
            process.done.add_callback(lambda _ev: tracer.end(span))
        self.schedule(0.0, lambda _ev: process._step(None))
        return process

    def _throw_into(self, process: Process, exc: BaseException) -> None:
        self.schedule(0.0, lambda _ev: process._step(throw=exc))

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the single earliest event.  Return False if none left."""
        if not self._queue:
            return False
        time, event = self._queue.pop()
        if time < self._now:
            raise RuntimeError(f"time went backwards: {time} < {self._now}")
        self._now = time
        if self._obs_events is not None:
            self._obs_events.add()
        event._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` (events at later times stay queued).
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self._now = until
                    return
                if max_events is not None and processed >= max_events:
                    return
                self.step()
                processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
