"""Event objects and the simulator's time-ordered event queue.

Events are the unit of scheduling in the kernel.  An :class:`Event` may be
*fired* at a simulated time with a payload; callbacks registered on it run
when the kernel processes it.  The :class:`EventQueue` orders entries by
``(time, sequence)`` so that entries scheduled for the same instant run in
the order they were scheduled (a stable, deterministic tiebreak — critical
for reproducible simulations).

The queue is a two-level batched structure rather than a binary heap: a
time-sorted live level popped O(1) from its tail, fed by a push-order
pending buffer that migrates in batches via ``numpy.argsort`` +
``numpy.searchsorted``.  That keeps the per-push cost at two list
appends, lets the kernel pop whole same-timestamp cohorts as slices, and
turns the steady-state "short timeout against a backlog of far-future
events" pattern into an O(1) tail extend instead of an O(log n) sift.
"""

from __future__ import annotations

import numpy as np
from repro.lint.effects.contracts import declared_pure
from typing import Any, Callable, List, Optional, Tuple

# Opcode tags for closure-free kernel wakeups.  A queue payload is either
# an :class:`Event` (fired on pop) or a plain tuple whose first element is
# one of these opcodes (dispatched by ``Simulator._dispatch`` without
# allocating a per-event closure — see ROADMAP item 2 / rule RL019).
OP_STEP = 0  # (OP_STEP, process, generation, value) -> process._step_if
OP_BOOT = 1  # (OP_BOOT, process)                    -> process._step(None)
OP_THROW = 2  # (OP_THROW, process, generation, exc) -> process._step_if(throw=exc)
OP_GRANT = 3  # (OP_GRANT, resource, process, generation) -> resource._grant
OP_THROW_RAW = 4  # (OP_THROW_RAW, process, exc)     -> process._step(throw=exc)

_INF = float("inf")


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, may be scheduled (given a time), and is
    *fired* exactly once by the kernel, at which point its callbacks run
    in registration order with ``(event)`` as the argument.

    Attributes
    ----------
    value:
        Arbitrary payload attached when the event is triggered.
    fired:
        True once the kernel has processed the event.
    """

    __slots__ = ("callbacks", "value", "fired", "scheduled", "_name")

    def __init__(self, name: str = "") -> None:
        # Lazily allocated: most events in a big run never get a
        # callback (pure timeouts), so skipping the empty list halves
        # the allocations on the scheduling hot path.
        self.callbacks: Optional[List[Any]] = None
        self.value: Any = None
        self.fired: bool = False
        self.scheduled: bool = False
        self._name = name

    @property
    def name(self) -> str:
        return self._name or f"event@{id(self):#x}"

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event fires.

        If the event has already fired, the callback runs immediately —
        this makes "wait on a possibly-complete event" race-free.
        """
        if self.fired:
            fn(self)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def _add_waiter(self, process: Any, generation: int) -> None:
        """Register a process wakeup without allocating a closure.

        The ``(process, generation)`` pair sits in the same callbacks
        list as plain callables and preserves registration order; the
        fired-already case resumes immediately, mirroring
        :meth:`add_callback`.
        """
        if self.fired:
            process._step_if(generation, self.value)
        elif self.callbacks is None:
            self.callbacks = [(process, generation)]
        else:
            self.callbacks.append((process, generation))

    def _fire(self) -> None:
        if self.fired:
            raise RuntimeError(f"event {self.name} fired twice")
        self.fired = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                if fn.__class__ is tuple:
                    fn[0]._step_if(fn[1], self.value)
                else:
                    fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("scheduled" if self.scheduled else "pending")
        return f"<Event {self.name} {state}>"


class EventQueue:
    """Two-level batched priority queue ordered by ``(time, seq)``.

    **Tie-break contract** (load-bearing; see
    ``tests/sim/test_events.py::TestTieBreakContract``): entries pushed
    with *equal* times pop in exactly the order they were pushed, for
    any number of ties and regardless of what is interleaved between
    them.  The parallel sweep engine (:mod:`repro.parallel`) relies on
    this: a simulation's execution order — and therefore its result —
    is a pure function of its schedule order, never of timing noise,
    which is what makes per-point runs reproducible across worker
    processes.

    Layout: the *live* level ``(_lt, _lp)`` holds times/payloads sorted
    in **descending** time order, so the queue front is the end of the
    list — pops are O(1) ``list.pop()`` on unboxed Python floats, and a
    same-timestamp cohort is a slice off the tail.  Pushes land in the
    *pending* level ``(_pend_t, _pend_p)`` in push order (O(1) appends,
    no comparisons).  Pending migrates to live lazily, in batches, and
    only when an entry could precede the live head: the batch is
    stable-sorted (``numpy.argsort``, skipped when already in time
    order) and the strictly-earlier-than-head prefix — located with one
    ``searchsorted`` — is reversed onto the live tail.  Entries at or
    after the head stay buffered; they cannot pop yet, and equal-time
    pendings were pushed later so they belong after every live tie
    anyway.  The live level therefore only ever *extends with entries
    earlier than its head*: there is no rebuild path, and each entry is
    appended, sorted, migrated and popped exactly once — amortised
    O(log batch) per event with all batch work in C.

    Sequence order is implicit: the pending lists record push order, the
    stable sort preserves it, and a merge never reorders live entries,
    so FIFO among equal times holds without storing counters.
    """

    __slots__ = ("_lt", "_lp", "_pend_t", "_pend_p", "_pend_min")

    def __init__(self) -> None:
        #: live times, descending (queue front at the end of the list)
        self._lt: List[float] = []
        #: live payloads, parallel to ``_lt``
        self._lp: List[Any] = []
        self._pend_t: List[float] = []
        self._pend_p: List[Any] = []
        self._pend_min = _INF

    def __len__(self) -> int:
        return len(self._lt) + len(self._pend_t)

    def __bool__(self) -> bool:
        return bool(self._lt) or bool(self._pend_t)

    def push(self, time: float, event: Event) -> None:
        """Schedule *event* to fire at simulated *time*."""
        if event.scheduled:
            raise RuntimeError(f"event {event.name} scheduled twice")
        if time != time:  # NaN guard
            raise ValueError("event time is NaN")
        event.scheduled = True
        self._pend_t.append(time)
        self._pend_p.append(event)
        if time < self._pend_min:
            self._pend_min = time

    def push_wakeup(self, time: float, payload: tuple) -> None:
        """Schedule an opcode-tuple wakeup (no :class:`Event` bookkeeping).

        Process timeouts, resource grants and interrupt throws go through
        here: two list appends and no per-event object or closure.
        """
        if time != time:  # NaN guard
            raise ValueError("event time is NaN")
        self._pend_t.append(time)
        self._pend_p.append(payload)
        if time < self._pend_min:
            self._pend_min = time

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)`` pair."""
        if not self._ensure_front():
            raise IndexError("pop from empty EventQueue")
        return self._lt.pop(), self._lp.pop()

    def pop_cohort(
        self, until: Optional[float] = None, limit: Optional[int] = None
    ) -> Optional[Tuple[float, List[Any]]]:
        """Remove the earliest same-timestamp cohort as one batch.

        Returns ``(time, payloads)`` with payloads in push order, or
        ``None`` when the queue is empty or the head lies beyond
        ``until``.  ``limit`` caps the cohort size (the remainder stays
        queued and pops first on the next call, preserving order).

        **Cohort contract** (pinned by ``tests/sim/test_events.py::
        TestCohortPermutation``): payloads come back in exactly push
        order for *every* permutation of same-timestamp pushes,
        regardless of interleaved times or merge boundaries.  Cohort
        order is therefore a pure function of registration order —
        which is precisely why the races layer (RL021/RL023) flags
        registrations whose order is itself nondeterministic.
        """
        # _ensure_front, inlined (this is the hottest call in a run).
        lt = self._lt
        if self._pend_t and (not lt or self._pend_min < lt[-1]):
            self._merge()
            lt = self._lt
        if not lt:
            return None
        time = lt[-1]
        if until is not None and time > until:
            return None
        n = len(lt)
        if n == 1 or lt[n - 2] != time:
            # Singleton cohort (the common case under continuous time
            # distributions): two O(1) pops, no slicing.
            lt.pop()
            return time, (self._lp.pop(),)
        j = n - 2
        while j > 0 and lt[j - 1] == time:
            j -= 1
        if limit is not None and n - j > limit:
            j = n - limit
        lp = self._lp
        payloads = lp[j:]
        # Descending storage keeps the earliest-pushed tie at the end;
        # reversing the slice restores push (FIFO) order.
        payloads.reverse()
        del lt[j:]
        del lp[j:]
        return time, payloads

    @declared_pure
    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest entry, or None if empty."""
        lt = self._lt
        if lt:
            head = lt[-1]
            pend_min = self._pend_min
            return head if head <= pend_min else pend_min
        if self._pend_t:
            return self._pend_min
        return None

    # ------------------------------------------------------------------
    # Merge machinery
    # ------------------------------------------------------------------
    def _ensure_front(self) -> bool:
        """Migrate pending entries iff one could precede the live head.

        Returns True when the live level is non-empty afterwards.
        """
        lt = self._lt
        if self._pend_t and (not lt or self._pend_min < lt[-1]):
            self._merge()
        return bool(self._lt)

    def _merge(self) -> None:
        """Migrate the pending entries that precede the live head.

        Called only when ``_pend_min`` beats the live head (or the live
        level is empty).  The pending batch is stable-sorted by time —
        push order breaks ties, so no sequence numbers are needed — and
        the strictly-earlier-than-head prefix moves onto the live tail
        (reversed: live storage is descending).  The rest stays
        buffered, already sorted, preserving push order relative to
        future pushes appended after it.
        """
        pend_t = np.asarray(self._pend_t, dtype=np.float64)
        k = pend_t.size
        # fromiter keeps tuples as scalar elements (np.asarray would
        # explode same-length tuples into a 2-D array).
        pend_p = np.fromiter(self._pend_p, dtype=object, count=k)
        if k > 1 and bool(np.any(pend_t[1:] < pend_t[:-1])):
            order = np.argsort(pend_t, kind="stable")
            pend_t = pend_t[order]
            pend_p = pend_p[order]
        lt = self._lt
        if lt:
            # Strictly-less split: an equal-time pending entry belongs
            # after every live tie (it was pushed later) so it stays
            # buffered until the live run at that timestamp drains.
            m = int(pend_t.searchsorted(lt[-1], side="left"))
        else:
            m = k
        lt.extend(pend_t[m - 1 :: -1].tolist())
        self._lp.extend(pend_p[m - 1 :: -1].tolist())
        if m == k:
            self._pend_t = []
            self._pend_p = []
            self._pend_min = _INF
        else:
            self._pend_t = pend_t[m:].tolist()
            self._pend_p = pend_p[m:].tolist()
            self._pend_min = self._pend_t[0]
