"""Event objects and the simulator's time-ordered event queue.

Events are the unit of scheduling in the kernel.  An :class:`Event` may be
*fired* at a simulated time with a payload; callbacks registered on it run
when the kernel processes it.  The :class:`EventQueue` orders events by
``(time, sequence)`` so that events scheduled for the same instant run in
the order they were scheduled (a stable, deterministic tiebreak — critical
for reproducible simulations).
"""

from __future__ import annotations

import heapq
from repro.lint.effects.contracts import declared_pure
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, may be scheduled (given a time), and is
    *fired* exactly once by the kernel, at which point its callbacks run
    in registration order with ``(event)`` as the argument.

    Attributes
    ----------
    value:
        Arbitrary payload attached when the event is triggered.
    fired:
        True once the kernel has processed the event.
    """

    __slots__ = ("callbacks", "value", "fired", "scheduled", "_name")

    def __init__(self, name: str = "") -> None:
        # Lazily allocated: most events in a big run never get a
        # callback (pure timeouts), so skipping the empty list halves
        # the allocations on the scheduling hot path.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self.value: Any = None
        self.fired: bool = False
        self.scheduled: bool = False
        self._name = name

    @property
    def name(self) -> str:
        return self._name or f"event@{id(self):#x}"

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event fires.

        If the event has already fired, the callback runs immediately —
        this makes "wait on a possibly-complete event" race-free.
        """
        if self.fired:
            fn(self)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        if self.fired:
            raise RuntimeError(f"event {self.name} fired twice")
        self.fired = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("scheduled" if self.scheduled else "pending")
        return f"<Event {self.name} {state}>"


class EventQueue:
    """Stable min-heap of ``(time, seq, event)`` entries.

    **Tie-break contract** (load-bearing; see
    ``tests/sim/test_events.py::TestTieBreakContract``): events pushed
    with *equal* times pop in exactly the order they were pushed, for
    any number of ties and regardless of what is interleaved between
    them.  The heap entry carries a monotonically increasing sequence
    number, so comparison never reaches the :class:`Event` itself and
    FIFO order among ties is independent of heap internals.  The
    parallel sweep engine (:mod:`repro.parallel`) relies on this: a
    simulation's execution order — and therefore its result — is a pure
    function of its schedule order, never of timing noise, which is
    what makes per-point runs reproducible across worker processes.

    The entry is deliberately lean — a plain 3-tuple of
    ``(float, int, Event)`` with a plain integer counter (no
    ``itertools.count`` iterator indirection), since a big serving
    simulation pushes one of these for every scheduled event.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, event: Event) -> None:
        """Schedule *event* to fire at simulated *time*."""
        if event.scheduled:
            raise RuntimeError(f"event {event.name} scheduled twice")
        if time != time:  # NaN guard
            raise ValueError("event time is NaN")
        event.scheduled = True
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, event))

    def pop(self) -> Tuple[float, Event]:
        """Remove and return the earliest ``(time, event)`` pair."""
        time, _seq, event = heapq.heappop(self._heap)
        return time, event

    @declared_pure
    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest event, or None if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
