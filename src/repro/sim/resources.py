"""Counted resources with FIFO wait queues.

A :class:`Resource` models anything with finite concurrency: an
accelerator's execution slot, a memory channel, a migration engine.
Processes acquire with ``yield Acquire(res)`` and release with
``yield Release(res)`` (or :meth:`Resource.release` from plain code).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, TYPE_CHECKING

from repro.sim.events import OP_GRANT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process


class Resource:
    """A resource with ``capacity`` interchangeable units.

    FIFO fairness: waiters are resumed in arrival order.  The resource
    never grants more than ``capacity`` units at once.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:  # noqa: F821
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or f"resource@{id(self):#x}"
        self._in_use = 0
        self._waiters: Deque[tuple] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Processes waiting to acquire."""
        return len(self._waiters)

    def _enqueue(self, process: "Process", generation: int) -> None:
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            self._deliver(process, generation)
        else:
            self._waiters.append((process, generation))

    def _deliver(self, process: "Process", generation: int) -> None:
        """Queue a zero-delay grant wakeup for *process*.

        The grant is an opcode tuple (no closure); staleness is checked
        when it fires, in :meth:`_grant`.
        """
        sim = self.sim
        sim._queue.push_wakeup(sim._now, (OP_GRANT, self, process, generation))

    def _grant(self, process: "Process", generation: int) -> None:
        """Hand a held unit to a waiter — unless the waiter has moved on
        (interrupted while queued), in which case the unit is released
        onward instead of leaking."""
        if not process._alive or process._wait_generation != generation:
            self._release()
        else:
            process._step(None)

    def _release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name}")
        if self._waiters:
            # Hand the unit straight to the next waiter: in_use stays flat.
            waiter, generation = self._waiters.popleft()
            self._deliver(waiter, generation)
        else:
            self._in_use -= 1

    def release(self) -> None:
        """Release one unit from non-process code."""
        self._release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name} {self._in_use}/{self.capacity} "
            f"queued={len(self._waiters)}>"
        )
