"""Discrete-event simulation core.

This package is the timing substrate for every simulation in the library:
the inference-cluster simulator (:mod:`repro.inference`), the MRM
controller control plane (:mod:`repro.core.controller`), and the tiering
scheduler (:mod:`repro.tiering.scheduler`) all run on top of it.

It is a small, deterministic, generator-based discrete-event kernel in the
style of SimPy, implemented from scratch so the library has no simulation
dependency:

- :class:`~repro.sim.events.EventQueue` — a stable priority queue of
  timestamped events.
- :class:`~repro.sim.kernel.Simulator` — the event loop; schedules
  callbacks and drives processes.
- :class:`~repro.sim.process.Process` — a generator-based coroutine that
  yields :class:`~repro.sim.process.Timeout`, :class:`~repro.sim.process.Wait`
  or :class:`~repro.sim.process.Acquire` commands.
- :class:`~repro.sim.resources.Resource` — a counted resource with a FIFO
  wait queue.
- :mod:`repro.sim.stats` — metric recorders (counters, time-weighted
  values, histograms, rate meters).

Example
-------
>>> from repro.sim import Simulator, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker(env, name):
...     yield Timeout(1.0)
...     log.append((env.now, name))
>>> _ = sim.spawn(worker(sim, "a"))
>>> sim.run()
>>> log
[(1.0, 'a')]
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.process import (
    Acquire,
    Interrupted,
    Process,
    Release,
    SimProcessError,
    Timeout,
    Wait,
)
from repro.sim.resources import Resource
from repro.sim.stats import (
    Counter,
    Histogram,
    MetricRegistry,
    RateMeter,
    TimeWeightedValue,
)

__all__ = [
    "Acquire",
    "Counter",
    "Event",
    "EventQueue",
    "Histogram",
    "Interrupted",
    "MetricRegistry",
    "Process",
    "RateMeter",
    "Release",
    "Resource",
    "SimProcessError",
    "Simulator",
    "TimeWeightedValue",
    "Timeout",
    "Wait",
]
