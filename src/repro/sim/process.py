"""Generator-based simulation processes and the commands they yield.

A process is a Python generator driven by the kernel.  Each ``yield``
hands the kernel a *command* describing what the process waits for next:

- :class:`Timeout` — resume after a simulated delay.
- :class:`Wait` — resume when an :class:`~repro.sim.events.Event` fires;
  the event's ``value`` is sent back into the generator.
- :class:`Acquire` — resume once a unit of a
  :class:`~repro.sim.resources.Resource` is held.
- :class:`Release` — give a unit back (resumes immediately).

A process may also ``yield`` another :class:`Process` to join it (resume
when the child finishes; the child's return value is sent back).

This mirrors SimPy's programming model while staying ~200 lines and fully
deterministic.  Wakeups are scheduled as plain opcode tuples
(:data:`repro.sim.events.OP_STEP` and friends) rather than per-event
closures, so the kernel's hot loop never allocates a lambda per step —
see rule RL019 and the batched dispatch in :mod:`repro.sim.kernel`.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, OP_STEP, OP_THROW


class Command:
    """Base class for objects a process may yield to the kernel."""

    __slots__ = ()


class Timeout(Command):
    """Suspend the yielding process for ``delay`` simulated time units."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Wait(Command):
    """Suspend until ``event`` fires; its value is sent into the process."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class Acquire(Command):
    """Suspend until one unit of ``resource`` is held by this process."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:  # noqa: F821
        self.resource = resource


class Release(Command):
    """Return one unit of ``resource``; the process resumes immediately."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:  # noqa: F821
        self.resource = resource


_UNSET = object()


class Process:
    """A running generator coroutine inside the simulator.

    Created via :meth:`repro.sim.kernel.Simulator.spawn`.  The
    :attr:`done` event fires when the generator returns; its value is the
    generator's return value.  The event is materialised lazily — a
    process nobody joins never allocates it.
    """

    __slots__ = (
        "sim",
        "generator",
        "name",
        "_alive",
        "_wait_generation",
        "_done",
        "_result",
        "_trace",
    )

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:  # noqa: F821
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._alive = True
        self._done: Optional[Event] = None
        self._result: Any = _UNSET
        self._trace: Any = None
        # Incremented whenever the process changes what it waits on; a
        # stale wakeup (older generation) is ignored, so an interrupt
        # that the process catches cannot be followed by the original
        # timeout spuriously resuming it.
        self._wait_generation = 0

    @property
    def alive(self) -> bool:
        """True until the generator has returned or been interrupted."""
        return self._alive

    @property
    def done(self) -> Event:
        """The completion event (lazily created; pre-fired if finished)."""
        event = self._done
        if event is None:
            event = Event(name=f"done:{self.name}")
            if self._result is not _UNSET:
                event.value = self._result
                event.fired = True
            self._done = event
        return event

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Throw ``exc`` (default :class:`Interrupted`) into the process.

        The process may catch it and keep running; if it does not, it
        terminates and its ``done`` event fires with the exception as the
        value.
        """
        if not self._alive:
            return
        # Invalidate whatever wakeup the process was waiting on.
        self._wait_generation += 1
        sim = self.sim
        sim._queue.push_wakeup(
            sim._now, (OP_THROW, self, self._wait_generation, exc or Interrupted())
        )

    def _step_if(
        self,
        generation: int,
        send_value: Any = None,
        throw: Optional[BaseException] = None,
    ) -> None:
        """Step only if this wakeup is still the current one."""
        if generation != self._wait_generation:
            return
        self._step(send_value, throw)

    def _finish(self, value: Any) -> None:
        """Record completion: end the trace span, fire ``done`` if built."""
        self._alive = False
        self._result = value
        trace = self._trace
        if trace is not None:
            # The span closes before joiners resume, matching the old
            # tracer-callback-registered-first ordering.
            self._trace = None
            trace[0].end(trace[1])
        event = self._done
        if event is not None:
            event.value = value
            event._fire()

    def _step(self, send_value: Any = None, throw: Optional[BaseException] = None) -> None:
        """Advance the generator one yield and interpret its command."""
        if not self._alive:
            # A stale wakeup (e.g. a Timeout that fires after the process
            # was interrupted) must not resurrect a finished process.
            return
        try:
            if throw is not None:
                command = self.generator.throw(throw)
            else:
                command = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupted as exc:
            self._finish(exc)
            return
        except Exception as exc:
            # The generator raised: the process is dead, and the failure
            # must surface from kernel.run() with simulation context —
            # not silently strand the process with _alive=True.
            self._alive = False
            raise SimProcessError(self, self.sim.now, exc) from exc
        if command.__class__ is Timeout:
            # Inlined fast path for the dominant command — one wakeup
            # tuple, no extra method call.
            generation = self._wait_generation + 1
            self._wait_generation = generation
            sim = self.sim
            sim._queue.push_wakeup(
                sim._now + command.delay, (OP_STEP, self, generation, command.value)
            )
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        sim = self.sim
        self._wait_generation += 1
        generation = self._wait_generation
        # Exact-class checks first: commands are almost always the
        # concrete classes, and `is` skips the isinstance machinery on
        # the hot path.  The isinstance fallbacks keep subclasses legal.
        cls = command.__class__
        if cls is Timeout or isinstance(command, Timeout):
            sim._queue.push_wakeup(
                sim._now + command.delay, (OP_STEP, self, generation, command.value)
            )
        elif cls is Wait or isinstance(command, Wait):
            command.event._add_waiter(self, generation)
        elif cls is Acquire or isinstance(command, Acquire):
            command.resource._enqueue(self, generation)
        elif cls is Release or isinstance(command, Release):
            command.resource._release()
            sim._queue.push_wakeup(sim._now, (OP_STEP, self, generation, None))
        elif cls is Process or isinstance(command, Process):
            command.done._add_waiter(self, generation)
        elif isinstance(command, Event):
            command._add_waiter(self, generation)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported command: {command!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


class Interrupted(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""


class SimProcessError(RuntimeError):
    """A process generator raised mid-event.

    Wraps the original exception with the process name and the simulated
    time of the failure, so a crash deep inside a long run is
    attributable without a debugger.  The original exception is chained
    (``__cause__``) and its message embedded, so ``except``/``match``
    logic written against the original text keeps working.
    """

    def __init__(
        self, process: "Process", now: float, cause: BaseException
    ) -> None:
        super().__init__(
            f"process {process.name!r} failed at t={now:.6g}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.process_name = process.name
        self.sim_time = now
        self.original = cause
