"""Reducing per-point observability snapshots from a sweep.

Sweep point functions that observe themselves (``observe: True`` in the
point config, or an explicit per-point :class:`repro.obs.MetricsRegistry`)
return their snapshot as part of the point result.  Because
:func:`repro.parallel.run_sweep` collects results in grid order
regardless of which worker produced them, reducing those snapshots here
is *order-fixed*; because :func:`repro.obs.merge_snapshots` is
commutative, the reduction is also insensitive to that order — the two
properties together make the merged snapshot bit-identical between
serial and ``REPRO_WORKERS=4`` runs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.obs.snapshot import empty_snapshot, merge_snapshots, relabel_snapshot

#: Paired-arm result keys whose nested snapshots get an ``arm`` label.
_ARM_KEYS = ("baseline", "mitigated")


def extract_snapshots(row: Any) -> Iterator[Dict[str, Any]]:
    """Yield every snapshot a sweep result row carries.

    Recognizes the repository's two result shapes:

    - a dict with an ``"obs"`` key (plain observed point);
    - a dict with paired-arm sub-dicts (``"baseline"``/``"mitigated"``)
      each carrying ``"obs"`` — yielded relabeled with ``arm=...`` so
      the arms stay distinguishable after the merge.
    """
    if not isinstance(row, dict):
        return
    if "obs" in row:
        yield row["obs"]
    for arm in _ARM_KEYS:
        sub = row.get(arm)
        if isinstance(sub, dict) and "obs" in sub:
            yield relabel_snapshot(sub["obs"], arm=arm)


def merge_sweep_snapshots(
    rows: Sequence[Any],
    extract: Optional[Callable[[Any], Iterable[Dict[str, Any]]]] = None,
) -> Dict[str, Any]:
    """Merge every snapshot in a grid-ordered sweep result list.

    ``extract`` overrides :func:`extract_snapshots` for custom result
    shapes.  Rows without snapshots contribute nothing; an all-blind
    sweep merges to the empty snapshot.
    """
    picker = extract if extract is not None else extract_snapshots
    snaps: List[Dict[str, Any]] = []
    for row in rows:
        snaps.extend(picker(row))
    if not snaps:
        return empty_snapshot()
    return merge_snapshots(snaps)
