"""Per-point seed derivation for deterministic sweeps.

The engine's determinism contract is: *a sweep point's result depends
only on its configuration and its position in the sweep, never on which
worker process ran it or in what order*.  Randomness therefore cannot
come from a shared generator that workers would consume in scheduling
order.  Instead each point receives its own :class:`numpy.random.
SeedSequence`, spawned from the sweep's root seed:

    root = SeedSequence(root_seed)
    children = root.spawn(n_points)          # children[i] -> point i

``SeedSequence.spawn`` is documented to produce independent,
reproducible child entropy streams — the same root seed and index always
yield the same child, and children do not collide with the root or each
other.  Point functions build their generator with
``np.random.default_rng(seed_sequence)``.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence]


def spawn_seeds(root_seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child seed sequences from ``root_seed``.

    Child ``i`` is a pure function of ``(root_seed, i)``: re-running the
    sweep, reordering workers, or splitting the grid across processes
    cannot change any point's randomness.
    """
    if count < 0:
        raise ValueError(f"cannot spawn {count} seeds")
    root = (
        root_seed
        if isinstance(root_seed, np.random.SeedSequence)
        else np.random.SeedSequence(root_seed)
    )
    return list(root.spawn(count))


def seed_fingerprint(seq: np.random.SeedSequence) -> str:
    """A stable, human-readable identity for a seed sequence.

    Used in cache keys: two runs whose point would draw different
    randomness must never share a cache entry.  The entropy and the
    spawn key fully determine the stream ``default_rng(seq)`` produces.
    """
    return f"entropy={seq.entropy};spawn_key={tuple(seq.spawn_key)}"
