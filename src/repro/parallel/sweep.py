"""The deterministic fan-out engine for simulation sweeps.

:func:`run_sweep` applies a *pure point function* ``fn(point, seed)`` to
every configuration in a grid, optionally across worker processes, and
returns results in grid order.  The contract that makes parallelism safe
here:

1. **Purity** — a point's result depends only on ``(point, seed)``.
   The function must be picklable (defined at module top level) and must
   not mutate shared state.
2. **Positional seeds** — ``seed`` is a ``np.random.SeedSequence``
   spawned from the root seed by the point's *index*
   (:mod:`repro.parallel.seeds`), so randomness never depends on worker
   scheduling.
3. **Order-preserving collection** — results are returned in the order
   of ``points`` regardless of completion order.

Together these guarantee serial (``workers=1``) and parallel
(``workers=N``) runs are **bit-identical** — the property
``tests/parallel/test_determinism.py`` asserts with exact float
equality.

Worker count resolution (first match wins): explicit ``workers``
argument, the ``REPRO_WORKERS`` environment variable, serial.  Platforms
without the ``fork`` start method fall back to serial execution rather
than risk re-import divergence under ``spawn``.

With a :class:`~repro.parallel.cache.ResultCache` attached, cached
points are served from disk and only misses are dispatched to workers.
Cached values are JSON round-tripped on first computation too, so hit
and miss paths yield identical types and bits.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.cache import ResultCache
from repro.parallel.seeds import SeedLike, seed_fingerprint, spawn_seeds

#: Environment variable that sets the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

PointFn = Callable[[Any, np.random.SeedSequence], Any]


def resolve_workers(workers: Optional[int] = None) -> int:
    """The worker count a sweep will use.

    Precedence: explicit argument, then ``REPRO_WORKERS``, then 1
    (serial).  Values below 1 are rejected — a sweep always runs.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError as exc:
                raise ValueError(
                    f"{WORKERS_ENV}={raw!r} is not an integer"
                ) from exc
        else:
            workers = 1
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start-method context, or None where unsupported."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _call_point(payload: Tuple[PointFn, Any, np.random.SeedSequence]) -> Any:
    """Worker-side trampoline (top level so it pickles)."""
    fn, point, seed = payload
    return fn(point, seed)


@dataclass
class SweepStats:
    """What one sweep run did (attached to :class:`SweepOutcome`)."""

    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    parallel: bool = False

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total


@dataclass
class SweepOutcome:
    """Results (in grid order) plus run accounting."""

    values: List[Any] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index):
        return self.values[index]


class SweepEngine:
    """Reusable sweep runner bound to a worker count and optional cache.

    Parameters
    ----------
    workers:
        Process count; ``None`` defers to ``REPRO_WORKERS`` (default 1).
    cache:
        A :class:`ResultCache`; ``None`` disables caching.
    root_seed:
        Root of the per-point seed tree (see :mod:`repro.parallel.seeds`).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        root_seed: SeedLike = 0,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.root_seed = root_seed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, fn: PointFn, points: Sequence[Any]) -> SweepOutcome:
        """Evaluate ``fn`` over ``points``; results in grid order."""
        points = list(points)
        seeds = spawn_seeds(self.root_seed, len(points))
        stats = SweepStats(points=len(points), workers=self.workers)
        values: List[Any] = [None] * len(points)

        # 1. Serve what the cache already holds; collect the misses.
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(points)
        if self.cache is not None:
            fn_id = f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', repr(fn))}"
            for index, point in enumerate(points):
                key = self.cache.key(
                    fn_id, point, seed_fingerprint(seeds[index])
                )
                keys[index] = key
                hit, value = self.cache.get(key)
                if hit:
                    values[index] = value
                    stats.cache_hits += 1
                else:
                    pending.append(index)
                    stats.cache_misses += 1
        else:
            pending = list(range(len(points)))

        # 2. Compute the misses, fanning out when it can pay off.
        payloads = [(fn, points[i], seeds[i]) for i in pending]
        context = _fork_context()
        use_processes = (
            self.workers > 1 and len(pending) > 1 and context is not None
        )
        if use_processes:
            max_workers = min(self.workers, len(pending))
            chunksize = max(1, len(pending) // (max_workers * 4))
            with ProcessPoolExecutor(
                max_workers=max_workers, mp_context=context
            ) as executor:
                computed = list(
                    executor.map(_call_point, payloads, chunksize=chunksize)
                )
            stats.parallel = True
        else:
            computed = [_call_point(payload) for payload in payloads]
        stats.executed = len(pending)

        # 3. Store fresh results; adopt the canonicalised form so hit
        #    and miss paths return identical values.
        for index, value in zip(pending, computed):
            if self.cache is not None:
                value = self.cache.put(keys[index], value)
            values[index] = value
        return SweepOutcome(values=values, stats=stats)


def run_sweep(
    fn: PointFn,
    points: Sequence[Any],
    root_seed: SeedLike = 0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """One-shot sweep: :class:`SweepEngine` construction plus ``run``.

    Returns just the values (grid order).  Use the engine directly when
    cache statistics or run accounting matter.
    """
    engine = SweepEngine(workers=workers, cache=cache, root_seed=root_seed)
    return engine.run(fn, points).values
