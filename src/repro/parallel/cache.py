"""Content-addressed on-disk cache for sweep-point results.

A sweep point is cached under a key that hashes *everything its result
can depend on*:

- the point function's identity (``module:qualname``),
- a **code fingerprint** — a hash of the source files the caller names
  (at minimum the point function's own module; see
  :func:`code_fingerprint`),
- the point's configuration, canonicalised to JSON
  (:func:`canonical_json` — dataclasses, dicts with sorted keys, tuples
  and lists all normalise to one byte string),
- the point's derived seed fingerprint.

Change any of those and the key changes, so stale results are never
served; leave them unchanged and the point is never re-simulated.

Values are stored as JSON.  ``json`` round-trips Python floats exactly
(shortest-repr), so a cache hit is bit-identical to the original
computation — the perf suite asserts this on every CI run.  Writes are
atomic (temp file + ``os.replace``) so a killed run never leaves a
truncated entry; unreadable entries are treated as misses and
overwritten.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import inspect
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

#: Bump when the storage layout changes; part of every key.
CACHE_SCHEMA = 1


def _jsonable(obj: Any) -> Any:
    """Normalise ``obj`` into plain JSON-compatible structures."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return _jsonable(obj.value)
    if isinstance(obj, dict):
        keys = list(obj.keys())
        if not all(isinstance(k, str) for k in keys):
            raise TypeError(
                f"cache keys require string dict keys, got {type(keys[0])}"
            )
        return {k: _jsonable(obj[k]) for k in sorted(keys)}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        raise TypeError(
            "sets are not canonicalisable (hash order); pass a sorted list"
        )
    if isinstance(obj, (str, bool, int, float)) or obj is None:
        return obj
    # numpy scalars expose .item(); anything else is rejected loudly.
    item = getattr(obj, "item", None)
    if callable(item):
        return _jsonable(item())
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__} for the sweep cache; "
        "use dataclasses, dicts, lists and scalars"
    )


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding of a sweep configuration or result.

    Dict keys are sorted, dataclasses become field dicts, tuples become
    lists.  Two structurally equal configurations always produce the
    same byte string regardless of construction order.
    """
    return json.dumps(
        _jsonable(obj), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def code_fingerprint(*objects: Any) -> str:
    """Hash the source files behind ``objects`` (modules, functions, classes).

    The fingerprint is part of every cache key, so editing any named
    source file invalidates the affected entries.  Callers should pass
    the point function plus the modules whose behaviour the point's
    result depends on.  Objects without a reachable source file
    contribute their repr (better a too-coarse key than a stale hit).
    """
    digest = hashlib.sha256()
    digest.update(f"schema={CACHE_SCHEMA}".encode())
    for obj in objects:
        try:
            source_file = inspect.getsourcefile(obj)
        except TypeError:
            source_file = None
        if source_file and os.path.exists(source_file):
            digest.update(Path(source_file).read_bytes())
        else:
            digest.update(repr(obj).encode())
    return digest.hexdigest()


class ResultCache:
    """Content-addressed result store rooted at ``directory``.

    Parameters
    ----------
    directory:
        Cache root; created on first write.  The ``REPRO_CACHE_DIR``
        environment variable overrides the default used by benchmarks
        (``.repro-cache`` under the working tree).
    fingerprint:
        Code fingerprint mixed into every key (see
        :func:`code_fingerprint`).
    """

    def __init__(self, directory: os.PathLike, fingerprint: str = "") -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(self, fn_id: str, point: Any, seed_fp: str = "") -> str:
        """The content address of one sweep point."""
        payload = "\n".join(
            (
                f"schema={CACHE_SCHEMA}",
                f"fingerprint={self.fingerprint}",
                f"fn={fn_id}",
                f"seed={seed_fp}",
                f"point={canonical_json(point)}",
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on dense grids.
        return self.directory / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = entry["value"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> Any:
        """Store ``value``; returns the canonicalised value as stored.

        The returned (round-tripped) value is what future hits will
        yield, so the engine hands it to the caller on the *first* run
        too — cached and fresh runs see identical types and bits.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps({"key": key, "value": _jsonable(value)})
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return json.loads(encoded)["value"]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        total = self.requests
        if total == 0:
            return 0.0
        return self.hits / total

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def entry_count(self) -> int:
        """Entries currently on disk (walks the cache directory)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))


def default_cache_dir() -> Path:
    """The benchmark suite's cache root (``REPRO_CACHE_DIR`` overrides)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path(".repro-cache")
