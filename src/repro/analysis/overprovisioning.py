"""The HBM fit-to-workload table (Section 2.2).

"These properties suggest that most of the HBM capacity is used for data
that has little use for the general-purpose properties HBM inherits from
DRAM ... HBM is, in a sense, overprovisioned for the requirements of
this foundation model inference workload."

:func:`hbm_provisioning_table` makes the claim row by row: for each HBM
property (write bandwidth, endurance, byte addressability, retention
granularity, read bandwidth, capacity), compare what the device
provides against what the measured workload demands, and report the
provisioning ratio with a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.devices.catalog import HBM3E
from repro.endurance.requirements import SplitwiseCalibration, kv_cache_requirement
from repro.inference.accelerator import AcceleratorConfig, B200
from repro.units import MiB, YEAR
from repro.workload.model import LLAMA2_70B, ModelConfig
from repro.workload.phases import decode_step_traffic


@dataclass(frozen=True)
class ProvisioningRow:
    """One property's provided-vs-needed comparison."""

    property: str
    provided: float
    needed: float
    unit: str
    verdict: str  # "overprovisioned" | "underprovisioned" | "matched"

    @property
    def ratio(self) -> float:
        if self.needed == 0:
            return float("inf")
        return self.provided / self.needed


def _verdict(provided: float, needed: float, slack: float = 4.0) -> str:
    if needed == 0:
        return "overprovisioned"
    ratio = provided / needed
    if ratio >= slack:
        return "overprovisioned"
    if ratio <= 1.0:
        return "underprovisioned"
    return "matched"


def hbm_provisioning_table(
    model: ModelConfig = LLAMA2_70B,
    accelerator: AcceleratorConfig = B200,
    batch_size: int = 16,
    context_tokens: int = 2048,
    desired_context_tokens: int = 32768,
    lifetime_s: float = 5 * YEAR,
    calibration: Optional[SplitwiseCalibration] = None,
) -> List[ProvisioningRow]:
    """Build the table at a representative decode operating point.

    ``desired_context_tokens`` captures the paper's "having contexts as
    large as possible is desirable ... primarily limited by the amount
    of memory available": capacity demand is sized for the contexts
    operators *want*, not the clamped ones they get.
    """
    calibration = calibration or SplitwiseCalibration()
    hbm = accelerator.tier("hbm")
    traffic = decode_step_traffic(model, context_tokens, batch_size)
    # Demand rates at full device utilization: scale traffic by the
    # step time the device itself achieves (bandwidth-bound decode).
    step_time = traffic.bytes_read / hbm.read_bandwidth
    read_demand = traffic.bytes_read / step_time  # = read bandwidth, by construction
    write_demand = traffic.bytes_written / step_time

    kv_requirement = kv_cache_requirement(
        model, lifetime_s=lifetime_s, calibration=calibration
    )
    rows = [
        ProvisioningRow(
            property="read bandwidth",
            provided=hbm.read_bandwidth,
            needed=read_demand,
            unit="B/s",
            # Decode saturates reads by construction: never "over".
            verdict="underprovisioned",
        ),
        ProvisioningRow(
            property="write bandwidth",
            provided=hbm.write_bandwidth,
            needed=write_demand,
            unit="B/s",
            verdict=_verdict(hbm.write_bandwidth, write_demand),
        ),
        ProvisioningRow(
            property="write endurance",
            provided=HBM3E.endurance_cycles,
            needed=kv_requirement.writes_per_cell,
            unit="writes/cell",
            verdict=_verdict(
                HBM3E.endurance_cycles, kv_requirement.writes_per_cell
            ),
        ),
        ProvisioningRow(
            property="capacity",
            provided=float(hbm.capacity_bytes),
            needed=float(
                model.weights_bytes
                + batch_size * model.kv_cache_bytes(desired_context_tokens)
                + model.activation_bytes(batch_size)
            ),
            unit="bytes",
            verdict=_verdict(
                hbm.capacity_bytes,
                model.weights_bytes
                + batch_size * model.kv_cache_bytes(desired_context_tokens),
            ),
        ),
        ProvisioningRow(
            property="access granularity",
            provided=float(HBM3E.access_granularity_bytes),
            needed=float(8 * MiB),  # multi-MiB sequential pages [22]
            unit="bytes (finer = more general)",
            # Fine granularity the workload never uses = overprovisioned.
            verdict="overprovisioned",
        ),
        ProvisioningRow(
            property="retention (refresh interval)",
            provided=HBM3E.refresh_interval_s,
            needed=3600.0,  # typical KV/context lifetime scale
            unit="s (needed = data lifetime)",
            verdict="underprovisioned",  # too short: constant refresh tax
        ),
    ]
    return rows
