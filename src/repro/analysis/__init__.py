"""Workload characterization and the paper's analysis tables.

- :mod:`~repro.analysis.characterization` — synthesizes the block-level
  access stream of an inference serving run and measures the properties
  Section 2 claims: read:write ratio, sequentiality, in-place-update
  rate, overwrite intervals, predictability.
- :mod:`~repro.analysis.overprovisioning` — the HBM fit-to-workload
  table: which HBM properties the workload actually uses (Section 2.2).
- :mod:`~repro.analysis.figures` — plain-text table/log-bar rendering
  used by the benchmark harnesses (no plotting dependencies).
"""

from repro.analysis.characterization import (
    AccessRecord,
    CharacterizationReport,
    characterize,
    synthesize_access_stream,
)
from repro.analysis.overprovisioning import (
    ProvisioningRow,
    hbm_provisioning_table,
)
from repro.analysis.figures import format_table, log_bar, render_figure1
from repro.analysis.sensitivity import (
    SensitivityPoint,
    robustness_summary,
    sweep_kv_requirement,
)

__all__ = [
    "AccessRecord",
    "CharacterizationReport",
    "ProvisioningRow",
    "SensitivityPoint",
    "characterize",
    "format_table",
    "hbm_provisioning_table",
    "log_bar",
    "render_figure1",
    "robustness_summary",
    "sweep_kv_requirement",
    "synthesize_access_stream",
]
