"""Plain-text rendering for experiment output.

The benchmark harnesses print the paper's tables and figures as text —
no plotting dependencies, diff-able output, works everywhere.  Two
primitives plus the Figure 1 renderer:

- :func:`format_table` — aligned ASCII table from rows of cells;
- :func:`log_bar` — a log-scale bar for spanning-many-decades values
  (endurance spans 1e3..1e16);
- :func:`render_figure1` — the endurance comparison as log bars.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Sequence[object]],
    headers: Optional[Sequence[str]] = None,
    float_format: str = "{:.3g}",
) -> str:
    """Render rows as an aligned ASCII table."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    if headers is not None:
        text_rows.insert(0, [str(h) for h in headers])
    if not text_rows:
        return ""
    widths = [
        max(len(row[i]) for row in text_rows if i < len(row))
        for i in range(max(len(r) for r in text_rows))
    ]
    lines = []
    for index, row in enumerate(text_rows):
        line = "  ".join(
            row[i].ljust(widths[i]) for i in range(len(row))
        ).rstrip()
        lines.append(line)
        if headers is not None and index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def log_bar(
    value: float,
    lo: float = 1.0,
    hi: float = 1e17,
    width: int = 50,
    char: str = "#",
) -> str:
    """A log-scale bar: value 1e3..1e16 maps onto ``width`` columns."""
    if value <= 0:
        return ""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    frac = (math.log10(value) - math.log10(lo)) / (
        math.log10(hi) - math.log10(lo)
    )
    frac = min(1.0, max(0.0, frac))
    return char * max(1, round(frac * width))


def render_figure1(data: Mapping[str, object], width: int = 50) -> str:
    """Render Figure 1 (requirements vs endurance) as log-scale bars."""
    lines: List[str] = []
    lines.append("Writes per cell over the deployment lifetime (log scale)")
    lines.append("")
    lines.append("Workload requirements:")
    for req in data["requirements"]:
        bar = log_bar(req.writes_per_cell, width=width)
        lines.append(
            f"  {req.name:<28} {bar} {req.writes_per_cell:.2e}"
        )
    kv_low, kv_high = data["kv_range"]
    lines.append(
        f"  {'KV cache range':<28} "
        f"[{kv_low.writes_per_cell:.2e} .. {kv_high.writes_per_cell:.2e}]"
    )
    lines.append("")
    lines.append("Product endurance:")
    for name, value in sorted(
        data["products"].items(), key=lambda kv: kv[1]
    ):
        lines.append(f"  {name:<28} {log_bar(value, width=width)} {value:.1e}")
    lines.append("")
    lines.append("Technology-potential endurance:")
    for name, value in sorted(
        data["potentials"].items(), key=lambda kv: kv[1]
    ):
        lines.append(f"  {name:<28} {log_bar(value, width=width)} {value:.1e}")
    return "\n".join(lines)
