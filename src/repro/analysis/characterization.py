"""Block-level access-stream characterization.

Section 2's summary claims, measured rather than asserted:

  "foundation model inference is mostly composed of very large,
  predictable memory reads, while writes are smaller and mostly append
  only.  Exact memory ranges to be read are known in advance, and large
  fractions of the memory are not overwritten for long periods of time."

:func:`synthesize_access_stream` expands a served request sequence into
page-granular accesses (weights scans, KV scans, KV appends) — the
stream an MRM device would actually see; :func:`characterize` computes:

- read:write byte ratio (global and per structure);
- sequentiality: fraction of bytes whose access continues the previous
  access of the same stream;
- in-place-update rate: fraction of written bytes overwriting previously
  written addresses (should be ~0 for KV, 1/redeploy for weights);
- overwrite intervals: time between successive writes to the same page;
- predictability: fraction of bytes whose address was deterministic
  given the stream's history (scans and appends are; random isn't).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Sequence, Tuple

from repro.sim.stats import Histogram
from repro.units import MiB
from repro.workload.model import ModelConfig
from repro.workload.requests import InferenceRequest


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class AccessRecord:
    """One page-granular access.

    ``stream`` identifies the logical object ("weights",
    ``"kv-<request id>"``); addresses are offsets within the stream.
    ``predicted`` marks accesses whose address a prefetcher with the
    stream's history would have known (sequential continuation or
    append at the write pointer).
    """

    time: float
    stream: str
    structure: str  # "weights" | "kv" | "other"
    type: AccessType
    address: int
    size: int
    predicted: bool = True


@dataclass
class CharacterizationReport:
    """Measured workload properties."""

    bytes_read: float = 0.0
    bytes_written: float = 0.0
    bytes_read_by_structure: Dict[str, float] = field(default_factory=dict)
    bytes_written_by_structure: Dict[str, float] = field(default_factory=dict)
    sequential_bytes: float = 0.0
    total_bytes: float = 0.0
    inplace_written_bytes: float = 0.0
    predicted_bytes: float = 0.0
    overwrite_intervals: Histogram = field(
        default_factory=lambda: Histogram("overwrite-interval")
    )

    @property
    def read_write_ratio(self) -> float:
        if self.bytes_written == 0:
            return float("inf")
        return self.bytes_read / self.bytes_written

    @property
    def sequentiality(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.sequential_bytes / self.total_bytes

    @property
    def inplace_update_fraction(self) -> float:
        if self.bytes_written == 0:
            return 0.0
        return self.inplace_written_bytes / self.bytes_written

    @property
    def predictability(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.predicted_bytes / self.total_bytes


def synthesize_access_stream(
    model: ModelConfig,
    requests: Sequence[InferenceRequest],
    page_bytes: int = 8 * MiB,
    batch_size: int = 8,
    step_time_s: float = 0.02,
    include_weight_reads: bool = True,
) -> Iterator[AccessRecord]:
    """Expand served requests into the access stream an MRM sees.

    Requests are processed in arrival order in fixed batches (a
    simplification of continuous batching that preserves traffic
    shape).  Per decode step: one full weights scan for the batch, a
    full sequential KV scan per context, one KV append per context.
    Prefill: one weights scan plus the prompt's KV append burst.

    ``page_bytes`` sets record granularity (the MRM block size).
    """
    if page_bytes < 1 or batch_size < 1 or step_time_s <= 0:
        raise ValueError("bad stream parameters")
    weights_pages = max(1, model.weights_bytes // page_bytes)
    now = 0.0

    def weights_scan(t: float) -> Iterator[AccessRecord]:
        for page in range(weights_pages):
            yield AccessRecord(
                time=t,
                stream="weights",
                structure="weights",
                type=AccessType.READ,
                address=page * page_bytes,
                size=page_bytes,
            )

    for start in range(0, len(requests), batch_size):
        batch = requests[start : start + batch_size]
        # Prefill each request in the batch.
        for request in batch:
            if include_weight_reads:
                yield from weights_scan(now)
            kv_bytes = model.kv_cache_bytes(request.prompt_tokens)
            yield from _kv_append(request, model, now, 0, kv_bytes, page_bytes)
            now += step_time_s
        # Decode lockstep until the longest output finishes.
        max_output = max(r.output_tokens for r in batch)
        for step in range(max_output):
            if include_weight_reads:
                yield from weights_scan(now)
            for request in batch:
                if step >= request.output_tokens:
                    continue
                context = request.prompt_tokens + step
                cache_bytes = model.kv_cache_bytes(context)
                stream = f"kv-{request.request_id}"
                # Sequential full-cache read.
                for offset in range(0, cache_bytes, page_bytes):
                    size = min(page_bytes, cache_bytes - offset)
                    yield AccessRecord(
                        time=now,
                        stream=stream,
                        structure="kv",
                        type=AccessType.READ,
                        address=offset,
                        size=size,
                    )
                # Append one vector at the write pointer.
                yield AccessRecord(
                    time=now,
                    stream=stream,
                    structure="kv",
                    type=AccessType.WRITE,
                    address=cache_bytes,
                    size=model.kv_bytes_per_token,
                )
            now += step_time_s


def _kv_append(
    request: InferenceRequest,
    model: ModelConfig,
    now: float,
    start: int,
    length: int,
    page_bytes: int,
) -> Iterator[AccessRecord]:
    stream = f"kv-{request.request_id}"
    for offset in range(start, start + length, page_bytes):
        size = min(page_bytes, start + length - offset)
        yield AccessRecord(
            time=now,
            stream=stream,
            structure="kv",
            type=AccessType.WRITE,
            address=offset,
            size=size,
        )


def characterize(
    records: Iterable[AccessRecord], page_bytes: int = 8 * MiB
) -> CharacterizationReport:
    """Measure the stream (single pass, page-granular write history)."""
    report = CharacterizationReport()
    last_end: Dict[str, int] = {}  # stream -> end of previous access
    watermark: Dict[str, int] = {}  # stream -> highest byte ever written
    #: (stream, page) -> last time any byte of the page was written
    written_pages: Dict[Tuple[str, int], float] = {}
    for record in records:
        report.total_bytes += record.size
        if record.predicted:
            report.predicted_bytes += record.size
        prev_end = last_end.get(record.stream)
        sequential = prev_end is None or record.address in (0, prev_end)
        if sequential:
            report.sequential_bytes += record.size
        last_end[record.stream] = record.address + record.size
        if record.type is AccessType.READ:
            report.bytes_read += record.size
            by = report.bytes_read_by_structure
            by[record.structure] = by.get(record.structure, 0.0) + record.size
        else:
            report.bytes_written += record.size
            by = report.bytes_written_by_structure
            by[record.structure] = by.get(record.structure, 0.0) + record.size
            # In-place update = writing below the stream's high-water
            # mark (appends into a partially-filled page are NOT
            # overwrites — the bytes were never written before).
            mark = watermark.get(record.stream, 0)
            overlap = min(mark - record.address, record.size)
            if overlap > 0:
                report.inplace_written_bytes += overlap
                first_page = record.address // page_bytes
                last_page = (record.address + overlap - 1) // page_bytes
                for page in range(first_page, last_page + 1):
                    previous = written_pages.get((record.stream, page))
                    if previous is not None:
                        report.overwrite_intervals.observe(
                            record.time - previous
                        )
            watermark[record.stream] = max(mark, record.address + record.size)
            first_page = record.address // page_bytes
            last_page = (record.address + record.size - 1) // page_bytes
            for page in range(first_page, last_page + 1):
                written_pages[(record.stream, page)] = record.time
    return report
