"""Sensitivity analysis for the Figure 1 reproduction.

The endurance-requirement arithmetic rests on calibration constants
(token rates, machine capacity, deployment lifetime, model geometry).
A reproduction is only as honest as its robustness: this module sweeps
each input across a plausible range and reports whether the paper's
qualitative observations — products insufficient, potentials
sufficient, HBM overprovisioned — survive.

Used by ``benchmarks/bench_a5_sensitivity.py`` and cited in
EXPERIMENTS.md as the robustness certificate for F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.devices.catalog import (
    PRODUCT_ENDURANCE,
    TECHNOLOGY_POTENTIAL_ENDURANCE,
)
from repro.endurance.requirements import (
    SplitwiseCalibration,
    kv_cache_requirement,
)
from repro.units import GiB, YEAR
from repro.workload.model import (
    GPT_CLASS_500B,
    LLAMA2_70B,
    LLAMA2_70B_MHA,
    ModelConfig,
)


@dataclass(frozen=True)
class SensitivityPoint:
    """One parameter setting and the resulting KV requirement."""

    parameter: str
    value: str
    kv_writes_per_cell: float

    def shape_holds(self) -> Dict[str, bool]:
        """The Figure 1 observations at this point."""
        weakest_product = min(
            v
            for k, v in PRODUCT_ENDURANCE.items()
            if k != "HBM / DRAM"
        )
        scm_potentials = [
            v
            for k, v in TECHNOLOGY_POTENTIAL_ENDURANCE.items()
            if k not in ("HBM / DRAM", "NAND Flash")
        ]
        return {
            "hbm_overprovisioned": PRODUCT_ENDURANCE["HBM / DRAM"]
            >= self.kv_writes_per_cell * 1e6,
            "some_product_insufficient": weakest_product
            < self.kv_writes_per_cell,
            "potential_sufficient": min(scm_potentials)
            >= self.kv_writes_per_cell,
        }


def sweep_kv_requirement(
    token_rates: Sequence[float] = (350.0, 700.0, 1400.0, 6000.0, 12000.0),
    capacities_gib: Sequence[float] = (256.0, 512.0, 1024.0),
    lifetimes_years: Sequence[float] = (3.0, 5.0, 10.0),
    models: Sequence[ModelConfig] = (LLAMA2_70B, LLAMA2_70B_MHA, GPT_CLASS_500B),
) -> List[SensitivityPoint]:
    """One-at-a-time sweeps around the default calibration."""
    calibration = SplitwiseCalibration()
    default_capacity = calibration.machine_hbm_bytes - LLAMA2_70B.weights_bytes
    points: List[SensitivityPoint] = []

    for rate in token_rates:
        requirement = kv_cache_requirement(
            LLAMA2_70B, token_rate_per_s=rate, capacity_bytes=default_capacity
        )
        points.append(
            SensitivityPoint(
                "token rate (tok/s)", f"{rate:.0f}", requirement.writes_per_cell
            )
        )
    for capacity in capacities_gib:
        requirement = kv_cache_requirement(
            LLAMA2_70B,
            token_rate_per_s=calibration.mixed_tokens_per_s,
            capacity_bytes=int(capacity * GiB),
        )
        points.append(
            SensitivityPoint(
                "KV pool (GiB)", f"{capacity:.0f}", requirement.writes_per_cell
            )
        )
    for years in lifetimes_years:
        requirement = kv_cache_requirement(
            LLAMA2_70B,
            lifetime_s=years * YEAR,
            calibration=calibration,
        )
        points.append(
            SensitivityPoint(
                "lifetime (years)", f"{years:.0f}", requirement.writes_per_cell
            )
        )
    for model in models:
        # Larger models deploy on proportionally larger machines; keep
        # the KV pool comparable by scaling the machine with the model
        # (weights plus the default calibration's KV headroom).
        machine_bytes = model.weights_bytes + default_capacity
        requirement = kv_cache_requirement(
            model,
            token_rate_per_s=calibration.mixed_tokens_per_s,
            capacity_bytes=machine_bytes - model.weights_bytes,
        )
        points.append(
            SensitivityPoint("model", model.name, requirement.writes_per_cell)
        )
    return points


def robustness_summary(
    points: Optional[List[SensitivityPoint]] = None,
) -> Dict[str, float]:
    """Fraction of sweep points at which each observation holds."""
    points = points if points is not None else sweep_kv_requirement()
    if not points:
        raise ValueError("no sweep points")
    tallies = {"hbm_overprovisioned": 0, "some_product_insufficient": 0,
               "potential_sufficient": 0}
    for point in points:
        for key, holds in point.shape_holds().items():
            tallies[key] += int(holds)
    return {key: count / len(points) for key, count in tallies.items()}
