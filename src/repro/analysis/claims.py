"""The claims registry: every paper quote, as an executable check.

EXPERIMENTS.md records a snapshot; this module makes the reproduction
*live*: each :class:`Claim` carries the paper's sentence, where it comes
from, and a check function returning (holds, evidence).  ``python -m
repro claims`` runs them all in seconds — a one-command answer to "does
this repository still reproduce the paper?".

The heavyweight simulations (cluster serving, churn) live in the
benchmark harness; the registry covers the analytically-checkable core
so it stays fast enough to run on every change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.units import GiB, HOUR, YEAR


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    claim_id: str
    section: str
    quote: str
    check: Callable[[], Tuple[bool, str]]

    def run(self) -> "ClaimResult":
        try:
            holds, evidence = self.check()
        except Exception as exc:  # a crashed check is a failed check
            return ClaimResult(self, False, f"check raised: {exc!r}")
        return ClaimResult(self, holds, evidence)


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    holds: bool
    evidence: str


def _check_read_write_ratio() -> Tuple[bool, str]:
    from repro.workload.model import LLAMA2_70B_MHA
    from repro.workload.phases import decode_step_traffic

    ratio = decode_step_traffic(LLAMA2_70B_MHA, 2048).read_write_ratio
    return ratio > 1000, f"decode ratio {ratio:.0f}:1 at 2K context (MHA)"


def _check_kv_vector_size() -> Tuple[bool, str]:
    from repro.units import MiB
    from repro.workload.model import LLAMA2_70B_MHA

    size = LLAMA2_70B_MHA.kv_bytes_per_token
    return 1 * MiB <= size <= 8 * MiB, f"MHA vector {size / MiB:.1f} MiB/token"


def _check_weights_range() -> Tuple[bool, str]:
    from repro.workload.model import GPT_CLASS_500B

    fp16 = GPT_CLASS_500B.weights_bytes
    int4 = fp16 / 4
    holds = int4 >= 250e9 and fp16 >= 0.9e12
    return holds, (
        f"500B model: {int4 / 1e9:.0f} GB (INT4) .. {fp16 / 1e12:.2f} TB (FP16)"
    )


def _check_capacity_majority() -> Tuple[bool, str]:
    from repro.endurance.requirements import SplitwiseCalibration
    from repro.workload.model import LLAMA2_70B

    calib = SplitwiseCalibration()
    context = calib.median_prompt_tokens + calib.median_output_tokens
    weights = LLAMA2_70B.weights_bytes
    kv = 16 * LLAMA2_70B.kv_cache_bytes(context)
    act = LLAMA2_70B.activation_bytes(16)
    share = (weights + kv) / (weights + kv + act)
    return share > 0.9, f"weights+KV share {share:.1%} of a replica"


def _check_decode_memory_bound() -> Tuple[bool, str]:
    from repro.inference.accelerator import H100_80G
    from repro.inference.cluster import tensor_parallel_group
    from repro.inference.roofline import Boundedness, RooflineModel
    from repro.workload.model import LLAMA2_70B

    roofline = RooflineModel(tensor_parallel_group(H100_80G, 4))
    timing = roofline.time_decode_step(LLAMA2_70B, 2048, batch_size=16)
    return (
        timing.boundedness is Boundedness.MEMORY,
        f"decode step at batch 16: memory {timing.memory_time_s * 1e3:.1f} ms"
        f" vs compute {timing.compute_time_s * 1e3:.1f} ms",
    )


def _check_hbm_refresh() -> Tuple[bool, str]:
    from repro.tiering.tiers import hbm_tier, mrm_tier

    hbm_idle = hbm_tier(192 * GiB).refresh_power_w()
    mrm_idle = mrm_tier(192 * GiB).refresh_power_w()
    return (
        # Exact zero is the claim itself: non-volatile tiers charge
        # literally no refresh energy (no accumulation, no rounding).
        hbm_idle > 0 and mrm_idle == 0.0,  # repro-lint: disable=RL006
        f"idle refresh power: HBM {hbm_idle:.0f} W, MRM {mrm_idle:.0f} W",
    )


def _check_figure1() -> Tuple[bool, str]:
    from repro.endurance.requirements import check_figure1_shape

    shape = check_figure1_shape()
    return all(shape.values()), str(shape)


def _check_retention_tradeoff() -> Tuple[bool, str]:
    from repro.core.retention import RetentionModel
    from repro.devices.catalog import RRAM_WEEBIT

    model = RetentionModel(RRAM_WEEBIT)
    endurance = model.endurance_cycles(HOUR)
    saving = 1 - model.write_energy_j_per_byte(1.0) / (
        RRAM_WEEBIT.write_energy_j_per_byte
    )
    holds = endurance >= 1e11 and saving > 0.6
    return holds, (
        f"1h retention: endurance {endurance:.1e} (product 1e5); "
        f"1s retention saves {saving:.0%} write energy"
    )


def _check_flash_disqualified() -> Tuple[bool, str]:
    from repro.devices.catalog import NAND_SLC
    from repro.endurance.lifetime import device_lifetime_s
    from repro.endurance.requirements import SplitwiseCalibration
    from repro.workload.model import LLAMA2_70B

    calib = SplitwiseCalibration()
    rate = calib.mixed_tokens_per_s * LLAMA2_70B.kv_bytes_per_token
    lifetime = device_lifetime_s(NAND_SLC, calib.machine_hbm_bytes, rate)
    return lifetime < 5 * YEAR, f"SLC pool lifetime {lifetime / YEAR:.1f} y"


def _check_hbm_density_wall() -> Tuple[bool, str]:
    from repro.devices.hbm import HBM_ROADMAP

    hbm3e = next(g for g in HBM_ROADMAP if g.name == "hbm3e")
    hbm4 = next(g for g in HBM_ROADMAP if g.name == "hbm4")
    step = hbm4.capacity_per_layer_bytes / hbm3e.capacity_per_layer_bytes
    max_layers = max(g.max_layers for g in HBM_ROADMAP)
    return (
        1.2 <= step <= 1.4 and max_layers <= 16,
        f"HBM4 layer step {step:.0%}, roadmap max {max_layers} layers",
    )


def _check_ecc_block_size() -> Tuple[bool, str]:
    from repro.ecc.blockcodes import overhead_vs_block_size
    from repro.ecc.hamming import HammingCodec

    points = overhead_vs_block_size(rber=1e-4, target_block_failure=1e-12,
                                    block_sizes_bits=(64, 65536))
    small, large = points[0].overhead, points[-1].overhead
    secded = HammingCodec(64).overhead
    return (
        large < small and large < secded,
        f"overhead: 64 b {small:.1%} -> 64 Kb {large:.1%} "
        f"(SEC-DED {secded:.1%})",
    )


def _check_mitigations_dont_change_nature() -> Tuple[bool, str]:
    from repro.workload.mitigations import (
        MitigationConfig,
        mitigated_decode_traffic,
    )
    from repro.workload.model import LLAMA2_70B, PHI_3_MINI
    from repro.workload.speculative import SpeculationConfig

    config = MitigationConfig(
        batch_size=16, kv_compression_ratio=4.0, shared_prefix_fraction=0.5,
        speculation=SpeculationConfig(PHI_3_MINI),
    )
    ratio = mitigated_decode_traffic(LLAMA2_70B, config, 2048).read_write_ratio
    return ratio > 1000, f"all mitigations on: still {ratio:.0f}:1"


ALL_CLAIMS: List[Claim] = [
    Claim("rw-ratio", "2.2",
          "read:write ratios of over 1000:1",
          _check_read_write_ratio),
    Claim("kv-vector", "2",
          "Each vector is typically a few MBs",
          _check_kv_vector_size),
    Claim("weights-size", "2",
          "between 250 GB and over 1 TB of data depending on the weight "
          "quantization",
          _check_weights_range),
    Claim("capacity", "2",
          "model weights and the KV cache use up the majority of the "
          "memory capacity",
          _check_capacity_majority),
    Claim("memory-bound", "2.1",
          "a substantial part of every inference query is memory bound",
          _check_decode_memory_bound),
    Claim("refresh", "2.1",
          "HBM fundamentally requires frequent refreshing ... consuming "
          "power even when the memory is idle",
          _check_hbm_refresh),
    Claim("figure1", "3",
          "HBM is vastly overprovisioned on endurance; existing SCM "
          "devices do not meet the endurance requirements but the "
          "underlying technologies have the potential to do so",
          _check_figure1),
    Claim("tradeoff", "3",
          "trading off non-volatility for other key metrics",
          _check_retention_tradeoff),
    Claim("flash", "3",
          "Flash cannot be used because it does not have enough "
          "endurance, even with Single Level Cells",
          _check_flash_disqualified),
    Claim("density-wall", "2.1",
          "HBM4 is only expected to increase capacity per layer by 30% "
          "... not expect it to scale beyond 16 layers",
          _check_hbm_density_wall),
    Claim("ecc", "4",
          "error correction techniques that operate on larger code words "
          "and have less overhead",
          _check_ecc_block_size),
    Claim("mitigations", "2.2",
          "even together they do not fundamentally change the heavily "
          "read-dominated nature of the workload",
          _check_mitigations_dont_change_nature),
]


def run_all_claims() -> List[ClaimResult]:
    """Run every registered claim check."""
    return [claim.run() for claim in ALL_CLAIMS]
