"""Dynamically replicated memory for worn MRM blocks.

The paper's reference list includes Ipek et al.'s *Dynamically
Replicated Memory* [17] ("building reliable systems from nanoscale
resistive memories") as part of MRM's reliability toolbox: when
resistive cells wear out, two faulty physical pages whose fault maps do
not collide can be paired to present one reliable logical page —
extending device life far past first-cell failure.

:class:`ReplicationManager` implements the scheme over MRM block slots:

- slots whose damage crosses the wear threshold are *retired*;
- retired slots are paired greedily; a pair is **compatible** when the
  two slots' fault bitmaps have no overlapping faulty sub-block, so
  every sub-block is healthy in at least one member;
- a paired slot group serves reads/writes as one logical slot (both
  members written on write — the documented 2x write cost of DRM);
- capacity accounting reports how much usable capacity replication
  recovers versus simple retirement.

Fault maps are synthetic (seeded Bernoulli per sub-block with a fault
density that grows with damage), matching the paper's [17] evaluation
methodology of randomly-located failed cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class FaultMap:
    """Which sub-blocks of a retired slot are faulty."""

    slot: Tuple[int, int]  # (zone_id, index)
    faulty: frozenset  # sub-block indices

    def compatible(self, other: "FaultMap") -> bool:
        """True when no sub-block is faulty in both members."""
        return not (self.faulty & other.faulty)


@dataclass
class ReplicaPair:
    """Two retired slots presenting one reliable logical slot."""

    primary: FaultMap
    backup: FaultMap

    def covers_all_subblocks(self, num_subblocks: int) -> bool:
        for index in range(num_subblocks):
            if index in self.primary.faulty and index in self.backup.faulty:
                return False
        return True


class ReplicationManager:
    """Pairs worn-out MRM slots into reliable replicated slots [17].

    Parameters
    ----------
    subblocks_per_slot:
        Fault-map granularity (e.g. ECC codeword units per block).
    fault_density_at_retirement:
        Expected fraction of faulty sub-blocks when a slot retires
        (small: slots retire at first uncorrectable sub-block region).
    seed:
        RNG seed for synthetic fault maps.
    """

    def __init__(
        self,
        subblocks_per_slot: int = 64,
        fault_density_at_retirement: float = 0.05,
        seed: int = 0,
    ) -> None:
        if subblocks_per_slot < 1:
            raise ValueError("need at least one sub-block")
        if not 0.0 < fault_density_at_retirement < 1.0:
            raise ValueError("fault density must be in (0, 1)")
        self.subblocks_per_slot = subblocks_per_slot
        self.fault_density = fault_density_at_retirement
        self.rng = np.random.default_rng(seed)
        self._retired: List[FaultMap] = []
        self._pairs: List[ReplicaPair] = []
        self._unpaired: List[FaultMap] = []

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def retire(self, zone_id: int, index: int) -> FaultMap:
        """Retire a worn slot, drawing its synthetic fault map."""
        slot = (zone_id, index)
        if any(f.slot == slot for f in self._retired):
            raise ValueError(f"slot {slot} already retired")
        draws = self.rng.random(self.subblocks_per_slot) < self.fault_density
        faulty = frozenset(int(i) for i in np.nonzero(draws)[0])
        if not faulty:
            # A retired slot has at least one fault by definition.
            faulty = frozenset({int(self.rng.integers(self.subblocks_per_slot))})
        fault_map = FaultMap(slot=slot, faulty=faulty)
        self._retired.append(fault_map)
        self._pair_or_queue(fault_map)
        return fault_map

    def _pair_or_queue(self, fault_map: FaultMap) -> None:
        for index, candidate in enumerate(self._unpaired):
            if fault_map.compatible(candidate):
                self._unpaired.pop(index)
                self._pairs.append(ReplicaPair(candidate, fault_map))
                return
        self._unpaired.append(fault_map)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def retired_slots(self) -> int:
        return len(self._retired)

    @property
    def replicated_slots(self) -> int:
        """Logical slots recovered by pairing."""
        return len(self._pairs)

    @property
    def dead_slots(self) -> int:
        """Retired slots currently unusable (awaiting a partner)."""
        return len(self._unpaired)

    def recovered_capacity_fraction(self) -> float:
        """Usable fraction of retired capacity.

        Plain retirement scores 0; perfect pairing scores 0.5 (two
        physical slots -> one logical).  The paper's [17] point is that
        real fault maps pair almost always, so this approaches 0.5.
        """
        if not self._retired:
            return 0.0
        return self.replicated_slots / self.retired_slots

    def write_amplification(self) -> float:
        """Writes to a replicated slot hit both members: 2.0; unpaired
        retired capacity takes no writes."""
        return 2.0 if self._pairs else 1.0

    def pairing_success_rate(self) -> float:
        """Fraction of retired slots that found a partner."""
        if not self._retired:
            return 1.0
        return 2 * self.replicated_slots / self.retired_slots
