"""The MRM block/zone address space.

Section 4 argues the MRM controller can be radically simple because the
workload needs no byte-addressable random access: IO is large and
sequential, data is written once and read many times, then expires.  The
natural interface is zoned, append-only block storage — "akin to zoned
storage interfaces for Flash [60]" — with the novel twist that every
block carries a *retention deadline* set at write time.

- A :class:`Zone` is a contiguous region written strictly sequentially
  via its write pointer and reclaimed as a whole (``reset``).
- A :class:`Block` is one append unit inside a zone; it records when and
  for how long it was written (its retention), from which its deadline
  and current RBER follow.
- :class:`ZonedAddressSpace` owns the geometry and the block metadata.

This module is pure bookkeeping — no timing or energy.  The
:class:`~repro.core.mrm.MRMDevice` layers device physics on top.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List


class BlockState(enum.Enum):
    FREE = "free"
    VALID = "valid"
    EXPIRED = "expired"  # deadline passed without refresh; contents suspect


@dataclass
class Block:
    """One written block: the unit of MRM metadata.

    Attributes
    ----------
    zone_id / index:
        Position in the address space.
    size_bytes:
        Bytes actually written (may be below the block capacity for the
        final append of a stream).
    written_at / retention_s:
        Write timestamp and programmed spec retention; the deadline is
        their sum.
    refresh_count:
        Times the block has been rewritten in place by the control plane.
    """

    zone_id: int
    index: int
    size_bytes: int
    written_at: float
    retention_s: float
    state: BlockState = BlockState.VALID
    refresh_count: int = 0

    @property
    def deadline(self) -> float:
        """Time at which the data ceases to meet its retention spec."""
        return self.written_at + self.retention_s

    def age(self, now: float) -> float:
        return max(0.0, now - self.written_at)

    def expired(self, now: float) -> bool:
        return now > self.deadline

    def remaining(self, now: float) -> float:
        """Seconds of spec retention left (negative once expired)."""
        return self.deadline - now


@dataclass
class Zone:
    """A sequential-write region of ``capacity_blocks`` block slots."""

    zone_id: int
    capacity_blocks: int
    block_bytes: int
    write_pointer: int = 0  # next free block slot
    reset_count: int = 0
    blocks: List[Block] = field(default_factory=list)

    @property
    def is_full(self) -> bool:
        return self.write_pointer >= self.capacity_blocks

    @property
    def is_empty(self) -> bool:
        return self.write_pointer == 0

    @property
    def written_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    def append(self, size_bytes: int, now: float, retention_s: float) -> Block:
        """Append one block; strictly sequential within the zone."""
        if self.is_full:
            raise RuntimeError(f"zone {self.zone_id} is full")
        if size_bytes <= 0 or size_bytes > self.block_bytes:
            raise ValueError(
                f"block write of {size_bytes} B outside (0, {self.block_bytes}]"
            )
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        block = Block(
            zone_id=self.zone_id,
            index=self.write_pointer,
            size_bytes=size_bytes,
            written_at=now,
            retention_s=retention_s,
        )
        self.blocks.append(block)
        self.write_pointer += 1
        return block

    def reset(self) -> List[Block]:
        """Reclaim the whole zone; returns the blocks that were dropped."""
        dropped = self.blocks
        for block in dropped:
            block.state = BlockState.FREE
        self.blocks = []
        self.write_pointer = 0
        self.reset_count += 1
        return dropped


class ZonedAddressSpace:
    """Fixed geometry of zones × blocks with metadata queries.

    Parameters
    ----------
    num_zones / blocks_per_zone / block_bytes:
        Geometry.  Total capacity is their product.
    """

    def __init__(self, num_zones: int, blocks_per_zone: int, block_bytes: int) -> None:
        if num_zones < 1 or blocks_per_zone < 1 or block_bytes < 1:
            raise ValueError("geometry parameters must be >= 1")
        self.num_zones = num_zones
        self.blocks_per_zone = blocks_per_zone
        self.block_bytes = block_bytes
        self.zones: List[Zone] = [
            Zone(i, blocks_per_zone, block_bytes) for i in range(num_zones)
        ]

    @property
    def capacity_bytes(self) -> int:
        return self.num_zones * self.blocks_per_zone * self.block_bytes

    def zone(self, zone_id: int) -> Zone:
        if not 0 <= zone_id < self.num_zones:
            raise KeyError(f"zone {zone_id} outside [0, {self.num_zones})")
        return self.zones[zone_id]

    def open_zones(self) -> List[Zone]:
        """Zones with space remaining."""
        return [z for z in self.zones if not z.is_full]

    def empty_zones(self) -> List[Zone]:
        return [z for z in self.zones if z.is_empty]

    def iter_blocks(self) -> Iterator[Block]:
        for zone in self.zones:
            yield from zone.blocks

    def valid_blocks(self) -> List[Block]:
        return [b for b in self.iter_blocks() if b.state is BlockState.VALID]

    def expired_blocks(self, now: float) -> List[Block]:
        """Valid blocks whose retention deadline has passed."""
        return [b for b in self.valid_blocks() if b.expired(now)]

    def written_bytes(self) -> int:
        return sum(z.written_bytes for z in self.zones)

    def occupancy(self) -> float:
        """Fraction of block slots holding data."""
        used = sum(z.write_pointer for z in self.zones)
        return used / (self.num_zones * self.blocks_per_zone)

    def block_address(self, block: Block) -> int:
        """Byte address of a block within the flat device address space."""
        return (
            block.zone_id * self.blocks_per_zone + block.index
        ) * self.block_bytes
