"""Dynamically Configurable Memory (DCM): retention chosen per write.

Section 4: "the control plane ... is best-placed to dynamically decide
the retention period needed for each data when it is written, effectively
right provisioning the MRM to the workload.  At the hardware level, the
memory controller would support writing at different durations and
energies, allowing retention time to be programmed at runtime."

A :class:`DCMPolicy` maps a :class:`~repro.core.placement.DataObject`'s
declared lifetime to the retention passed to
:meth:`~repro.core.mrm.MRMDevice.append`.  Three policies span the design
space the paper sketches:

- :class:`FixedRetentionPolicy` — the non-DCM baseline: every write at
  one strength (set it to 10 years to model an SCM device).
- :class:`RetentionClassPolicy` — hardware supports a small menu of
  retention classes; pick the cheapest class that covers the lifetime
  (a realistic controller design).
- :class:`LifetimeMatchedPolicy` — fully flexible DCM: program exactly
  the lifetime plus a safety margin.

:func:`evaluate_policy` scores a policy over a stream of objects:
write energy, total wear, and refreshes forced by under-provisioned
retention — the numbers experiment E8 compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.mrm import MRMDevice
from repro.core.placement import DataObject
from repro.units import DAY, HOUR, MINUTE


class DCMPolicy:
    """Base: map a data object's lifetime to a programmed retention."""

    def retention_for(self, obj: DataObject) -> float:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class FixedRetentionPolicy(DCMPolicy):
    """Every write at one fixed retention (the SCM / non-DCM baseline)."""

    def __init__(self, retention_s: float) -> None:
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        self.retention_s = retention_s

    def retention_for(self, obj: DataObject) -> float:
        return self.retention_s

    @property
    def name(self) -> str:
        return f"fixed({self.retention_s:.0f}s)"


class RetentionClassPolicy(DCMPolicy):
    """A small menu of retention classes; cheapest class covering the
    lifetime wins.  Lifetimes longer than the top class get the top class
    (the scheduler will refresh)."""

    DEFAULT_CLASSES = (1 * MINUTE, 10 * MINUTE, 1 * HOUR, 6 * HOUR, 1 * DAY, 7 * DAY)

    def __init__(self, classes: Optional[Sequence[float]] = None, margin: float = 1.2) -> None:
        if classes is None:
            classes = self.DEFAULT_CLASSES
        classes = tuple(sorted(classes))
        if not classes or any(c <= 0 for c in classes):
            raise ValueError("retention classes must be positive")
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        self.classes = classes
        self.margin = margin

    def retention_for(self, obj: DataObject) -> float:
        needed = obj.lifetime_s * self.margin
        for cls in self.classes:
            if cls >= needed:
                return cls
        return self.classes[-1]

    @property
    def name(self) -> str:
        return f"classes(n={len(self.classes)})"


class LifetimeMatchedPolicy(DCMPolicy):
    """Fully-flexible DCM: retention = lifetime × margin, clamped to the
    device envelope by the caller."""

    def __init__(self, margin: float = 1.2) -> None:
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        self.margin = margin

    def retention_for(self, obj: DataObject) -> float:
        return obj.lifetime_s * self.margin

    @property
    def name(self) -> str:
        return f"matched(x{self.margin})"


@dataclass
class PolicyScore:
    """Cost of serving a workload under one DCM policy."""

    policy: str
    objects: int
    bytes_written: float
    write_energy_j: float
    damage_fraction: float  # total endurance consumed (sum over writes)
    refreshes: int  # writes re-done because retention < lifetime
    refresh_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.write_energy_j + self.refresh_energy_j


def evaluate_policy(
    policy: DCMPolicy,
    objects: Sequence[DataObject],
    device: MRMDevice,
) -> PolicyScore:
    """Analytically score ``policy`` over a stream of data objects.

    For each object the policy picks a retention; the model charges the
    initial write plus any refreshes needed to cover the full lifetime
    (``ceil(lifetime / retention) - 1`` rewrites when under-provisioned).
    Wear is the damage fraction of every (re)write at that retention.
    The device's envelope clamps requested retentions.

    This is a closed-form evaluation (no event simulation) so policy
    sweeps stay fast; experiment E8 uses it directly.
    """
    cfg = device.config
    total_bytes = 0.0
    write_energy = 0.0
    refresh_energy = 0.0
    damage = 0.0
    refreshes = 0
    for obj in objects:
        retention = policy.retention_for(obj)
        retention = min(max(retention, cfg.min_retention_s), cfg.max_retention_s)
        writes_needed = max(1, math.ceil(obj.lifetime_s / retention))
        energy_each = device.write_energy_for(obj.size_bytes, retention)
        damage_each = (
            obj.size_bytes / cfg.block_bytes
        ) / device.endurance_at(retention)
        total_bytes += obj.size_bytes * writes_needed
        write_energy += energy_each
        refresh_energy += energy_each * (writes_needed - 1)
        refreshes += writes_needed - 1
        damage += damage_each * writes_needed
    return PolicyScore(
        policy=policy.name,
        objects=len(objects),
        bytes_written=total_bytes,
        write_energy_j=write_energy,
        damage_fraction=damage,
        refreshes=refreshes,
        refresh_energy_j=refresh_energy,
    )
