"""The refresh-or-expire deadline scheduler.

Section 4: "The scheduler will need to track the data expiration times,
and decide whether to refresh it or move it to another tier based on the
state of the requests that depend on that data."

:class:`RefreshScheduler` is that component.  Blocks are registered with
their deadline and a *liveness callback* — a control-plane predicate that
answers "does anything still need this data?" at decision time.  At each
deadline the scheduler makes a :class:`RefreshDecision`:

- ``REFRESH`` — data still needed: rewrite in place (pay one block
  write) and re-arm the deadline;
- ``EXPIRE``  — nothing needs it: let it decay; zero energy, and the
  zone becomes reclaimable;
- ``MIGRATE`` — data still needed but this device should not keep it
  (e.g. wear pressure); the caller moves it to another tier.

Deadlines are kept in a heap with lazy invalidation, so refresh-then-
re-arm and explicit deregistration are O(log n).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.mrm import MRMDevice
from repro.core.zones import Block, BlockState


class RefreshDecision(enum.Enum):
    REFRESH = "refresh"
    EXPIRE = "expire"
    MIGRATE = "migrate"


@dataclass
class RefreshStats:
    """Tally of scheduler decisions and their cost."""

    refreshed: int = 0
    expired: int = 0
    migrated: int = 0
    refresh_energy_j: float = 0.0

    @property
    def decisions(self) -> int:
        return self.refreshed + self.expired + self.migrated


#: Liveness predicate: (block, now) -> is the data still needed?
LivenessFn = Callable[[Block, float], bool]


class RefreshScheduler:
    """Deadline-driven refresh/expire/migrate scheduler for one device.

    Parameters
    ----------
    device:
        The MRM device whose blocks are being managed.
    guard_band:
        Fraction of the retention period by which decisions run *early*
        (0.1 = act at 90% of the deadline) so data never silently decays
        past spec while a decision is pending.
    wear_migration_threshold:
        If the block's slot damage exceeds this fraction, prefer
        ``MIGRATE`` over ``REFRESH`` to stop hammering a dying slot.
    """

    def __init__(
        self,
        device: MRMDevice,
        guard_band: float = 0.1,
        wear_migration_threshold: float = 0.9,
    ) -> None:
        if not 0.0 <= guard_band < 1.0:
            raise ValueError("guard band must be in [0, 1)")
        self.device = device
        self.guard_band = guard_band
        self.wear_migration_threshold = wear_migration_threshold
        self.stats = RefreshStats()
        self._heap: List[Tuple[float, int, Block]] = []
        self._seq = itertools.count()
        self._liveness: Dict[int, LivenessFn] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def decision_time(self, block: Block) -> float:
        """When to decide for this block: deadline minus the guard band."""
        return block.written_at + block.retention_s * (1.0 - self.guard_band)

    def register(self, block: Block, liveness: LivenessFn) -> None:
        """Track a block; ``liveness`` is asked at each decision point."""
        self._liveness[id(block)] = liveness
        heapq.heappush(self._heap, (self.decision_time(block), next(self._seq), block))

    def deregister(self, block: Block) -> None:
        """Stop tracking (data deleted/moved by the caller). Lazy: the
        heap entry is skipped when popped."""
        self._liveness.pop(id(block), None)

    def pending(self) -> int:
        """Blocks still tracked."""
        return len(self._liveness)

    def next_decision_time(self) -> Optional[float]:
        """Earliest pending decision, or None."""
        while self._heap:
            when, _seq, block = self._heap[0]
            if id(block) in self._liveness and block.state is BlockState.VALID:
                return when
            heapq.heappop(self._heap)  # lazy-invalidated entry
        return None

    # ------------------------------------------------------------------
    # The decision loop
    # ------------------------------------------------------------------
    def run_until(self, now: float) -> List[Tuple[Block, RefreshDecision]]:
        """Process every decision due at or before ``now``.

        Returns the (block, decision) pairs made, in order.  ``MIGRATE``
        blocks are deregistered — the caller owns the move.
        """
        made: List[Tuple[Block, RefreshDecision]] = []
        while True:
            when = self.next_decision_time()
            if when is None or when > now:
                break
            _when, _seq, block = heapq.heappop(self._heap)
            liveness = self._liveness.get(id(block))
            if liveness is None or block.state is not BlockState.VALID:
                continue
            decision = self._decide(block, _when, liveness)
            made.append((block, decision))
        return made

    def _decide(
        self, block: Block, now: float, liveness: LivenessFn
    ) -> RefreshDecision:
        if not liveness(block, now):
            self.device.mark_expired(block)
            self.deregister(block)
            self.stats.expired += 1
            return RefreshDecision.EXPIRE
        damage = self.device.damage_of(block.zone_id, block.index)
        if damage >= self.wear_migration_threshold:
            self.deregister(block)
            self.stats.migrated += 1
            return RefreshDecision.MIGRATE
        result = self.device.refresh_block(block, now)
        self.stats.refreshed += 1
        self.stats.refresh_energy_j += result.energy_j
        heapq.heappush(
            self._heap, (self.decision_time(block), next(self._seq), block)
        )
        return RefreshDecision.REFRESH
