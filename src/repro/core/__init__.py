"""The paper's primary contribution: Managed-Retention Memory (MRM).

This package implements the memory class the paper proposes and the
mechanisms Section 4 sketches:

- :mod:`~repro.core.retention` — the quantitative retention physics:
  thermal-stability factor Δ linking retention time to write energy,
  write latency, endurance and density (the knob MRM turns).
- :mod:`~repro.core.errors` — retention decay as a raw bit-error-rate
  that grows with data age and temperature.
- :mod:`~repro.core.zones` — the block/zone address space of the MRM
  device interface (no byte-addressable random access; append-only
  zones, ZNS-like).
- :mod:`~repro.core.mrm` — the MRM device itself: programmable-retention
  writes, per-block retention deadlines, damage-fraction wear.
- :mod:`~repro.core.wear` — software wear-leveling over zones.
- :mod:`~repro.core.refresh` — the refresh-or-expire deadline scheduler.
- :mod:`~repro.core.controller` — the lightweight software control plane
  tying zones + wear + refresh together over one device.
- :mod:`~repro.core.dcm` — Dynamically Configurable Memory: choosing a
  retention per write from the data's declared lifetime.
- :mod:`~repro.core.placement` — data-object descriptors (weights, KV
  cache, activations) with lifetime and access-rate metadata, consumed
  by the tiering engine.
"""

from repro.core.retention import RetentionModel, RetentionParams
from repro.core.errors import RetentionErrorModel
from repro.core.zones import Block, BlockState, Zone, ZonedAddressSpace
from repro.core.mrm import MRMConfig, MRMDevice
from repro.core.wear import WearLeveler
from repro.core.refresh import RefreshDecision, RefreshScheduler
from repro.core.controller import ControllerStats, MRMController
from repro.core.dcm import DCMPolicy, FixedRetentionPolicy, LifetimeMatchedPolicy, RetentionClassPolicy
from repro.core.placement import AccessProfile, DataKind, DataObject
from repro.core.replication import FaultMap, ReplicaPair, ReplicationManager
from repro.core.banks import BankGeometry, BankedDevice

__all__ = [
    "AccessProfile",
    "BankGeometry",
    "BankedDevice",
    "Block",
    "BlockState",
    "ControllerStats",
    "DCMPolicy",
    "DataKind",
    "DataObject",
    "FaultMap",
    "FixedRetentionPolicy",
    "LifetimeMatchedPolicy",
    "MRMConfig",
    "MRMController",
    "MRMDevice",
    "RefreshDecision",
    "RefreshScheduler",
    "ReplicaPair",
    "ReplicationManager",
    "RetentionClassPolicy",
    "RetentionErrorModel",
    "RetentionModel",
    "RetentionParams",
    "WearLeveler",
    "Zone",
    "ZonedAddressSpace",
]
