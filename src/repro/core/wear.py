"""Software wear-leveling for MRM zones.

MRM pushes wear-leveling out of the device and into the control plane
(Section 4: "much of the functionality that is typically handled on the
device ... can be left up to a software control plane higher up in the
stack").  The control plane levels wear simply by *choosing which zone to
open next*: since zones are append-only and reset as a unit, steering new
write streams to the least-damaged empty zone is sufficient — no
background data movement, no write amplification.

:class:`WearLeveler` implements that allocation policy plus the metrics
used to evaluate it (damage imbalance, projected device lifetime).
"""

from __future__ import annotations

from typing import List

from repro.core.mrm import MRMDevice
from repro.core.zones import Zone


class WearLeveler:
    """Zone-allocation wear-leveling policy over one MRM device.

    Policies
    --------
    ``"least-worn"`` (default)
        Open the empty zone with the lowest peak damage.
    ``"round-robin"``
        Cycle through zones in order (the naive baseline; skews badly
        when streams have different retention strengths).
    ``"first-fit"``
        Always the lowest-numbered empty zone (the no-leveling baseline).
    """

    POLICIES = ("least-worn", "round-robin", "first-fit")

    def __init__(self, device: MRMDevice, policy: str = "least-worn") -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {self.POLICIES}")
        self.device = device
        self.policy = policy
        self._rr_cursor = 0

    def pick_zone(self) -> Zone:
        """Choose the next zone to open for a new write stream.

        Raises ``RuntimeError`` when no empty zone exists (the caller
        must reset an expired zone first).
        """
        failed = self.device.failed_zones
        empty = [
            z for z in self.device.space.empty_zones()
            if z.zone_id not in failed
        ]
        if not empty:
            raise RuntimeError("no empty zones available; reset expired zones first")
        if self.policy == "least-worn":
            return min(empty, key=lambda z: self.device.zone_damage(z.zone_id))
        if self.policy == "round-robin":
            empty_ids = {z.zone_id for z in empty}
            n = self.device.space.num_zones
            for offset in range(n):
                candidate = (self._rr_cursor + offset) % n
                if candidate in empty_ids:
                    self._rr_cursor = (candidate + 1) % n
                    return self.device.space.zone(candidate)
            raise AssertionError("unreachable: empty list was non-empty")
        # first-fit
        return min(empty, key=lambda z: z.zone_id)

    # ------------------------------------------------------------------
    # Evaluation metrics
    # ------------------------------------------------------------------
    def damage_imbalance(self) -> float:
        """Peak/mean damage ratio; 1.0 is perfectly level."""
        mean = self.device.mean_damage
        if mean <= 0:
            return 1.0
        return self.device.max_damage / mean

    def projected_lifetime_writes(self) -> float:
        """How many more block writes (at the historical damage mix) fit
        before the most-worn slot hits end of life.

        Infinity when nothing has been written yet.
        """
        device = self.device
        if device.blocks_written == 0 or device.max_damage <= 0:
            return float("inf")
        damage_per_write = device.max_damage / device.blocks_written
        remaining = max(0.0, 1.0 - device.max_damage)
        return remaining / damage_per_write

    def zones_by_damage(self) -> List[Zone]:
        """All zones, most-damaged first (for reporting)."""
        return sorted(
            self.device.space.zones,
            key=lambda z: self.device.zone_damage(z.zone_id),
            reverse=True,
        )
