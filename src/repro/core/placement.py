"""Data-object descriptors: what inference actually stores.

Section 2 identifies three in-memory data structures with very different
lifetimes and access patterns; retention-aware placement and DCM both
need those properties as first-class metadata.  This module defines the
vocabulary:

- :class:`DataKind` — weights / KV cache / activations (plus a generic
  kind for other data).
- :class:`AccessProfile` — read/write rates, sequentiality,
  predictability.
- :class:`DataObject` — one placeable object: a kind, a size, a
  *lifetime* (how long this copy must stay readable) and an access
  profile.

Factory helpers build correctly-parameterized objects for the three
inference structures from a model configuration, so experiments and the
tiering engine share one source of truth.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.units import DAY, HOUR


class DataKind(enum.Enum):
    """The inference data structures of Section 2."""

    WEIGHTS = "weights"
    KV_CACHE = "kv-cache"
    ACTIVATIONS = "activations"
    OTHER = "other"


@dataclass(frozen=True)
class AccessProfile:
    """How a data object is accessed while it lives.

    Attributes
    ----------
    read_bytes_per_s / write_bytes_per_s:
        Sustained bandwidth demands.
    sequential_reads / sequential_writes:
        Whether IO is sequential (true for weights and KV cache — the
        property that lets MRM drop byte addressability).
    in_place_updates:
        Whether existing bytes get overwritten (false for weights and KV
        cache: weights are immutable, KV is append-only).
    predictable:
        Whether addresses are known in advance (static virtual-physical
        mapping, iterative full scans).
    """

    read_bytes_per_s: float
    write_bytes_per_s: float
    sequential_reads: bool = True
    sequential_writes: bool = True
    in_place_updates: bool = False
    predictable: bool = True

    def __post_init__(self) -> None:
        if self.read_bytes_per_s < 0 or self.write_bytes_per_s < 0:
            raise ValueError("rates must be >= 0")

    @property
    def read_write_ratio(self) -> float:
        """Bytes read per byte written (inf for never-written data)."""
        if self.write_bytes_per_s == 0:
            return float("inf")
        return self.read_bytes_per_s / self.write_bytes_per_s


_object_ids = itertools.count()


@dataclass
class DataObject:
    """One placeable unit of data.

    Attributes
    ----------
    kind / size_bytes:
        What and how big.
    lifetime_s:
        How long this copy must remain readable.  This is the number DCM
        matches retention to.  For weights it is the redeploy interval;
        for a KV cache, the context's remaining service time; for
        activations, one forward pass.
    access:
        The access profile.
    durable_elsewhere:
        True if a reference copy exists in storage (weights) — loss here
        is a re-read, not data loss.
    recomputable:
        True for soft state that can be regenerated (KV cache,
        activations) — loss is recomputation cost, not data loss.
    """

    kind: DataKind
    size_bytes: int
    lifetime_s: float
    access: AccessProfile
    durable_elsewhere: bool = False
    recomputable: bool = False
    name: str = ""
    object_id: int = field(default_factory=lambda: next(_object_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")
        if self.lifetime_s <= 0:
            raise ValueError("lifetime must be positive")
        if not self.name:
            self.name = f"{self.kind.value}-{self.object_id}"

    @property
    def needs_persistence(self) -> bool:
        """True only if losing this copy loses data (neither durable
        elsewhere nor recomputable) — rare in inference."""
        return not (self.durable_elsewhere or self.recomputable)


# ---------------------------------------------------------------------------
# Factories for the three inference data structures
# ---------------------------------------------------------------------------
def weights_object(
    size_bytes: int,
    read_bytes_per_s: float,
    redeploy_interval_s: float = 7 * DAY,
    name: str = "",
) -> DataObject:
    """Model weights: immutable, read every token, replaced wholesale
    when a new model version deploys."""
    return DataObject(
        kind=DataKind.WEIGHTS,
        size_bytes=size_bytes,
        lifetime_s=redeploy_interval_s,
        access=AccessProfile(
            read_bytes_per_s=read_bytes_per_s,
            write_bytes_per_s=size_bytes / redeploy_interval_s,
            sequential_reads=True,
            sequential_writes=True,
            in_place_updates=False,
            predictable=True,
        ),
        durable_elsewhere=True,
        name=name,
    )


def kv_cache_object(
    size_bytes: int,
    read_bytes_per_s: float,
    append_bytes_per_s: float,
    context_lifetime_s: float = 1 * HOUR,
    name: str = "",
) -> DataObject:
    """A context's KV cache: append-only soft state, fully re-read every
    decode step, recomputable from the token sequence (at real cost)."""
    return DataObject(
        kind=DataKind.KV_CACHE,
        size_bytes=size_bytes,
        lifetime_s=context_lifetime_s,
        access=AccessProfile(
            read_bytes_per_s=read_bytes_per_s,
            write_bytes_per_s=append_bytes_per_s,
            sequential_reads=True,
            sequential_writes=True,
            in_place_updates=False,
            predictable=True,
        ),
        recomputable=True,
        name=name,
    )


def activations_object(
    size_bytes: int,
    bandwidth_bytes_per_s: float,
    forward_pass_s: float = 0.05,
    name: str = "",
) -> DataObject:
    """Layer activations: transient, write-heavy, alive for one forward
    pass only — the structure that genuinely wants DRAM/HBM."""
    return DataObject(
        kind=DataKind.ACTIVATIONS,
        size_bytes=size_bytes,
        lifetime_s=forward_pass_s,
        access=AccessProfile(
            read_bytes_per_s=bandwidth_bytes_per_s,
            write_bytes_per_s=bandwidth_bytes_per_s,
            sequential_reads=False,
            sequential_writes=False,
            in_place_updates=True,
            predictable=False,
        ),
        recomputable=True,
        name=name,
    )
