"""The Managed-Retention Memory device.

This is the device class the paper proposes: a resistive memory that

- exposes a zoned, append-only *block* interface (no byte-addressable
  random access) — :mod:`repro.core.zones`;
- takes a **retention time as a parameter of every write** and programs
  cells just hard enough to hold the data that long
  (:class:`~repro.core.retention.RetentionModel` supplies the write
  energy / latency / endurance at each retention);
- does **no on-device housekeeping**: no refresh, no wear-leveling, no
  garbage collection.  Expiry, refresh and wear policy belong to the
  software control plane (:mod:`repro.core.controller`), which is
  "best-placed to make these decisions" (Section 4).

Wear is tracked as a *damage fraction* per physical block slot: a write
programmed for retention ``r`` consumes ``1 / endurance(r)`` of the
slot's life.  Gentle (short-retention) writes therefore wear the cell
far less than 10-year-strength writes — the mechanism behind Figure 1's
product-vs-potential endurance gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import RetentionErrorModel
from repro.lint.effects.contracts import declared_pure
from repro.core.retention import RetentionModel, RetentionParams
from repro.core.zones import Block, BlockState, ZonedAddressSpace
from repro.devices.base import (
    AccessKind,
    AccessResult,
    BankFailure,
    DeviceFailure,
    MemoryDevice,
    TechnologyProfile,
)
from repro.devices.catalog import RRAM_POTENTIAL
from repro.units import DAY, GiB, MiB


@dataclass(frozen=True)
class MRMConfig:
    """Geometry and policy limits of one MRM device.

    Attributes
    ----------
    capacity_bytes:
        Total device capacity; rounded down to whole zones.
    block_bytes:
        Append/block unit.  The paper notes KV-cache pages are "several
        MBs to 10s of MBs" and read sequentially, so blocks are large.
    blocks_per_zone:
        Zone size in blocks (a zone resets as a unit).
    reference:
        The 10-year-retention technology the MRM cell derives from.
    retention_params:
        Shape of the retention trade-off (see
        :class:`~repro.core.retention.RetentionParams`).
    min_retention_s / max_retention_s:
        The managed-retention envelope.  ``max`` is deliberately days,
        not years: MRM refuses to be storage.
    operating_temperature_c:
        In-package temperature; writes are derated (programmed stronger)
        so the *target* retention holds at this temperature.
    bits_per_cell:
        Multi-level encoding (Section 3: cells "have already
        demonstrated potential for multi-level encoding [10]").  Extra
        bits multiply density but narrow the level windows: writes must
        be programmed for a stronger effective retention
        (``MLC_RETENTION_DERATE`` per extra bit) and pay extra
        program-verify energy (``MLC_WRITE_COST`` per extra bit).
    """

    capacity_bytes: int = 32 * GiB
    block_bytes: int = 8 * MiB
    blocks_per_zone: int = 32
    reference: TechnologyProfile = RRAM_POTENTIAL
    retention_params: RetentionParams = field(default_factory=RetentionParams)
    error_model: RetentionErrorModel = field(default_factory=RetentionErrorModel)
    min_retention_s: float = 1.0
    max_retention_s: float = 30 * DAY
    operating_temperature_c: float = 85.0
    bits_per_cell: int = 1

    #: Each extra bit per cell narrows level windows: the cell must be
    #: programmed as if for this factor more retention.
    MLC_RETENTION_DERATE = 4.0
    #: Program-verify energy multiplier per extra bit per cell.
    MLC_WRITE_COST = 1.5

    def __post_init__(self) -> None:
        if self.capacity_bytes < self.block_bytes * self.blocks_per_zone:
            raise ValueError("capacity smaller than a single zone")
        if self.min_retention_s <= 0 or self.max_retention_s <= self.min_retention_s:
            raise ValueError("need 0 < min_retention < max_retention")
        if self.bits_per_cell < 1:
            raise ValueError("bits_per_cell must be >= 1")

    @property
    def zone_bytes(self) -> int:
        return self.block_bytes * self.blocks_per_zone

    @property
    def num_zones(self) -> int:
        return self.capacity_bytes // self.zone_bytes


class RetentionOutOfRange(ValueError):
    """Requested retention outside the device's managed envelope."""


class MRMDevice(MemoryDevice):
    """One MRM device instance.

    The public surface is deliberately small — the paper's "lightweight
    memory controller":

    - :meth:`append` — write a block into a zone with a target retention;
    - :meth:`read_block` — sequential block read;
    - :meth:`refresh_block` — rewrite a block in place (control-plane
      decision, paid like a write);
    - :meth:`reset_zone` — bulk reclaim;
    - :meth:`rber_of` — current raw bit-error rate of a block's data.

    Time is an explicit ``now`` argument everywhere; the device holds no
    clock, so it composes with the discrete-event simulator or with
    plain analytical code.
    """

    def __init__(self, config: Optional[MRMConfig] = None, name: str = "") -> None:
        self.config = config or MRMConfig()
        cfg = self.config
        self.retention_model = RetentionModel(cfg.reference, cfg.retention_params)
        self.error_model = cfg.error_model
        self.space = ZonedAddressSpace(
            cfg.num_zones, cfg.blocks_per_zone, cfg.block_bytes
        )
        super().__init__(
            profile=cfg.reference,
            capacity_bytes=self.space.capacity_bytes,
            wear_block_bytes=cfg.block_bytes,
            name=name or f"mrm-{cfg.reference.name}",
        )
        # Damage fraction per physical slot (zone_id, index) in [0, inf).
        self._damage: Dict[Tuple[int, int], float] = {}
        self.blocks_written = 0
        self.blocks_refreshed = 0
        self.blocks_expired = 0
        # Fault-injection state (see repro.faults): transient extra raw
        # bit errors per slot, failed banks, whole-device failure.
        self._injected_errors: Dict[Tuple[int, int], int] = {}
        self._failed_zones: Set[int] = set()
        self._failed = False

    # ------------------------------------------------------------------
    # Retention handling
    # ------------------------------------------------------------------
    def _validate_retention(self, retention_s: float) -> None:
        cfg = self.config
        if not cfg.min_retention_s <= retention_s <= cfg.max_retention_s:
            raise RetentionOutOfRange(
                f"retention {retention_s:.3g}s outside managed envelope "
                f"[{cfg.min_retention_s:.3g}, {cfg.max_retention_s:.3g}]s"
            )

    @declared_pure
    def programmed_retention(self, target_retention_s: float) -> float:
        """Retention to program so ``target_retention_s`` holds at the
        operating temperature (Arrhenius derating) with the MLC window
        margin (narrower levels decay past spec sooner)."""
        mlc_margin = self.config.MLC_RETENTION_DERATE ** (
            self.config.bits_per_cell - 1
        )
        return self.retention_model.required_retention_for_temperature(
            target_retention_s * mlc_margin, self.config.operating_temperature_c
        )

    def _mlc_write_cost(self) -> float:
        return self.config.MLC_WRITE_COST ** (self.config.bits_per_cell - 1)

    @declared_pure
    def write_energy_for(self, size_bytes: int, retention_s: float) -> float:
        """Energy of writing ``size_bytes`` at ``retention_s`` target."""
        programmed = self.programmed_retention(retention_s)
        return (
            size_bytes
            * self.retention_model.write_energy_j_per_byte(programmed)
            * self._mlc_write_cost()
        )

    @declared_pure
    def density_multiplier(self) -> float:
        """Areal density gain over the reference: MLC bits times the
        relaxed-retention transistor shrink (evaluated at the envelope
        midpoint)."""
        mid_retention = (self.config.min_retention_s * self.config.max_retention_s) ** 0.5
        return self.config.bits_per_cell * self.retention_model.density_multiplier(
            self.programmed_retention(mid_retention)
        )

    @declared_pure
    def write_latency_for(self, size_bytes: int, retention_s: float) -> float:
        programmed = self.programmed_retention(retention_s)
        return (
            self.retention_model.write_latency_s(programmed)
            + size_bytes / self.retention_model.write_bandwidth(programmed)
        )

    @declared_pure
    def endurance_at(self, retention_s: float) -> float:
        """Cell endurance when always written at this target retention."""
        programmed = self.programmed_retention(retention_s)
        return self.retention_model.endurance_cycles(programmed)

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def append(
        self, zone_id: int, size_bytes: int, retention_s: float, now: float
    ) -> Tuple[Block, AccessResult]:
        """Append one block to ``zone_id`` with a target retention."""
        if self._failed:
            raise DeviceFailure(self.name)
        if zone_id in self._failed_zones:
            raise BankFailure(self.name, zone_id)
        self._validate_retention(retention_s)
        zone = self.space.zone(zone_id)
        block = zone.append(size_bytes, now, retention_s)
        result = self._charge_write(block)
        self.blocks_written += 1
        return block, result

    def _charge_write(self, block: Block) -> AccessResult:
        size = block.size_bytes
        latency = self.write_latency_for(size, block.retention_s)
        energy = self.write_energy_for(size, block.retention_s)
        c = self.counters
        c.writes += 1
        c.bytes_written += size
        c.write_energy_j += energy
        slot = (block.zone_id, block.index)
        self._damage[slot] = self._damage.get(slot, 0.0) + 1.0 / self.endurance_at(
            block.retention_s
        )
        address = self.space.block_address(block)
        return AccessResult(AccessKind.WRITE, address, size, latency, energy)

    def read_block(self, block: Block, now: float) -> AccessResult:
        """Sequential read of one block."""
        if self._failed:
            raise DeviceFailure(self.name)
        if block.zone_id in self._failed_zones:
            raise BankFailure(self.name, block.zone_id)
        if block.state is not BlockState.VALID:
            raise RuntimeError(
                f"read of {block.state.value} block z{block.zone_id}b{block.index}"
            )
        address = self.space.block_address(block)
        return super().read(address, block.size_bytes)

    def rber_of(self, block: Block, now: float) -> float:
        """Raw bit-error rate of the block's data at time ``now``."""
        return self.error_model.rber(block.age(now), block.retention_s)

    def raw_bit_errors(self, block: Block, now: float) -> int:
        """Raw bit errors a read of ``block`` sees right now: mean-field
        retention decay (rounded) plus any injected transient burst."""
        expected = self.error_model.expected_bit_errors(
            block.age(now), block.retention_s, block.size_bytes
        )
        slot = (block.zone_id, block.index)
        return int(round(expected)) + self._injected_errors.get(slot, 0)

    def injected_bit_errors(self, block: Block) -> int:
        """The injected (transient-burst) errors alone — the component a
        re-read clears, as opposed to the age-driven decay."""
        return self._injected_errors.get((block.zone_id, block.index), 0)

    def refresh_block(self, block: Block, now: float) -> AccessResult:
        """Control-plane refresh: rewrite the block in place.

        Resets the block's age (and therefore its deadline); costs a full
        block write in energy, latency and wear.
        """
        if self._failed:
            raise DeviceFailure(self.name)
        if block.zone_id in self._failed_zones:
            raise BankFailure(self.name, block.zone_id)
        if block.state is not BlockState.VALID:
            raise RuntimeError("refresh of non-valid block")
        block.written_at = now
        block.refresh_count += 1
        # Rewriting the cells clears any injected transient errors too.
        self._injected_errors.pop((block.zone_id, block.index), None)
        self.blocks_refreshed += 1
        result = self._charge_write(block)
        self.counters.refreshes += 1
        self.counters.refresh_energy_j += result.energy_j
        self.counters.write_energy_j -= result.energy_j
        return result

    def mark_expired(self, block: Block) -> None:
        """Control-plane declares a block's data lost/abandoned."""
        if block.state is BlockState.VALID:
            block.state = BlockState.EXPIRED
            self.blocks_expired += 1

    def reset_zone(self, zone_id: int) -> List[Block]:
        """Reclaim a zone; all its blocks become free."""
        if zone_id in self._failed_zones:
            raise BankFailure(self.name, zone_id)
        for index in range(self.config.blocks_per_zone):
            self._injected_errors.pop((zone_id, index), None)
        return self.space.zone(zone_id).reset()

    # ------------------------------------------------------------------
    # Fault injection (driven by repro.faults; deterministic, no RNG)
    # ------------------------------------------------------------------
    @property
    def is_failed(self) -> bool:
        """True after :meth:`fail_device` — every access raises."""
        return self._failed

    @property
    def failed_zones(self) -> frozenset:
        """Zone ids lost to bank failures (never reusable)."""
        return frozenset(self._failed_zones)

    def inject_bit_errors(self, block: Block, bit_errors: int) -> None:
        """Add a transient raw-bit-error burst to a block's next reads.

        The burst persists until the cells are rewritten
        (:meth:`refresh_block`) or explicitly cleared
        (:meth:`clear_transient_errors` — the "re-read succeeds" path,
        since the noise source was transient).
        """
        if bit_errors < 0:
            raise ValueError("bit error count must be >= 0")
        if block.state is not BlockState.VALID:
            raise RuntimeError("cannot inject errors into a non-valid block")
        slot = (block.zone_id, block.index)
        self._injected_errors[slot] = (
            self._injected_errors.get(slot, 0) + bit_errors
        )

    def clear_transient_errors(self, block: Block) -> int:
        """Drop a block's injected burst (models a clean re-read);
        returns how many injected errors were cleared."""
        return self._injected_errors.pop((block.zone_id, block.index), 0)

    def inject_retention_violation(
        self, block: Block, now: float, severity: float = 2.0
    ) -> None:
        """Age a block past its retention deadline.

        Rewinds ``written_at`` so the block's age becomes ``severity``
        times its spec retention — its deadline is now in the past and
        its RBER is above the at-spec threshold, exactly the state a
        missed refresh or thermal excursion leaves behind.
        """
        if severity < 1.0:
            raise ValueError("severity below 1 is not a violation")
        if block.state is not BlockState.VALID:
            raise RuntimeError("cannot age a non-valid block")
        block.written_at = now - block.retention_s * severity

    def fail_bank(self, zone_id: int) -> List[Block]:
        """Fail one zone (bank): its valid blocks' data is lost and the
        zone is permanently unusable.  Returns the lost blocks."""
        zone = self.space.zone(zone_id)  # validates the id
        self._failed_zones.add(zone_id)
        lost = [b for b in zone.blocks if b.state is BlockState.VALID]
        for block in lost:
            block.state = BlockState.EXPIRED
            self.blocks_expired += 1
        return lost

    def fail_device(self) -> List[Block]:
        """Fail the whole device; every subsequent access raises
        :class:`~repro.devices.base.DeviceFailure`.  Returns all blocks
        whose data was live at the moment of failure."""
        self._failed = True
        return list(self.space.valid_blocks())

    # ------------------------------------------------------------------
    # Wear inspection (damage-fraction based)
    # ------------------------------------------------------------------
    def damage_of(self, zone_id: int, index: int) -> float:
        """Life consumed by a physical slot (1.0 = rated end of life)."""
        return self._damage.get((zone_id, index), 0.0)

    @property
    def max_damage(self) -> float:
        return max(self._damage.values()) if self._damage else 0.0

    @property
    def mean_damage(self) -> float:
        if not self._damage:
            return 0.0
        total_slots = self.config.num_zones * self.config.blocks_per_zone
        return sum(self._damage.values()) / total_slots

    def zone_damage(self, zone_id: int) -> float:
        """Peak damage across a zone's slots."""
        damages = [
            v for (z, _i), v in self._damage.items() if z == zone_id
        ]
        return max(damages) if damages else 0.0

    def remaining_lifetime_fraction(self) -> float:
        return max(0.0, 1.0 - self.max_damage)

    # ------------------------------------------------------------------
    # No-op housekeeping (the point of MRM)
    # ------------------------------------------------------------------
    def accrue_refresh_energy(self, duration_s: float, occupancy: float = 1.0) -> float:
        """MRM performs no autonomous refresh: zero energy, always.

        Refresh happens only when the control plane explicitly calls
        :meth:`refresh_block` — matched retention makes periodic
        device-side refresh unnecessary (Section 3).
        """
        return 0.0
