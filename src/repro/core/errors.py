"""Retention decay as a raw bit-error rate (RBER).

MRM deliberately writes data with finite retention, so "how wrong is the
data after time t?" is a first-class question (Section 4, retention-aware
error correction).  The model:

Each cell flips between its two states via thermally-activated escape —
a random telegraph process with mean switching time ``t_mean``.  The
probability a cell reads back wrong after age ``t`` is the telegraph
solution::

    RBER(t) = 1/2 * (1 - exp(-2 t / t_mean))

which grows linearly (``≈ t / t_mean``) while fresh and saturates at 0.5
(fully randomized) long after retention is exhausted.

Device datasheets do not quote ``t_mean``; they quote a *spec retention*
— the age at which RBER crosses a specified threshold (the level ECC can
still correct).  :class:`RetentionErrorModel` converts between the two,
so callers can say "this block was written with a 1-hour spec retention
at RBER 1e-4" and ask for the RBER at any age.

The ECC package (:mod:`repro.ecc`) consumes these RBERs to size codes;
the refresh scheduler (:mod:`repro.core.refresh`) uses the inverse — the
age at which RBER exceeds what the code corrects — as the refresh
deadline.
"""

from __future__ import annotations

import math
from repro.lint.effects.contracts import declared_pure
from dataclasses import dataclass


@dataclass(frozen=True)
class RetentionErrorModel:
    """Maps (spec retention, data age) to raw bit-error rate.

    Attributes
    ----------
    rber_at_spec:
        The RBER that defines "retention reached" — the raw error rate
        at exactly the spec-retention age.  1e-4 is a typical
        correctable-by-ECC threshold for memory-class devices.
    """

    rber_at_spec: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 < self.rber_at_spec < 0.5:
            raise ValueError(
                f"rber_at_spec must be in (0, 0.5), got {self.rber_at_spec}"
            )

    # ------------------------------------------------------------------
    # spec retention <-> mean switching time
    # ------------------------------------------------------------------
    @declared_pure
    def mean_switching_time(self, spec_retention_s: float) -> float:
        """Mean per-cell telegraph switching time implied by a spec
        retention: from ``1/2 (1 - exp(-2 t_spec / t_mean)) = rber_spec``.
        """
        if spec_retention_s <= 0:
            raise ValueError("spec retention must be positive")
        return 2.0 * spec_retention_s / -math.log1p(-2.0 * self.rber_at_spec)

    @declared_pure
    def spec_retention(self, mean_switching_time_s: float) -> float:
        """Inverse of :meth:`mean_switching_time`."""
        if mean_switching_time_s <= 0:
            raise ValueError("mean switching time must be positive")
        return mean_switching_time_s * -math.log1p(-2.0 * self.rber_at_spec) / 2.0

    # ------------------------------------------------------------------
    # RBER over age
    # ------------------------------------------------------------------
    @declared_pure
    def rber(self, age_s: float, spec_retention_s: float) -> float:
        """Raw bit-error rate of data aged ``age_s`` written at
        ``spec_retention_s``.

        Exactly ``rber_at_spec`` at ``age == spec_retention``; saturates
        at 0.5 far beyond the deadline.
        """
        if age_s < 0:
            raise ValueError("age must be >= 0")
        t_mean = self.mean_switching_time(spec_retention_s)
        return 0.5 * -math.expm1(-2.0 * age_s / t_mean)

    @declared_pure
    def age_for_rber(self, target_rber: float, spec_retention_s: float) -> float:
        """Age at which RBER reaches ``target_rber`` — the refresh
        deadline for a block whose ECC corrects up to ``target_rber``."""
        if not 0.0 < target_rber < 0.5:
            raise ValueError(f"target RBER must be in (0, 0.5), got {target_rber}")
        t_mean = self.mean_switching_time(spec_retention_s)
        return -0.5 * t_mean * math.log1p(-2.0 * target_rber)

    @declared_pure
    def expected_bit_errors(
        self, age_s: float, spec_retention_s: float, size_bytes: int
    ) -> float:
        """Expected raw bit errors in a block of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        return self.rber(age_s, spec_retention_s) * size_bytes * 8
