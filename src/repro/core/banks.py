"""Bank-level access modeling: why MRM can drop random access.

Section 3: "byte addressability is not required, because IO is large
and sequential", and Section 4's lightweight controller drops the
random-access machinery entirely.  This module quantifies what that
forfeits — and shows it is nothing, for this workload.

A memory device is an array of ``num_banks`` independent banks, each
able to service one ``stripe_bytes`` beat per ``bank_busy_s``.  Peak
bandwidth needs every bank busy every cycle:

- a **sequential block read** stripes beats round-robin across banks —
  perfect interleaving, every bank busy, ~full bandwidth;
- **random small reads** land on banks like balls in bins — some banks
  idle while others queue, and per-access overheads dominate when the
  access is smaller than a stripe beat.

:class:`BankedDevice` runs a slotted-time simulation of both patterns
(and anything between) and reports achieved bandwidth.  The result
backs the paper's interface argument: at multi-MiB block reads the
banked device achieves >95% of peak with *no* scheduling cleverness,
while 64-byte random access would waste most of the array — machinery
MRM simply does not need to build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.units import KiB, MiB


@dataclass(frozen=True)
class BankGeometry:
    """Banked-array geometry.

    Attributes
    ----------
    num_banks:
        Independent banks (crossbar subarrays / mats).
    stripe_bytes:
        Bytes one bank delivers per busy period (row/beat size).
    bank_busy_s:
        Time a bank is occupied per beat (array access time).
    """

    num_banks: int = 32
    stripe_bytes: int = 256
    bank_busy_s: float = 50e-9
    #: Per-access setup (address decode, wordline activate): paid once
    #: per independent access, amortized to nothing by a streaming scan.
    access_setup_s: float = 30e-9

    def __post_init__(self) -> None:
        if self.num_banks < 1 or self.stripe_bytes < 1:
            raise ValueError("geometry must be >= 1")
        if self.bank_busy_s <= 0:
            raise ValueError("bank busy time must be positive")
        if self.access_setup_s < 0:
            raise ValueError("setup time must be >= 0")

    @property
    def peak_bandwidth(self) -> float:
        """All banks streaming: bytes/second."""
        return self.num_banks * self.stripe_bytes / self.bank_busy_s


class BankedDevice:
    """Slotted-time bank simulation for one access pattern."""

    def __init__(self, geometry: Optional[BankGeometry] = None, seed: int = 0) -> None:
        self.geometry = geometry or BankGeometry()
        self.seed = seed

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------
    def sequential_read_bandwidth(self, total_bytes: int) -> float:
        """Achieved bandwidth of one sequential scan of ``total_bytes``.

        Beats stripe round-robin: bank ``i`` serves beats ``i, i+N, ...``.
        Every bank is continuously busy once the pipeline fills, so the
        scan takes ``ceil(beats / N)`` busy periods.
        """
        g = self.geometry
        if total_bytes < 1:
            raise ValueError("need at least one byte")
        beats = -(-total_bytes // g.stripe_bytes)
        slots = -(-beats // g.num_banks)
        # One setup for the whole stream (the controller opens the scan
        # once; subsequent beats are address-incremented).
        duration = g.access_setup_s + slots * g.bank_busy_s
        return total_bytes / duration

    def random_read_bandwidth(
        self, access_bytes: int, num_accesses: int = 20000
    ) -> float:
        """Achieved bandwidth of independent random reads.

        Each access occupies ``ceil(access_bytes / stripe)`` consecutive
        banks starting at a random bank; an access's beats all complete
        before its banks free (closed queueing per bank, FIFO).  The
        simulation advances slot by slot: per slot, each bank serves the
        head of its queue.
        """
        g = self.geometry
        if access_bytes < 1 or num_accesses < 1:
            raise ValueError("need positive access size and count")
        rng = np.random.default_rng(self.seed)
        beats_per_access = -(-access_bytes // g.stripe_bytes)
        # Busy time queued per bank: every beat occupies its bank, and
        # each access pays its setup on its starting bank.
        pending = np.zeros(g.num_banks, dtype=np.float64)
        starts = rng.integers(0, g.num_banks, size=num_accesses)
        for start in starts:
            banks = (int(start) + np.arange(beats_per_access)) % g.num_banks
            np.add.at(pending, banks, g.bank_busy_s)
            pending[int(start)] += g.access_setup_s
        # Total time: the busiest bank drains its queued busy time.
        duration = float(pending.max())
        total_bytes = num_accesses * access_bytes
        return total_bytes / duration

    # ------------------------------------------------------------------
    # The comparison
    # ------------------------------------------------------------------
    def efficiency(self, pattern: str, access_bytes: int) -> float:
        """Fraction of peak bandwidth achieved by a pattern."""
        if pattern == "sequential":
            achieved = self.sequential_read_bandwidth(max(access_bytes, 1))
        elif pattern == "random":
            achieved = self.random_read_bandwidth(access_bytes)
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
        return achieved / self.geometry.peak_bandwidth

    def pattern_table(self) -> Dict[str, float]:
        """Efficiency of the patterns the interface debate is about."""
        return {
            "sequential 8 MiB block": self.efficiency("sequential", 8 * MiB),
            "sequential 64 KiB": self.efficiency("sequential", 64 * KiB),
            "random 4 KiB": self.efficiency("random", 4 * KiB),
            "random 64 B": self.efficiency("random", 64),
        }
