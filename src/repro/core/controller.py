"""The MRM software control plane ("lightweight memory controller").

Section 4's controller argument: keep the device dumb (block access
only), and host refresh, wear-leveling and reclamation decisions in
software with global visibility.  :class:`MRMController` is that control
plane for one device.  It composes:

- :class:`~repro.core.wear.WearLeveler` — which zone to open next;
- :class:`~repro.core.refresh.RefreshScheduler` — refresh-or-expire at
  each block's retention deadline;
- retention-class *zone affinity*: writes with similar retention land in
  the same zone, so a zone's blocks expire together and the whole zone
  resets without copying — the append-only analogue of avoiding GC
  write amplification.

The public API is deliberately storage-like: ``write`` a buffer with a
retention and a liveness predicate, ``read`` it back, ``delete`` it, and
``tick`` the clock forward so deadline decisions run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.mrm import MRMDevice
from repro.core.refresh import LivenessFn, RefreshDecision, RefreshScheduler
from repro.core.wear import WearLeveler
from repro.core.zones import Block, BlockState, Zone


@dataclass
class ControllerStats:
    """Aggregate controller activity."""

    writes: int = 0
    reads: int = 0
    deletes: int = 0
    zones_reclaimed: int = 0
    migrations_requested: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class MRMController:
    """Software control plane over one :class:`~repro.core.mrm.MRMDevice`.

    Parameters
    ----------
    device:
        The managed device.
    wear_policy:
        Zone-allocation policy name (see :class:`WearLeveler`).
    guard_band:
        Refresh scheduler guard band.
    retention_affinity:
        If True (default), writes are bucketed into zones by
        log2(retention) so zone contents expire together.
    """

    def __init__(
        self,
        device: MRMDevice,
        wear_policy: str = "least-worn",
        guard_band: float = 0.1,
        retention_affinity: bool = True,
    ) -> None:
        self.device = device
        self.wear = WearLeveler(device, policy=wear_policy)
        self.scheduler = RefreshScheduler(device, guard_band=guard_band)
        self.retention_affinity = retention_affinity
        self.stats = ControllerStats()
        # retention-class bucket -> zone currently open for that class
        self._open_zones: Dict[int, Zone] = {}
        #: blocks handed to the caller for migration (device too worn)
        self.migration_queue: List[Block] = []

    # ------------------------------------------------------------------
    # Zone management
    # ------------------------------------------------------------------
    def _bucket_of(self, retention_s: float) -> int:
        if not self.retention_affinity:
            return 0
        return int(math.floor(math.log2(max(retention_s, 1e-9))))

    def _zone_for(self, retention_s: float) -> Zone:
        bucket = self._bucket_of(retention_s)
        zone = self._open_zones.get(bucket)
        if zone is None or zone.is_full:
            zone = self.wear.pick_zone()
            self._open_zones[bucket] = zone
        return zone

    def _reclaim_dead_zones(self) -> int:
        """Reset every full zone with no remaining valid blocks."""
        reclaimed = 0
        # A full zone is closed: drop it from the open set so it becomes
        # reclaimable as soon as its blocks die.
        self._open_zones = {
            bucket: zone
            for bucket, zone in self._open_zones.items()
            if not zone.is_full
        }
        open_ids = {z.zone_id for z in self._open_zones.values()}
        for zone in self.device.space.zones:
            if zone.is_empty or zone.zone_id in open_ids:
                continue
            if all(b.state is not BlockState.VALID for b in zone.blocks):
                self.device.reset_zone(zone.zone_id)
                reclaimed += 1
        self.stats.zones_reclaimed += reclaimed
        return reclaimed

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write(
        self,
        size_bytes: int,
        retention_s: float,
        now: float,
        liveness: Optional[LivenessFn] = None,
    ) -> List[Block]:
        """Write ``size_bytes`` with a target retention.

        The buffer is split into device blocks, placed in the open zone
        of the matching retention class, and registered with the refresh
        scheduler.  ``liveness`` defaults to "dead at first deadline"
        (write-once data that simply expires — the KV-cache common case).

        Returns the blocks holding the data, in order.
        """
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        liveness = liveness or (lambda _block, _now: False)
        block_bytes = self.device.config.block_bytes
        blocks: List[Block] = []
        remaining = size_bytes
        while remaining > 0:
            chunk = min(remaining, block_bytes)
            zone = self._zone_for(retention_s)
            block, _result = self.device.append(zone.zone_id, chunk, retention_s, now)
            self.scheduler.register(block, liveness)
            blocks.append(block)
            remaining -= chunk
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        return blocks

    def read(self, blocks: List[Block], now: float) -> Tuple[float, float]:
        """Sequential read of a block list; returns (latency_s, energy_j).

        Latency is the sum over blocks (one sequential stream); raises if
        any block has expired — the caller should have refreshed or
        recomputed.
        """
        latency = 0.0
        energy = 0.0
        for block in blocks:
            result = self.device.read_block(block, now)
            latency += result.latency_s
            energy += result.energy_j
            self.stats.bytes_read += block.size_bytes
        self.stats.reads += 1
        return latency, energy

    def delete(self, blocks: List[Block]) -> None:
        """Caller declares the data dead; zones reclaim on next tick."""
        for block in blocks:
            self.scheduler.deregister(block)
            self.device.mark_expired(block)
        self.stats.deletes += 1

    # ------------------------------------------------------------------
    # Control plane clock
    # ------------------------------------------------------------------
    def tick(self, now: float) -> Dict[str, int]:
        """Advance the control plane to ``now``: run due refresh
        decisions, collect migration requests, reclaim dead zones.

        Returns a summary dict of action counts for this tick.
        """
        decisions = self.scheduler.run_until(now)
        migrate = [b for b, d in decisions if d is RefreshDecision.MIGRATE]
        self.migration_queue.extend(migrate)
        self.stats.migrations_requested += len(migrate)
        reclaimed = self._reclaim_dead_zones()
        return {
            "refreshed": sum(
                1 for _b, d in decisions if d is RefreshDecision.REFRESH
            ),
            "expired": sum(1 for _b, d in decisions if d is RefreshDecision.EXPIRE),
            "migrated": len(migrate),
            "zones_reclaimed": reclaimed,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        return self.device.space.occupancy()

    def free_zones(self) -> int:
        return len(self.device.space.empty_zones())

    @property
    def housekeeping_energy_j(self) -> float:
        """Energy spent on refreshes (the only housekeeping MRM has)."""
        return self.scheduler.stats.refresh_energy_j
