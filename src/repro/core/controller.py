"""The MRM software control plane ("lightweight memory controller").

Section 4's controller argument: keep the device dumb (block access
only), and host refresh, wear-leveling and reclamation decisions in
software with global visibility.  :class:`MRMController` is that control
plane for one device.  It composes:

- :class:`~repro.core.wear.WearLeveler` — which zone to open next;
- :class:`~repro.core.refresh.RefreshScheduler` — refresh-or-expire at
  each block's retention deadline;
- retention-class *zone affinity*: writes with similar retention land in
  the same zone, so a zone's blocks expire together and the whole zone
  resets without copying — the append-only analogue of avoiding GC
  write amplification.

The public API is deliberately storage-like: ``write`` a buffer with a
retention and a liveness predicate, ``read`` it back, ``delete`` it, and
``tick`` the clock forward so deadline decisions run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mrm import MRMDevice
from repro.core.refresh import LivenessFn, RefreshDecision, RefreshScheduler
from repro.core.wear import WearLeveler
from repro.core.zones import Block, BlockState, Zone
from repro.devices.base import BankFailure
from repro.ecc.bch import BCHCode, DecodeOutcome
from repro.obs import NULL_REGISTRY


@dataclass
class ControllerStats:
    """Aggregate controller activity."""

    writes: int = 0
    reads: int = 0
    deletes: int = 0
    zones_reclaimed: int = 0
    migrations_requested: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    # Fault handling (see repro.faults and read_with_recovery)
    read_retries: int = 0
    escalated_refreshes: int = 0
    data_loss_blocks: int = 0
    silent_corruptions: int = 0
    remapped_zones: int = 0
    blocks_recovered: int = 0


@dataclass(frozen=True)
class RecoveryConfig:
    """How the control plane responds to detected read failures.

    The three mitigation paths Section 4's software control plane can
    take, each with an explicit cost model:

    - **retry with backoff** — a re-read at exponentially growing delay;
      recovers transient bursts (the noise source is gone on re-read).
    - **refresh escalation** — after retries are exhausted, restore the
      block from its durable upstream copy by rewriting it in place
      (MRM data "is durable elsewhere or is soft state", Section 4);
      costs a full block write.
    - **remap** — a failed bank's zone is retired from allocation so
      new writes stop landing on dead cells.

    ``enabled=False`` gives the no-mitigation baseline: a detected
    uncorrectable read is immediately reported as data loss.
    """

    enabled: bool = True
    max_read_retries: int = 2
    retry_backoff_s: float = 100e-6  # first re-read delay; doubles per try
    refresh_escalation: bool = True
    remap_on_bank_failure: bool = True

    def __post_init__(self) -> None:
        if self.max_read_retries < 0:
            raise ValueError("max_read_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")


@dataclass
class RecoveredRead:
    """Outcome of :meth:`MRMController.read_with_recovery`."""

    latency_s: float = 0.0
    energy_j: float = 0.0
    #: blocks whose data could not be delivered (unrecoverable).
    lost_blocks: List[Block] = None
    #: blocks delivered silently wrong (miscorrection) — counted, not
    #: flagged to the caller, because the decoder cannot know.
    miscorrected_blocks: int = 0

    def __post_init__(self) -> None:
        if self.lost_blocks is None:
            self.lost_blocks = []

    @property
    def ok(self) -> bool:
        return not self.lost_blocks


class MRMController:
    """Software control plane over one :class:`~repro.core.mrm.MRMDevice`.

    Parameters
    ----------
    device:
        The managed device.
    wear_policy:
        Zone-allocation policy name (see :class:`WearLeveler`).
    guard_band:
        Refresh scheduler guard band.
    retention_affinity:
        If True (default), writes are bucketed into zones by
        log2(retention) so zone contents expire together.
    """

    def __init__(
        self,
        device: MRMDevice,
        wear_policy: str = "least-worn",
        guard_band: float = 0.1,
        retention_affinity: bool = True,
        ecc_code: Optional[BCHCode] = None,
        recovery: Optional[RecoveryConfig] = None,
        obs=None,
    ) -> None:
        self.device = device
        self.wear = WearLeveler(device, policy=wear_policy)
        self.scheduler = RefreshScheduler(device, guard_band=guard_band)
        self.retention_affinity = retention_affinity
        self.stats = ControllerStats()
        #: observability registry; ControllerStats stays authoritative,
        #: the registry mirrors it per event for snapshots/exports.
        self.obs = obs if obs is not None else NULL_REGISTRY
        o = self.obs
        self._obs_writes = o.counter("ctrl.writes_total")
        self._obs_reads = o.counter("ctrl.reads_total")
        self._obs_deletes = o.counter("ctrl.deletes_total")
        self._obs_bytes_written = o.counter("ctrl.bytes_written_total")
        self._obs_bytes_read = o.counter("ctrl.bytes_read_total")
        self._obs_read_retries = o.counter("ctrl.read_retries_total")
        self._obs_escalations = o.counter("ctrl.refresh_escalations_total")
        self._obs_data_loss = o.counter("ctrl.data_loss_blocks_total")
        self._obs_miscorrections = o.counter("ctrl.silent_corruptions_total")
        self._obs_remaps = o.counter("ctrl.zones_remapped_total")
        self._obs_recovered = o.counter("ctrl.blocks_recovered_total")
        self._obs_reclaimed = o.counter("ctrl.zones_reclaimed_total")
        self._obs_migrations = o.counter("ctrl.migrations_requested_total")
        self._obs_refreshes = o.counter("ctrl.refreshes_total")
        self._obs_expiries = o.counter("ctrl.expiries_total")
        self._obs_read_latency = o.histogram("ctrl.read_latency_s")
        #: the code the recovery path decodes against (None: reads are
        #: assumed clean — the pre-fault-framework behaviour).
        self.ecc_code = ecc_code
        self.recovery = recovery or RecoveryConfig()
        # retention-class bucket -> zone currently open for that class
        self._open_zones: Dict[int, Zone] = {}
        #: blocks handed to the caller for migration (device too worn)
        self.migration_queue: List[Block] = []

    # ------------------------------------------------------------------
    # Zone management
    # ------------------------------------------------------------------
    def _bucket_of(self, retention_s: float) -> int:
        if not self.retention_affinity:
            return 0
        return int(math.floor(math.log2(max(retention_s, 1e-9))))

    def _zone_for(self, retention_s: float) -> Zone:
        bucket = self._bucket_of(retention_s)
        zone = self._open_zones.get(bucket)
        if zone is None or zone.is_full:
            zone = self.wear.pick_zone()
            self._open_zones[bucket] = zone
        return zone

    def _reclaim_dead_zones(self) -> int:
        """Reset every full zone with no remaining valid blocks."""
        reclaimed = 0
        # A full zone is closed: drop it from the open set so it becomes
        # reclaimable as soon as its blocks die.
        self._open_zones = {
            bucket: zone
            for bucket, zone in self._open_zones.items()
            if not zone.is_full
        }
        open_ids = {z.zone_id for z in self._open_zones.values()}
        failed = self.device.failed_zones
        for zone in self.device.space.zones:
            if zone.is_empty or zone.zone_id in open_ids:
                continue
            if zone.zone_id in failed:  # dead bank: nothing to reclaim
                continue
            if all(b.state is not BlockState.VALID for b in zone.blocks):
                self.device.reset_zone(zone.zone_id)
                reclaimed += 1
        self.stats.zones_reclaimed += reclaimed
        self._obs_reclaimed.add(reclaimed)
        return reclaimed

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write(
        self,
        size_bytes: int,
        retention_s: float,
        now: float,
        liveness: Optional[LivenessFn] = None,
    ) -> List[Block]:
        """Write ``size_bytes`` with a target retention.

        The buffer is split into device blocks, placed in the open zone
        of the matching retention class, and registered with the refresh
        scheduler.  ``liveness`` defaults to "dead at first deadline"
        (write-once data that simply expires — the KV-cache common case).

        Returns the blocks holding the data, in order.
        """
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        liveness = liveness or (lambda _block, _now: False)
        block_bytes = self.device.config.block_bytes
        blocks: List[Block] = []
        remaining = size_bytes
        while remaining > 0:
            chunk = min(remaining, block_bytes)
            zone = self._zone_for(retention_s)
            block, _result = self.device.append(zone.zone_id, chunk, retention_s, now)
            self.scheduler.register(block, liveness)
            blocks.append(block)
            remaining -= chunk
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        self._obs_writes.add()
        self._obs_bytes_written.add(size_bytes)
        return blocks

    def read(self, blocks: List[Block], now: float) -> Tuple[float, float]:
        """Sequential read of a block list; returns (latency_s, energy_j).

        Latency is the sum over blocks (one sequential stream); raises if
        any block has expired — the caller should have refreshed or
        recomputed.
        """
        latency = 0.0
        energy = 0.0
        for block in blocks:
            result = self.device.read_block(block, now)
            latency += result.latency_s
            energy += result.energy_j
            self.stats.bytes_read += block.size_bytes
            self._obs_bytes_read.add(block.size_bytes)
        self.stats.reads += 1
        self._obs_reads.add()
        self._obs_read_latency.observe(latency)
        return latency, energy

    def read_with_recovery(
        self,
        blocks: List[Block],
        now: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RecoveredRead:
        """Read a block list through the ECC + recovery pipeline.

        Per block: read, count the raw errors the worst codeword sees
        (:meth:`_codeword_bit_errors`), decode against
        :attr:`ecc_code`.  A DETECTED (uncorrectable) outcome
        walks the mitigation ladder of :class:`RecoveryConfig` —
        retry-with-backoff, then refresh escalation — before being
        reported as data loss.  A bank failure loses the block (and
        remaps the zone when enabled).  ``rng`` feeds only the
        miscorrection draw; pass the run's seeded generator.
        """
        if self.ecc_code is None:
            latency, energy = self.read(blocks, now)
            return RecoveredRead(latency_s=latency, energy_j=energy)
        cfg = self.recovery
        code = self.ecc_code
        out = RecoveredRead()
        for block in blocks:
            try:
                result = self.device.read_block(block, now)
            except BankFailure:
                self._lose_block(block, out)
                if cfg.enabled and cfg.remap_on_bank_failure:
                    self._remap_zone(block.zone_id)
                continue
            out.latency_s += result.latency_s
            out.energy_j += result.energy_j
            self.stats.bytes_read += block.size_bytes
            self._obs_bytes_read.add(block.size_bytes)
            raw = self._codeword_bit_errors(block, now)
            outcome = code.decode_outcome(raw, rng)
            if outcome is DecodeOutcome.MISCORRECTED:
                self.stats.silent_corruptions += 1
                self._obs_miscorrections.add()
                out.miscorrected_blocks += 1
                continue
            if outcome is DecodeOutcome.CORRECTED:
                continue
            # DETECTED: uncorrectable — walk the mitigation ladder.
            if not cfg.enabled:
                self._lose_block(block, out)
                continue
            recovered = False
            backoff = cfg.retry_backoff_s
            for _attempt in range(cfg.max_read_retries):
                self.stats.read_retries += 1
                self._obs_read_retries.add()
                # Transient noise is gone on the re-read; decay is not.
                self.device.clear_transient_errors(block)
                retry = self.device.read_block(block, now)
                out.latency_s += backoff + retry.latency_s
                out.energy_j += retry.energy_j
                backoff *= 2.0
                raw = self._codeword_bit_errors(block, now)
                if code.decode_outcome(raw, rng) is not DecodeOutcome.DETECTED:
                    recovered = True
                    break
            if not recovered and cfg.refresh_escalation:
                # Restore from the durable upstream copy by rewriting in
                # place (costs a block write; resets age and deadline).
                refresh = self.device.refresh_block(block, now)
                out.latency_s += refresh.latency_s
                out.energy_j += refresh.energy_j
                self.stats.escalated_refreshes += 1
                self._obs_escalations.add()
                recovered = True
            if recovered:
                self.stats.blocks_recovered += 1
                self._obs_recovered.add()
            else:
                self._lose_block(block, out)
        self.stats.reads += 1
        self._obs_reads.add()
        self._obs_read_latency.observe(out.latency_s)
        return out

    def _codeword_bit_errors(self, block: Block, now: float) -> int:
        """Raw errors the *worst* codeword of the block sees: mean-field
        retention decay at codeword scale, plus any injected transient
        burst — bursts are spatially local, so the whole burst lands
        inside one codeword (the one that decides recoverability)."""
        code = self.ecc_code
        decay = int(round(self.device.rber_of(block, now) * code.n))
        return decay + self.device.injected_bit_errors(block)

    def _lose_block(self, block: Block, out: RecoveredRead) -> None:
        out.lost_blocks.append(block)
        self.stats.data_loss_blocks += 1
        self._obs_data_loss.add()
        self.scheduler.deregister(block)
        if block.state is BlockState.VALID:
            self.device.mark_expired(block)

    def _remap_zone(self, zone_id: int) -> None:
        """Retire a failed zone from allocation (close it if open)."""
        self._open_zones = {
            bucket: zone
            for bucket, zone in self._open_zones.items()
            if zone.zone_id != zone_id
        }
        self.stats.remapped_zones += 1
        self._obs_remaps.add()

    def handle_bank_failure(
        self, zone_id: int, lost_blocks: List[Block]
    ) -> None:
        """React to a bank failure already applied to the device via
        :meth:`~repro.core.mrm.MRMDevice.fail_bank` (which returns the
        ``lost_blocks``): deregister the lost data from the refresh
        scheduler, account the loss, and (when enabled) remap the zone
        out of allocation so new writes stop landing on dead cells."""
        for block in lost_blocks:
            self.scheduler.deregister(block)
        self.stats.data_loss_blocks += len(lost_blocks)
        self._obs_data_loss.add(len(lost_blocks))
        if self.recovery.enabled and self.recovery.remap_on_bank_failure:
            self._remap_zone(zone_id)

    def delete(self, blocks: List[Block]) -> None:
        """Caller declares the data dead; zones reclaim on next tick."""
        for block in blocks:
            self.scheduler.deregister(block)
            self.device.mark_expired(block)
        self.stats.deletes += 1
        self._obs_deletes.add()

    # ------------------------------------------------------------------
    # Control plane clock
    # ------------------------------------------------------------------
    def tick(self, now: float) -> Dict[str, int]:
        """Advance the control plane to ``now``: run due refresh
        decisions, collect migration requests, reclaim dead zones.

        Returns a summary dict of action counts for this tick.
        """
        decisions = self.scheduler.run_until(now)
        migrate = [b for b, d in decisions if d is RefreshDecision.MIGRATE]
        self.migration_queue.extend(migrate)
        self.stats.migrations_requested += len(migrate)
        self._obs_migrations.add(len(migrate))
        reclaimed = self._reclaim_dead_zones()
        refreshed = sum(
            1 for _b, d in decisions if d is RefreshDecision.REFRESH
        )
        expired = sum(1 for _b, d in decisions if d is RefreshDecision.EXPIRE)
        self._obs_refreshes.add(refreshed)
        self._obs_expiries.add(expired)
        return {
            "refreshed": refreshed,
            "expired": expired,
            "migrated": len(migrate),
            "zones_reclaimed": reclaimed,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        return self.device.space.occupancy()

    def free_zones(self) -> int:
        return len(self.device.space.empty_zones())

    @property
    def housekeeping_energy_j(self) -> float:
        """Energy spent on refreshes (the only housekeeping MRM has)."""
        return self.scheduler.stats.refresh_energy_j
