"""Retention physics: the trade-off engine behind MRM.

The paper's core observation is that retention time is a *continuum*, and
that SCM technologies paid for their mandated 10-year retention with
write energy, write latency, endurance and density.  This module gives
that statement a quantitative, mechanistic form using the thermal
stability framework standard in the STT-MRAM and RRAM literature the
paper cites [18, 23, 34, 43, 48]:

Retention.
    A cell's state sits behind an energy barrier ``Δ`` (in units of
    ``k_B * T``).  Thermally-activated escape gives a mean time to data
    loss ``t_ret = tau0 * exp(Δ)`` with attempt period ``tau0 ≈ 1 ns``.
    Ten-year retention needs ``Δ ≈ ln(10 y / 1 ns) ≈ 40``; one hour
    needs only ``Δ ≈ 29``; one second ``Δ ≈ 21``.

Write energy and latency.
    The write pulse must overcome the same barrier: write current scales
    with Δ, and at reduced Δ the pulse can also be shortened, so write
    energy scales ``∝ Δ**energy_exponent`` (default 2: current × time,
    matching the ~70% energy savings Smullen et al. [43] report when
    dropping from 10-year to ~1-second retention) and latency
    ``∝ Δ**latency_exponent`` (default 1).

Endurance.
    Cell wear is driven by write stress (voltage/current across the
    cell).  Lower Δ means gentler writes: endurance grows exponentially
    as Δ falls, ``endurance(Δ) = endurance_ref * exp(slope * (Δ_ref − Δ))``.
    The default slope (1.4 nats per unit Δ) is calibrated so that
    relaxing a 10-year RRAM product (1e5 cycles) to ~1-hour retention
    recovers the ~1e12 cycles the cell literature demonstrates [25] —
    i.e. it spans exactly the product-vs-potential gap in Figure 1.

Temperature.
    Arrhenius acceleration: the barrier is fixed in joules, so Δ (in
    ``k_B T`` units) falls as temperature rises; retention collapses
    accordingly.  MRM sits in-package next to an accelerator at 85-95 °C,
    so this derating matters.

Density.
    Lower write voltage unlocks smaller access transistors and advanced
    nodes [58]; modeled as a mild linear density gain in (Δ_ref − Δ).

Everything is relative to a *reference profile* — a real product
engineered for 10-year retention — so derived numbers stay anchored to
shipped-device data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.devices.base import CellKind, TechnologyProfile
from repro.lint.effects.contracts import declared_pure
from repro.units import YEAR

#: Boltzmann constant in J/K (only ratios matter here, but keep it real).
K_BOLTZMANN = 1.380649e-23

TEN_YEARS = 10 * YEAR


@dataclass(frozen=True)
class RetentionParams:
    """Shape parameters of the retention trade-off model.

    Attributes
    ----------
    tau0_s:
        Thermal attempt period (~1 ns for MTJs and filaments).
    energy_exponent:
        Write energy ``∝ Δ**energy_exponent``.
    latency_exponent:
        Write latency ``∝ Δ**latency_exponent``.
    endurance_slope:
        Nats of endurance gained per unit of Δ relaxed.  The default
        (1.4) is calibrated so a 10-year product relaxed to ~1-hour
        retention gains ~1e7x endurance — exactly the Weebit-product
        (1e5) to RRAM-potential (1e12) gap in Figure 1.
    endurance_cap:
        Physical ceiling on derived endurance (no cell beats DRAM).
    density_gain_at_zero_delta:
        Fractional density gain if Δ were relaxed all the way to zero
        (linear in between); 0.5 means up to +50%.
    reference_temperature_c:
        Temperature at which the reference profile's retention is quoted.
    barrier_ev_at_reference:
        Physical barrier height implied at the reference point, used for
        Arrhenius temperature derating.
    """

    tau0_s: float = 1e-9
    energy_exponent: float = 2.0
    latency_exponent: float = 1.0
    endurance_slope: float = 1.4
    endurance_cap: float = 1e16
    density_gain_at_zero_delta: float = 0.5
    reference_temperature_c: float = 55.0

    def __post_init__(self) -> None:
        if self.tau0_s <= 0:
            raise ValueError("tau0 must be positive")
        if self.energy_exponent < 0 or self.latency_exponent < 0:
            raise ValueError("exponents must be >= 0")
        if self.endurance_slope < 0:
            raise ValueError("endurance slope must be >= 0")


class RetentionModel:
    """Maps a target retention time to derived write cost, endurance and
    density, anchored to a reference (10-year) product profile.

    Example
    -------
    >>> from repro.devices.catalog import RRAM_WEEBIT
    >>> model = RetentionModel(RRAM_WEEBIT)
    >>> model.endurance_cycles(3600.0) > RRAM_WEEBIT.endurance_cycles
    True
    >>> model.write_energy_j_per_byte(3600.0) < RRAM_WEEBIT.write_energy_j_per_byte
    True
    """

    def __init__(
        self,
        reference: TechnologyProfile,
        params: Optional[RetentionParams] = None,
    ) -> None:
        self.reference = reference
        self.params = params or RetentionParams()
        self._delta_ref = self.delta_for_retention(reference.retention_s)
        if self._delta_ref <= 0:
            raise ValueError(
                f"reference retention {reference.retention_s}s is below tau0"
            )

    # ------------------------------------------------------------------
    # Δ <-> retention
    # ------------------------------------------------------------------
    @declared_pure
    def delta_for_retention(self, retention_s: float) -> float:
        """Thermal stability factor needed for ``retention_s``."""
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        if retention_s < self.params.tau0_s:
            raise ValueError(
                f"retention {retention_s}s below attempt period {self.params.tau0_s}s"
            )
        return math.log(retention_s / self.params.tau0_s)

    @declared_pure
    def retention_for_delta(self, delta: float) -> float:
        """Mean retention time at stability factor ``delta``."""
        if delta < 0:
            raise ValueError("delta must be >= 0")
        return self.params.tau0_s * math.exp(delta)

    @property
    def reference_delta(self) -> float:
        return self._delta_ref

    # ------------------------------------------------------------------
    # Derived write cost
    # ------------------------------------------------------------------
    @declared_pure
    def write_energy_j_per_byte(self, retention_s: float) -> float:
        """Write energy when programming for ``retention_s``."""
        delta = self._clamped_delta(retention_s)
        scale = (delta / self._delta_ref) ** self.params.energy_exponent
        return self.reference.write_energy_j_per_byte * scale

    @declared_pure
    def write_latency_s(self, retention_s: float) -> float:
        delta = self._clamped_delta(retention_s)
        scale = (delta / self._delta_ref) ** self.params.latency_exponent
        return self.reference.write_latency_s * scale

    @declared_pure
    def write_bandwidth(self, retention_s: float) -> float:
        """Write bandwidth improves as the program pulse shortens."""
        delta = self._clamped_delta(retention_s)
        scale = (delta / self._delta_ref) ** self.params.latency_exponent
        return self.reference.write_bandwidth / scale

    @declared_pure
    def endurance_cycles(self, retention_s: float) -> float:
        """Cell endurance when written at ``retention_s`` strength."""
        delta = self._clamped_delta(retention_s)
        gain = math.exp(self.params.endurance_slope * (self._delta_ref - delta))
        return min(self.reference.endurance_cycles * gain, self.params.endurance_cap)

    @declared_pure
    def density_multiplier(self, retention_s: float) -> float:
        """Areal density gain from reduced write voltage [58]."""
        delta = self._clamped_delta(retention_s)
        frac = (self._delta_ref - delta) / self._delta_ref
        return 1.0 + self.params.density_gain_at_zero_delta * frac

    def _clamped_delta(self, retention_s: float) -> float:
        delta = self.delta_for_retention(retention_s)
        # Programming *above* the reference strength is out of model scope;
        # clamp so asking for >reference retention returns reference costs.
        return min(delta, self._delta_ref)

    # ------------------------------------------------------------------
    # Temperature
    # ------------------------------------------------------------------
    @declared_pure
    def retention_at_temperature(
        self, retention_s: float, temperature_c: float
    ) -> float:
        """Arrhenius derating: retention quoted at the reference
        temperature, evaluated at ``temperature_c``.

        The barrier energy ``E_b = Δ * k_B * T_ref`` is fixed; at a new
        temperature the effective stability is ``E_b / (k_B * T)``.
        """
        t_ref_k = self.params.reference_temperature_c + 273.15
        t_k = temperature_c + 273.15
        if t_k <= 0:
            raise ValueError("temperature below absolute zero")
        delta_ref_temp = self.delta_for_retention(retention_s)
        delta_at_t = delta_ref_temp * (t_ref_k / t_k)
        return self.retention_for_delta(delta_at_t)

    @declared_pure
    def required_retention_for_temperature(
        self, target_retention_s: float, temperature_c: float
    ) -> float:
        """Inverse of :meth:`retention_at_temperature`: the retention to
        program (quoted at reference temperature) so that the data
        actually survives ``target_retention_s`` at ``temperature_c``."""
        t_ref_k = self.params.reference_temperature_c + 273.15
        t_k = temperature_c + 273.15
        delta_needed_at_t = self.delta_for_retention(target_retention_s)
        delta_programmed = delta_needed_at_t * (t_k / t_ref_k)
        return self.retention_for_delta(delta_programmed)

    # ------------------------------------------------------------------
    # Derived profiles
    # ------------------------------------------------------------------
    def profile_at(self, retention_s: float, name: str = "") -> TechnologyProfile:
        """A full :class:`TechnologyProfile` for cells programmed at
        ``retention_s`` — this is "an MRM device built from the reference
        technology"."""
        return self.reference.with_overrides(
            name=name or f"{self.reference.name}@{retention_s:.0f}s",
            cell=CellKind.MRM,
            retention_s=retention_s,
            endurance_cycles=self.endurance_cycles(retention_s),
            write_latency_s=self.write_latency_s(retention_s),
            write_bandwidth=self.write_bandwidth(retention_s),
            write_energy_j_per_byte=self.write_energy_j_per_byte(retention_s),
            density_gbit_per_mm2=(
                self.reference.density_gbit_per_mm2
                * self.density_multiplier(retention_s)
            ),
            source=f"derived from {self.reference.name} via RetentionModel",
        )
