"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro fig1                 # render Figure 1
    python -m repro tradeoff             # retention trade-off table
    python -m repro characterize         # workload characterization
    python -m repro provisioning         # the HBM fit-to-workload table
    python -m repro serve --rate 1.5     # simulate cluster serving
    python -m repro serve --mode analytic  # closed-form evaluator
    python -m repro sweep --mode cross-validate  # DES vs analytic grid
    python -m repro sensitivity          # Figure 1 robustness sweep
    python -m repro trace --out t.jsonl  # generate a Splitwise-shaped trace
    python -m repro obs top m.json       # inspect a metrics snapshot

Every subcommand prints the same tables the benchmark harness asserts
on, so the CLI is the interactive twin of ``pytest benchmarks/``.

The simulation-backed experiments (``serve``, ``faults``) accept
``--metrics PATH`` (dump the run's metrics snapshot: Prometheus text
when PATH ends in ``.prom``/``.txt``, canonical snapshot JSON
otherwise) and ``serve`` additionally ``--trace-out PATH`` (JSON-lines
span trace in simulated time).  ``repro obs`` inspects those artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.figures import format_table, render_figure1
from repro.units import DAY, HOUR, MINUTE, YEAR, seconds_to_human


class CLIError(Exception):
    """A user-input problem: reported as one line, never a traceback."""


def _parse_params(pairs: Optional[List[str]]) -> dict:
    """Parse repeated ``--param key=value`` flags into a dict.

    Values are coerced to the narrowest of bool/int/float, falling back
    to string.  Malformed entries (no ``=``, empty key) raise
    :class:`CLIError` so the user sees one clean line, not a traceback.
    """
    params: dict = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise CLIError(
                f"malformed --param {pair!r} (expected key=value)"
            )
        value: object
        lowered = raw.lower()
        if lowered in ("true", "false"):
            value = lowered == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        params[key] = value
    return params


def _add_metrics_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the run's metrics (Prometheus text for .prom/.txt, "
             "canonical snapshot JSON otherwise)",
    )


def _write_metrics(path: str, obs_or_snapshot) -> None:
    """Dump metrics in the format the output path asks for."""
    from repro.obs.export import write_prometheus
    from repro.obs.snapshot import normalize_snapshot, write_snapshot

    if path.endswith((".prom", ".txt")):
        write_prometheus(path, obs_or_snapshot)
    else:
        snap = (
            obs_or_snapshot
            if isinstance(obs_or_snapshot, dict)
            else obs_or_snapshot.snapshot()
        )
        write_snapshot(path, normalize_snapshot(snap))
    print(f"metrics written to {path}")


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.endurance.requirements import check_figure1_shape, figure1_data

    data = figure1_data(lifetime_s=args.years * YEAR)
    print(render_figure1(data))
    print()
    shape = check_figure1_shape(data)
    print("shape checks:", shape)
    return 0 if all(shape.values()) else 1


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    from repro.core.retention import RetentionModel
    from repro.devices.catalog import get_profile

    reference = get_profile(args.reference)
    model = RetentionModel(reference)
    rows = []
    for retention in (10 * YEAR, YEAR, 30 * DAY, DAY, HOUR, MINUTE):
        rows.append(
            [
                seconds_to_human(retention),
                model.write_energy_j_per_byte(retention)
                / reference.write_energy_j_per_byte,
                model.write_latency_s(retention) / reference.write_latency_s,
                f"{model.endurance_cycles(retention):.2e}",
                model.density_multiplier(retention),
            ]
        )
    print(f"retention trade-off, reference: {reference.name}")
    print(
        format_table(
            rows,
            headers=["retention", "write energy", "write latency",
                     "endurance", "density"],
        )
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.characterization import (
        characterize,
        synthesize_access_stream,
    )
    from repro.workload.model import LLAMA2_13B
    from repro.workload.traces import generate_trace, replay_trace

    trace = generate_trace(LLAMA2_13B, count=args.requests, duration_s=None,
                           seed=args.seed)
    stream = synthesize_access_stream(
        LLAMA2_13B, list(replay_trace(trace)), batch_size=4
    )
    profile = characterize(stream)
    print(
        format_table(
            [
                ["read:write ratio", f"{profile.read_write_ratio:.0f}:1"],
                ["sequentiality", f"{profile.sequentiality:.1%}"],
                ["in-place updates", f"{profile.inplace_update_fraction:.2%}"],
                ["predictability", f"{profile.predictability:.1%}"],
            ],
            headers=["metric", "value"],
        )
    )
    return 0


def _cmd_provisioning(args: argparse.Namespace) -> int:
    from repro.analysis.overprovisioning import hbm_provisioning_table

    rows = hbm_provisioning_table()
    print(
        format_table(
            [
                [r.property, f"{r.provided:.3g}", f"{r.needed:.3g}",
                 f"{r.ratio:.3g}", r.verdict]
                for r in rows
            ],
            headers=["property", "provided", "needed", "ratio", "verdict"],
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.inference.accelerator import H100_80G
    from repro.inference.cluster import Cluster, tensor_parallel_group
    from repro.obs import MetricsRegistry, Tracer
    from repro.sim import Simulator
    from repro.workload.model import LLAMA2_70B
    from repro.workload.requests import PoissonArrivals
    from repro.workload.traces import generate_trace, replay_trace

    trace = generate_trace(
        LLAMA2_70B,
        arrivals=PoissonArrivals(args.rate),
        duration_s=args.duration,
        seed=args.seed,
    )
    report = None
    obs = tracer = None
    # Auto mode means "analytic when it applies": event-level artifact
    # requests (--metrics/--trace-out) are an explicit ask for the DES,
    # so auto skips the analytic attempt instead of erroring.
    try_analytic = args.mode == "analytic" or (
        args.mode == "auto" and not (args.metrics or args.trace_out)
    )
    if try_analytic:
        # The analytic evaluator has no simulator, so there is no event
        # stream to observe and no simulated-time spans to trace.
        if args.metrics or args.trace_out:
            raise CLIError(
                "--metrics/--trace-out need the event-level run; "
                "use --mode des"
            )
        from repro.inference.analytic import (
            UnsupportedScenario,
            analytic_cluster_report,
        )

        try:
            report = analytic_cluster_report(
                tensor_parallel_group(H100_80G, args.tp),
                LLAMA2_70B,
                replay_trace(trace),
                num_engines=args.engines,
                max_batch_size=args.batch,
            )
        except UnsupportedScenario as exc:
            if args.mode == "analytic":
                raise  # strict: outside the envelope is exit 2
            print(f"analytic evaluator declined ({exc}); "
                  "falling back to DES")
    if report is None:
        obs = MetricsRegistry() if args.metrics else None
        tracer = Tracer() if args.trace_out else None
        sim = Simulator(obs=obs, tracer=tracer)
        cluster = Cluster(
            sim,
            tensor_parallel_group(H100_80G, args.tp),
            LLAMA2_70B,
            num_engines=args.engines,
            max_batch_size=args.batch,
            obs=obs,
        )
        if obs is not None and args.mode == "auto":
            # Auto resolved to the DES (event-level artifacts were
            # requested): leave the breadcrumb in the snapshot.
            obs.counter(
                "serve.analytic_fallback_total", reason="event-artifacts"
            ).add()
        report = cluster.run(replay_trace(trace))
    print(
        format_table(
            [
                ["requests", report.requests_completed],
                ["tokens", report.tokens_generated],
                ["throughput tok/s", f"{report.throughput_tokens_per_s:.0f}"],
                ["TTFT p50 s", f"{report.ttft_p50_s:.3f}"],
                ["TBT p50 ms", f"{report.tbt_p50_s * 1e3:.1f}"],
                ["memory-bound", f"{report.memory_bound_fraction:.1%}"],
                ["tokens/J", f"{report.tokens_per_joule:.4f}"],
            ],
            headers=["metric", "value"],
        )
    )
    if obs is not None:
        obs.info("run.command").set("serve")
        obs.info("run.seed").set(str(args.seed))
        _write_metrics(args.metrics, obs)
    if tracer is not None:
        from repro.obs.export import write_trace_jsonl

        write_trace_jsonl(
            args.trace_out, tracer,
            meta={"command": "serve", "seed": args.seed},
        )
        print(f"trace written to {args.trace_out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.inference.sweep import (
        CROSS_VAL_TOLERANCE,
        SERVE_MODES,
        cross_validate,
        cross_validation_grid,
        run_serve_sweep,
    )

    if args.workers is not None and args.workers < 1:
        raise CLIError(f"--workers must be >= 1 (got {args.workers})")
    points = cross_validation_grid(tiny=args.tiny)
    if args.mode == "cross-validate":
        rows = cross_validate(points, root_seed=args.seed,
                              workers=args.workers)
        print(f"DES vs analytic cross-validation (seed {args.seed})")
        print(
            format_table(
                [
                    [
                        row["point"]["model"],
                        row["point"]["accelerator"],
                        f"{row['point']['rate']:g}",
                        row["point"]["engines"],
                        max(row["metrics"],
                            key=lambda k: row["metrics"][k]["rel_err"]),
                        f"{row['max_rel_err']:.2%}",
                    ]
                    for row in rows
                ],
                headers=["model", "accelerator", "rate", "engines",
                         "worst metric", "max rel err"],
            )
        )
        worst = max(row["max_rel_err"] for row in rows)
        print(f"\nworst point: {worst:.2%} (tolerance {CROSS_VAL_TOLERANCE:.0%})")
        return 1 if worst > CROSS_VAL_TOLERANCE else 0
    if args.mode not in SERVE_MODES:
        raise CLIError(
            f"unknown sweep mode {args.mode!r}; known: "
            f"{', '.join(SERVE_MODES)}, cross-validate"
        )
    rows = run_serve_sweep(points, root_seed=args.seed, workers=args.workers,
                           mode=args.mode)
    print(f"serving sweep — mode {args.mode} (seed {args.seed})")
    print(
        format_table(
            [
                [
                    point["model"],
                    point["accelerator"],
                    f"{point['rate']:g}",
                    point["engines"],
                    row["requests_completed"],
                    f"{row['throughput_tokens_per_s']:.0f}",
                    f"{row['ttft_p50_s']:.3f}",
                    f"{row['tbt_p50_s'] * 1e3:.1f}",
                    f"{row['tokens_per_joule']:.4f}",
                ]
                for point, row in zip(points, rows)
            ],
            headers=["model", "accelerator", "rate", "engines", "requests",
                     "tok/s", "TTFT p50 s", "TBT p50 ms", "tokens/J"],
        )
    )
    if args.mode == "auto":
        fallbacks = sum(1 for row in rows if row.get("analytic_fallback"))
        print(f"\nanalytic evaluator declined {fallbacks}/{len(rows)} "
              "points (served by DES)")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis.sensitivity import (
        robustness_summary,
        sweep_kv_requirement,
    )

    points = sweep_kv_requirement()
    print(
        format_table(
            [
                [p.parameter, p.value, f"{p.kv_writes_per_cell:.2e}"]
                for p in points
            ],
            headers=["parameter", "value", "KV writes/cell"],
        )
    )
    print()
    summary = robustness_summary(points)
    print(
        format_table(
            [[k, f"{v:.0%}"] for k, v in summary.items()],
            headers=["observation", "holds at"],
        )
    )
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.analysis.claims import run_all_claims

    results = run_all_claims()
    rows = []
    for result in results:
        rows.append(
            [
                "PASS" if result.holds else "FAIL",
                result.claim.claim_id,
                f"§{result.claim.section}",
                result.evidence,
            ]
        )
    print(format_table(rows, headers=["status", "claim", "section",
                                      "evidence"]))
    failed = sum(1 for r in results if not r.holds)
    print(f"\n{len(results) - failed}/{len(results)} claims hold")
    return 1 if failed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.model import LLAMA2_70B
    from repro.workload.traces import generate_trace, write_trace
    from repro.workload.distributions import (
        SPLITWISE_CODE,
        SPLITWISE_CONVERSATION,
    )

    profile = (
        SPLITWISE_CODE if args.profile == "code" else SPLITWISE_CONVERSATION
    )
    records = generate_trace(
        LLAMA2_70B, profile=profile, duration_s=args.duration, seed=args.seed
    )
    count = write_trace(records, args.out)
    print(f"wrote {count} requests ({profile.name}) to {args.out}")
    return 0


#: Fault-experiment families the ``faults`` subcommand can run.
FAULT_EXPERIMENT_FAMILIES = ("controller", "serving", "chaos")


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.experiment import (
        chaos_grid,
        controller_grid,
        run_chaos_experiment,
        run_controller_experiment,
        run_serving_experiment,
        serving_grid,
    )

    if args.mode != "des":
        # Fault timelines mutate engine state mid-run; the closed-form
        # evaluator has no events to inject into.
        raise CLIError(
            "fault injection arms are event-level scenarios the analytic "
            "mode cannot express; use --mode des"
        )
    if args.family not in FAULT_EXPERIMENT_FAMILIES:
        raise CLIError(
            f"unknown fault experiment {args.family!r}; "
            f"known: {', '.join(FAULT_EXPERIMENT_FAMILIES)}"
        )
    if args.workers is not None and args.workers < 1:
        raise CLIError(f"--workers must be >= 1 (got {args.workers})")
    overrides = _parse_params(args.param)
    if args.metrics:
        # Each point observes itself; snapshots merge after the sweep.
        overrides = dict(overrides, observe=True)
    if args.family == "controller":
        points = [dict(p, **overrides) for p in controller_grid(args.tiny)]
        rows = run_controller_experiment(
            root_seed=args.seed, workers=args.workers, points=points
        )
        knob = "rate_multiplier"
    elif args.family == "chaos":
        points = [dict(p, **overrides) for p in chaos_grid(args.tiny)]
        rows = run_chaos_experiment(
            root_seed=args.seed, workers=args.workers, points=points
        )
        knob = "strike_rate_per_hour"
    else:
        points = [dict(p, **overrides) for p in serving_grid(args.tiny)]
        rows = run_serving_experiment(
            root_seed=args.seed, workers=args.workers, points=points
        )
        knob = "kv_loss_per_hour"
    print(f"fault injection — {args.family} (seed {args.seed})")
    print(
        format_table(
            [
                [
                    f"{row[knob]:g}",
                    row["fault_events"],
                    f"{row['baseline']['availability']:.4f}",
                    f"{row['mitigated']['availability']:.4f}",
                    row["timeline_fingerprint"],
                ]
                for row in rows
            ],
            headers=[knob, "events", "avail (baseline)",
                     "avail (mitigated)", "timeline"],
        )
    )
    if args.metrics:
        from repro.parallel import merge_sweep_snapshots

        _write_metrics(args.metrics, merge_sweep_snapshots(rows))
    worse = [
        row
        for row in rows
        if row["mitigated"]["availability"]
        < row["baseline"]["availability"]
    ]
    if worse:
        print(f"\nWARNING: mitigation underperformed at {len(worse)} points")
        return 1
    return 0


#: Fleet experiments the ``fleet`` subcommand can run.
FLEET_EXPERIMENTS = ("e13", "e14")


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetConfig, run_fleet
    from repro.fleet.experiment import run_e13, run_e14

    if args.workers is not None and args.workers < 1:
        raise CLIError(f"--workers must be >= 1 (got {args.workers})")

    if args.experiment is not None:
        if args.experiment not in FLEET_EXPERIMENTS:
            raise CLIError(
                f"unknown fleet experiment {args.experiment!r}; "
                f"known: {', '.join(FLEET_EXPERIMENTS)}"
            )
        if args.experiment == "e13":
            result = run_e13(
                tiny=args.tiny, root_seed=args.seed, workers=args.workers
            )
            print(f"E13 — fleet SLO attainment and MRM burn "
                  f"(seed {args.seed}{', tiny' if args.tiny else ''})")
            rows = []
            for policy, tenants in result["table"].items():
                for tenant, entry in tenants.items():
                    worst_sla = min(
                        entry["sla_attainment"].values(), default=1.0
                    )
                    rows.append([
                        policy,
                        tenant,
                        f"{entry['users_per_day']:,.0f}",
                        f"{worst_sla:.4f}",
                        f"{entry['ttft_p99_worst_cell_s']:.3f}",
                        entry["shed_total"],
                        f"{entry['mrm_endurance_burn_per_day']:.3e}",
                    ])
            print(format_table(
                rows,
                headers=["routing", "tenant", "users/day", "worst SLA",
                         "p99 ttft (s)", "shed", "MRM burn/day"],
            ))
            print("\nusers/day (fleet total): " + ", ".join(
                f"{policy}={value:,.0f}"
                for policy, value in result["users_per_day_total"].items()
            ))
        else:
            result = run_e14(
                tiny=args.tiny, root_seed=args.seed, workers=args.workers
            )
            print(f"E14 — reactive vs static provisioning "
                  f"(seed {args.seed}{', tiny' if args.tiny else ''})")
            print(format_table(
                [
                    [
                        tenant,
                        entry["reactive_replica_epochs"],
                        entry["static_replica_epochs"],
                        f"{entry['capacity_saving']:.1%}",
                        entry["reactive_mrm_replica_epochs"],
                        entry["reactive_shed_total"],
                        entry["static_shed_total"],
                    ]
                    for tenant, entry in result["table"].items()
                ],
                headers=["tenant", "reactive rep-epochs",
                         "static rep-epochs", "saving", "MRM rep-epochs",
                         "shed (reactive)", "shed (static)"],
            ))
        if args.metrics:
            _write_metrics(args.metrics, result["obs"])
        return 0

    config = FleetConfig(
        num_clusters=args.clusters,
        horizon_s=args.horizon,
        epoch_s=args.epoch,
        routing=args.routing,
        scaling=args.scaling,
        mode=args.mode,
        rate_scale=args.rate_scale,
    )
    result = run_fleet(config, root_seed=args.seed, workers=args.workers)
    totals = result["totals"]
    print(
        f"fleet — {args.clusters} clusters, "
        f"{len(result['config']['tenants'])} tenants, "
        f"{result['config']['epochs']} epochs of {args.epoch:g}s "
        f"({args.routing}/{args.scaling}, seed {args.seed})"
    )
    print(format_table(
        [
            [
                tenant,
                entry["admitted"],
                entry["shed_total"],
                entry["requests_completed"],
                f"{entry['users_per_day']:,.0f}",
                entry["replica_peak"],
                entry["mrm_replica_epochs"],
                f"{entry['ttft_p99_worst_cell_s']:.3f}",
            ]
            for tenant, entry in result["tenants"].items()
        ],
        headers=["tenant", "admitted", "shed", "completed", "users/day",
                 "peak replicas", "MRM rep-epochs", "p99 ttft (s)"],
    ))
    print(
        f"\ntotals: {totals['requests_completed']} completed, "
        f"{totals['shed']} shed, {totals['users_per_day']:,.0f} users/day, "
        f"{totals['cells_analytic']}/{totals['num_cells']} cells analytic"
    )
    if args.metrics:
        _write_metrics(args.metrics, result["obs"])
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.inspect import render_diff, render_span_tree, render_top

    if args.obs_command == "top":
        print(render_top(args.snapshot, limit=args.limit,
                         section=args.section))
        return 0
    if args.obs_command == "spans":
        print(render_span_tree(args.trace, limit=args.limit))
        return 0
    text, count = render_diff(args.snapshot_a, args.snapshot_b)
    print(text)
    return 1 if count else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MRM (HotOS '25) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig1 = sub.add_parser("fig1", help="render Figure 1")
    fig1.add_argument("--years", type=float, default=5.0,
                      help="deployment lifetime (years)")
    fig1.set_defaults(func=_cmd_fig1)

    tradeoff = sub.add_parser("tradeoff", help="retention trade-off table")
    tradeoff.add_argument("--reference", default="rram-weebit",
                          help="catalog profile to relax")
    tradeoff.set_defaults(func=_cmd_tradeoff)

    characterize = sub.add_parser(
        "characterize", help="workload access-pattern characterization"
    )
    characterize.add_argument("--requests", type=int, default=8)
    characterize.add_argument("--seed", type=int, default=0)
    characterize.set_defaults(func=_cmd_characterize)

    provisioning = sub.add_parser(
        "provisioning", help="the HBM fit-to-workload table"
    )
    provisioning.set_defaults(func=_cmd_provisioning)

    serve = sub.add_parser("serve", help="simulate cluster serving")
    serve.add_argument("--rate", type=float, default=1.0,
                       help="request arrivals per second")
    serve.add_argument("--duration", type=float, default=30.0)
    serve.add_argument("--engines", type=int, default=2)
    serve.add_argument("--tp", type=int, default=4,
                       help="tensor-parallel group size")
    serve.add_argument("--batch", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--mode", choices=("des", "analytic", "auto"),
                       default="des",
                       help="evaluator: exact DES, closed-form analytic, or "
                            "auto (analytic with DES fallback)")
    _add_metrics_flag(serve)
    serve.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a JSON-lines span trace (simulated-time spans)",
    )
    serve.set_defaults(func=_cmd_serve)

    sweep = sub.add_parser(
        "sweep", help="serving sweep over the pinned grid (DES/analytic)"
    )
    sweep.add_argument("--mode", default="des",
                       help="des, analytic, auto, or cross-validate")
    sweep.add_argument("--tiny", action="store_true",
                       help="smoke-test grid (CI)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=None,
                       help="sweep worker processes (default REPRO_WORKERS)")
    sweep.set_defaults(func=_cmd_sweep)

    sensitivity = sub.add_parser(
        "sensitivity", help="Figure 1 robustness sweep"
    )
    sensitivity.set_defaults(func=_cmd_sensitivity)

    claims = sub.add_parser(
        "claims", help="run every paper-claim check (the live reproduction)"
    )
    claims.set_defaults(func=_cmd_claims)

    faults = sub.add_parser(
        "faults", help="availability vs fault rate, with/without mitigations"
    )
    faults.add_argument("--family", default="controller",
                        help="experiment family: controller, serving, "
                             "or chaos")
    faults.add_argument("--tiny", action="store_true",
                        help="smoke-test grid (CI)")
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--workers", type=int, default=None,
                        help="sweep worker processes (default REPRO_WORKERS)")
    faults.add_argument("--param", action="append", metavar="KEY=VALUE",
                        help="override a grid-point field (repeatable)")
    faults.add_argument("--mode", choices=("des", "analytic"), default="des",
                        help="evaluator (fault injection requires des)")
    _add_metrics_flag(faults)
    faults.set_defaults(func=_cmd_faults)

    fleet = sub.add_parser(
        "fleet", help="multi-cluster multi-tenant fleet simulation"
    )
    fleet.add_argument("--clusters", type=int, default=4)
    fleet.add_argument("--horizon", type=float, default=600.0,
                       help="simulated horizon (seconds)")
    fleet.add_argument("--epoch", type=float, default=120.0,
                       help="autoscaler/routing epoch length (seconds)")
    fleet.add_argument("--routing", default="least-loaded",
                       help="fleet routing policy: least-loaded, "
                            "tenant-affinity, or power-of-two")
    fleet.add_argument("--scaling", choices=("reactive", "static"),
                       default="reactive",
                       help="capacity planning: reactive autoscaler or "
                            "static peak provisioning")
    fleet.add_argument("--mode", choices=("des", "analytic", "auto"),
                       default="auto",
                       help="cell evaluator (auto = analytic with DES "
                            "fallback)")
    fleet.add_argument("--rate-scale", type=float, default=1.0,
                       help="uniform traffic multiplier over all tenants")
    fleet.add_argument("--experiment", default=None,
                       help="run a canned experiment instead: e13 or e14")
    fleet.add_argument("--tiny", action="store_true",
                       help="smoke-test experiment variant (CI)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--workers", type=int, default=None,
                       help="sweep worker processes (default REPRO_WORKERS)")
    _add_metrics_flag(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    obs = sub.add_parser(
        "obs", help="inspect metrics snapshots and span traces"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_top = obs_sub.add_parser(
        "top", help="largest entries of one snapshot section"
    )
    obs_top.add_argument("snapshot", help="snapshot JSON path")
    obs_top.add_argument("--limit", type=int, default=20)
    obs_top.add_argument("--section", choices=("counters", "gauges"),
                         default="counters")
    obs_top.set_defaults(func=_cmd_obs)
    obs_spans = obs_sub.add_parser(
        "spans", help="span tree of a JSON-lines trace"
    )
    obs_spans.add_argument("trace", help="trace JSONL path")
    obs_spans.add_argument("--limit", type=int, default=None)
    obs_spans.set_defaults(func=_cmd_obs)
    obs_diff = obs_sub.add_parser(
        "diff", help="diff two snapshots (exit 1 when they differ)"
    )
    obs_diff.add_argument("snapshot_a")
    obs_diff.add_argument("snapshot_b")
    obs_diff.set_defaults(func=_cmd_obs)

    trace = sub.add_parser("trace", help="generate a synthetic trace file")
    trace.add_argument("--out", required=True)
    trace.add_argument("--profile", choices=("conversation", "code"),
                       default="conversation")
    trace.add_argument("--duration", type=float, default=60.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (CLIError, KeyError, ValueError) as exc:
        # User-input problems (unknown profile/experiment, malformed
        # --param, out-of-range values): one line on stderr, exit 2.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Unreadable/unwritable artifact paths (obs inspector inputs,
        # --metrics/--trace-out destinations): same one-line contract.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
