"""HBM model: 3D-stacked DRAM with yield and scaling-wall modeling.

HBM is DRAM plus 3D stacking: the stack multiplies capacity and bandwidth
but compounds manufacturing yield (every layer and every TSV bond must be
good) and concentrates heat next to the accelerator die.  Section 2.1 of
the paper leans on three facts this module models:

1. per-layer density scaling has slowed (~+30% for HBM4 over HBM3e);
2. stacking is not expected to exceed 16 layers [50];
3. stack yield falls geometrically with layer count, which is a large
   part of HBM's cost premium.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.devices.catalog import HBM3E
from repro.devices.base import TechnologyProfile
from repro.devices.dram import DRAMDevice
from repro.units import GiB


@dataclass(frozen=True)
class HBMGeneration:
    """One generation of the HBM roadmap."""

    name: str
    capacity_per_layer_bytes: int
    max_layers: int
    bandwidth_per_stack: float  # bytes/s

    def max_stack_capacity(self) -> int:
        return self.capacity_per_layer_bytes * self.max_layers


#: The public roadmap the paper cites: HBM4 layer capacity is only ~30%
#: above HBM3e [50], and the industry does not expect >16 layers.
HBM_ROADMAP: List[HBMGeneration] = [
    HBMGeneration("hbm3", capacity_per_layer_bytes=2 * GiB, max_layers=12,  # [50]
                  bandwidth_per_stack=0.82e12),  # 0.82 TB/s/stack [50]
    HBMGeneration("hbm3e", capacity_per_layer_bytes=3 * GiB, max_layers=12,  # [50]
                  bandwidth_per_stack=1.18e12),  # 1.18 TB/s/stack [51]
    HBMGeneration("hbm4", capacity_per_layer_bytes=4 * GiB, max_layers=16,  # [50]
                  bandwidth_per_stack=1.6e12),  # ~+30% per layer [50]
    HBMGeneration("hbm4e", capacity_per_layer_bytes=5 * GiB, max_layers=16,  # [50]
                  bandwidth_per_stack=2.0e12),  # roadmap extrapolation [50]
]


class HBMStack(DRAMDevice):
    """One HBM stack: ``layers`` DRAM dies bonded over a base logic die.

    Capacity and bandwidth scale with layer count; yield decays
    geometrically with it.  Cost per GiB is derived from the yield model,
    reproducing HBM's cost premium over planar DRAM.

    Parameters
    ----------
    layers:
        DRAM die count in the stack (8-16 for current products).
    capacity_per_layer_bytes:
        Die capacity (3 GiB for HBM3e).
    per_layer_yield:
        Probability that one layer (die + bond) is good.  Stack yield is
        ``per_layer_yield ** layers`` times ``base_yield``.
    """

    def __init__(
        self,
        layers: int = 8,
        capacity_per_layer_bytes: int = 3 * GiB,
        profile: Optional[TechnologyProfile] = None,
        per_layer_yield: float = 0.97,
        base_yield: float = 0.95,
        temperature_c: float = 95.0,  # in-package next to an accelerator
        name: str = "",
    ) -> None:
        if layers < 1:
            raise ValueError("an HBM stack needs at least one layer")
        if not 0 < per_layer_yield <= 1 or not 0 < base_yield <= 1:
            raise ValueError("yields must be in (0, 1]")
        profile = profile or HBM3E
        super().__init__(
            profile=profile,
            capacity_bytes=layers * capacity_per_layer_bytes,
            temperature_c=temperature_c,
            name=name or f"{profile.name}-{layers}hi",
        )
        self.layers = layers
        self.capacity_per_layer_bytes = capacity_per_layer_bytes
        self.per_layer_yield = per_layer_yield
        self.base_yield = base_yield

    # ------------------------------------------------------------------
    # Yield / cost model
    # ------------------------------------------------------------------
    def stack_yield(self) -> float:
        """Probability the whole stack is good."""
        return self.base_yield * self.per_layer_yield**self.layers

    def cost_multiplier_vs_planar(self) -> float:
        """Cost-per-bit multiplier relative to planar DRAM dies.

        A failed stack scraps every die in it, so cost per *good* bit is
        the planar cost divided by stack yield, plus a packaging adder
        that grows with layer count (TSV processing, thinning, bonding).
        """
        packaging_adder = 1.0 + 0.05 * self.layers
        return packaging_adder / self.stack_yield()

    def heat_flux_w_per_cm2(self, die_area_cm2: float = 1.21, active_power_w: float = 12.0) -> float:
        """Crude heat-flux figure: stacking concentrates the same areal
        footprint over more active dies, worsening dissipation."""
        if die_area_cm2 <= 0:
            raise ValueError("die area must be positive")
        return active_power_w * self.layers / (die_area_cm2 * self.layers**0.5)

    # ------------------------------------------------------------------
    # Roadmap helpers (experiment E11)
    # ------------------------------------------------------------------
    @staticmethod
    def roadmap_max_capacity() -> List[dict]:
        """Max per-stack capacity of each roadmap generation."""
        return [
            {
                "generation": gen.name,
                "layers": gen.max_layers,
                "capacity_bytes": gen.max_stack_capacity(),
                "bandwidth_per_stack": gen.bandwidth_per_stack,
            }
            for gen in HBM_ROADMAP
        ]

    @staticmethod
    def stacks_needed(model_bytes: int, generation: HBMGeneration) -> int:
        """Stacks required to hold ``model_bytes`` in one generation."""
        if model_bytes <= 0:
            raise ValueError("model size must be positive")
        return math.ceil(model_bytes / generation.max_stack_capacity())
