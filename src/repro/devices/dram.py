"""DRAM device model: refresh-bound volatile memory.

DRAM's defining housekeeping cost is refresh: every row must be rewritten
once per retention interval (64 ms at normal temperature, halved at high
temperature) whether or not the data is ever used again.  The paper's
Section 3 argues this is a retention/lifetime mismatch — retention is too
*short* for the data, so the device burns write-path energy forever.

:class:`DRAMDevice` extends the base accounting with:

- refresh-energy accrual (inherited) plus a *refresh bandwidth tax*: the
  fraction of device time spent refreshing instead of serving accesses;
- temperature-dependent refresh interval doubling/halving;
- self-refresh (idle) power accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.base import MemoryDevice, TechnologyProfile
from repro.devices.catalog import DDR5
from repro.units import GiB


class DRAMDevice(MemoryDevice):
    """A DRAM device (DDR-class) with refresh modeling.

    Parameters
    ----------
    profile:
        A volatile profile (must have ``refresh_interval_s``).
    capacity_bytes:
        Device capacity.
    temperature_c:
        Operating temperature.  Above ``high_temp_threshold_c`` the
        refresh interval halves (2x refresh rate), as JEDEC mandates.
    """

    HIGH_TEMP_THRESHOLD_C = 85.0
    #: Fraction of a refresh interval the device is busy refreshing
    #: (tRFC * number of refresh commands / tREFI), typical for modern
    #: high-density dies.
    REFRESH_TIME_OVERHEAD = 0.035

    def __init__(
        self,
        profile: Optional[TechnologyProfile] = None,
        capacity_bytes: int = 16 * GiB,
        temperature_c: float = 55.0,
        name: str = "",
    ) -> None:
        profile = profile or DDR5
        if not profile.volatile:
            raise ValueError(
                f"DRAMDevice requires a volatile profile, got {profile.name!r}"
            )
        super().__init__(profile, capacity_bytes, name=name)
        self.temperature_c = temperature_c

    @property
    def effective_refresh_interval_s(self) -> float:
        """Refresh interval after temperature derating."""
        base = self.profile.refresh_interval_s
        if self.temperature_c > self.HIGH_TEMP_THRESHOLD_C:
            return base / 2.0
        return base

    def refresh_bandwidth_tax(self) -> float:
        """Fraction of device time unavailable due to refresh.

        Doubles with refresh rate at high temperature.
        """
        scale = self.profile.refresh_interval_s / self.effective_refresh_interval_s
        return min(1.0, self.REFRESH_TIME_OVERHEAD * scale)

    def accrue_refresh_energy(self, duration_s: float, occupancy: float = 1.0) -> float:
        """Refresh energy for ``duration_s``, honoring temperature derating.

        Note: unlike storage devices, DRAM must refresh *all* rows, not
        just occupied ones — the device has no notion of valid data.  The
        ``occupancy`` argument therefore defaults to 1.0 and only exists
        so experiments can model hypothetical occupancy-aware refresh.
        """
        if not 0.0 <= occupancy <= 1.0:
            raise ValueError(f"occupancy {occupancy} outside [0, 1]")
        if duration_s < 0:
            raise ValueError("duration must be >= 0")
        intervals = duration_s / self.effective_refresh_interval_s
        refreshed_bytes = self.capacity_bytes * occupancy * intervals
        energy = refreshed_bytes * self.profile.write_energy_j_per_byte
        c = self.counters
        c.refreshes += int(intervals)
        c.bytes_refreshed += int(refreshed_bytes)
        c.refresh_energy_j += energy
        return energy

    def refresh_power_w(self, occupancy: float = 1.0) -> float:
        """Steady-state refresh power draw in watts."""
        per_interval = (
            self.capacity_bytes * occupancy * self.profile.write_energy_j_per_byte
        )
        return per_interval / self.effective_refresh_interval_s
