"""NAND Flash device with a real page-mapped Flash Translation Layer.

Flash's defining housekeeping cost is the FTL: because cells cannot be
rewritten in place (erase-before-write at multi-MiB block granularity),
the device maintains a logical-to-physical page map, garbage-collects
partially-invalid blocks (copying still-valid pages = write
amplification), and wear-levels so hot logical addresses do not burn out
single physical blocks.  Section 3 of the paper calls this the mirror
image of DRAM's problem: retention is too *long* for the data, and the
price is endurance plus energy-hungry write-path housekeeping.

The FTL here is a standard page-mapped design:

- out-of-place writes to the current *open block*;
- greedy garbage collection (pick the block with fewest valid pages)
  triggered when free blocks fall below a low-watermark;
- dynamic wear-leveling via free-block allocation ordered by erase count;
- TRIM support so the host can invalidate dead data (the MRM comparison
  point: matched retention makes data *expire* instead).

Experiments E6 (housekeeping) and E12 (Flash inadequacy) run on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.devices.base import MemoryDevice, TechnologyProfile
from repro.devices.catalog import NAND_SLC
from repro.units import GiB


@dataclass
class _PhysicalBlock:
    """One erase block: a fixed array of physical pages."""

    index: int
    pages: int
    erase_count: int = 0
    write_pointer: int = 0  # next free page within the block
    valid: Set[int] = field(default_factory=set)  # page offsets holding live data

    @property
    def is_full(self) -> bool:
        return self.write_pointer >= self.pages

    @property
    def valid_count(self) -> int:
        return len(self.valid)


class FlashTranslationLayer:
    """Page-mapped FTL over an array of erase blocks.

    Exposes logical-page write/invalidate and runs GC internally.
    All sizes are in pages; the owning :class:`FlashDevice` converts
    bytes to pages.

    Parameters
    ----------
    num_blocks:
        Physical erase blocks, including over-provisioned ones.
    pages_per_block:
        Pages per erase block.
    overprovision:
        Fraction of physical capacity hidden from the logical space
        (industry-typical 7-28%).  More OP means lower write amplification.
    gc_low_watermark:
        GC starts when free blocks drop to this count.
    """

    def __init__(
        self,
        num_blocks: int,
        pages_per_block: int,
        overprovision: float = 0.07,
        gc_low_watermark: int = 2,
    ) -> None:
        if num_blocks < 4:
            raise ValueError("FTL needs at least 4 blocks")
        if not 0.0 <= overprovision < 0.9:
            raise ValueError(f"overprovision {overprovision} unreasonable")
        self.num_blocks = num_blocks
        self.pages_per_block = pages_per_block
        self.gc_low_watermark = max(1, gc_low_watermark)
        self.blocks = [_PhysicalBlock(i, pages_per_block) for i in range(num_blocks)]
        logical_blocks = int(num_blocks * (1.0 - overprovision))
        self.logical_pages = max(1, logical_blocks * pages_per_block)
        # logical page -> (block index, page offset)
        self.mapping: Dict[int, tuple] = {}
        self._free: List[int] = list(range(num_blocks))  # block indices, wear-ordered
        self._open: Optional[_PhysicalBlock] = None
        # GC relocations get their own destination block so host writes
        # and GC copies never contend for the same write pointer (and GC
        # cannot deadlock waiting on the block it is about to free).
        self._gc_open: Optional[_PhysicalBlock] = None
        # Statistics
        self.host_pages_written = 0
        self.flash_pages_written = 0
        self.gc_pages_copied = 0
        self.erases = 0

    # ------------------------------------------------------------------
    # Allocation / wear-leveling
    # ------------------------------------------------------------------
    def _take_free_block(self) -> _PhysicalBlock:
        if not self._free:
            raise RuntimeError("FTL out of free blocks (GC failed to reclaim)")
        # Dynamic wear-leveling: always open the least-erased free block.
        self._free.sort(key=lambda i: self.blocks[i].erase_count)
        return self.blocks[self._free.pop(0)]

    def _open_block(self) -> _PhysicalBlock:
        if self._open is None or self._open.is_full:
            if self._open is not None and self._open.is_full:
                self._open = None
            self._maybe_gc()
            self._open = self._take_free_block()
        return self._open

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def write(self, logical_page: int) -> None:
        """Host write of one logical page (out-of-place)."""
        self._check_lpn(logical_page)
        self._invalidate(logical_page)
        block = self._open_block()
        offset = block.write_pointer
        block.write_pointer += 1
        block.valid.add(offset)
        self.mapping[logical_page] = (block.index, offset)
        self.host_pages_written += 1
        self.flash_pages_written += 1

    def trim(self, logical_page: int) -> None:
        """Host declares the page dead (no copy needed at GC time)."""
        self._check_lpn(logical_page)
        self._invalidate(logical_page)
        self.mapping.pop(logical_page, None)

    def is_mapped(self, logical_page: int) -> bool:
        return logical_page in self.mapping

    def _check_lpn(self, logical_page: int) -> None:
        if not 0 <= logical_page < self.logical_pages:
            raise ValueError(
                f"logical page {logical_page} outside [0, {self.logical_pages})"
            )

    def _invalidate(self, logical_page: int) -> None:
        old = self.mapping.get(logical_page)
        if old is not None:
            block_index, offset = old
            self.blocks[block_index].valid.discard(offset)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def _maybe_gc(self) -> None:
        while len(self._free) < self.gc_low_watermark:
            if not self._gc_once():
                break

    def _gc_once(self) -> bool:
        """Greedy GC: reclaim the closed block with fewest valid pages."""
        victim = self._pick_victim()
        if victim is None:
            return False
        if victim.valid:
            self._relocate_valid(victim)
        victim.valid.clear()
        victim.write_pointer = 0
        victim.erase_count += 1
        self.erases += 1
        self._free.append(victim.index)
        return True

    def _pick_victim(self) -> Optional[_PhysicalBlock]:
        candidates = [
            b
            for b in self.blocks
            if b.is_full
            and b is not self._open
            and b is not self._gc_open
            and b.index not in self._free
        ]
        if not candidates:
            return None
        victim = min(candidates, key=lambda b: b.valid_count)
        if victim.valid_count >= self.pages_per_block:
            return None  # nothing reclaimable: every page still valid
        return victim

    def _gc_destination(self) -> _PhysicalBlock:
        if self._gc_open is None or self._gc_open.is_full:
            if not self._free:
                raise RuntimeError(
                    "FTL wedged: GC needs a destination but no block is free"
                )
            self._free.sort(key=lambda i: self.blocks[i].erase_count)
            self._gc_open = self.blocks[self._free.pop(0)]
        return self._gc_open

    def _relocate_valid(self, victim: _PhysicalBlock) -> None:
        # Reverse map lookup: which logical pages live on the victim.
        # A mapping entry whose page was already invalidated (an
        # in-flight overwrite invalidates before it lands) must NOT be
        # relocated — only still-valid pages move.
        to_move = [
            lpn
            for lpn, (blk, off) in self.mapping.items()
            if blk == victim.index and off in victim.valid
        ]
        for lpn in to_move:
            dest = self._gc_destination()
            offset = dest.write_pointer
            dest.write_pointer += 1
            dest.valid.add(offset)
            self.mapping[lpn] = (dest.index, offset)
            self.flash_pages_written += 1
            self.gc_pages_copied += 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def write_amplification(self) -> float:
        """Flash writes per host write (>= 1.0)."""
        if self.host_pages_written == 0:
            return 1.0
        return self.flash_pages_written / self.host_pages_written

    def max_erase_count(self) -> int:
        return max(b.erase_count for b in self.blocks)

    def mean_erase_count(self) -> float:
        return sum(b.erase_count for b in self.blocks) / len(self.blocks)


class FlashDevice(MemoryDevice):
    """A NAND Flash device (SSD-like) fronted by the page-mapped FTL.

    ``write`` goes through the FTL, so host writes incur write
    amplification in both wear and energy; ``read`` resolves the mapping.
    ``trim`` lets the host drop dead data.
    """

    def __init__(
        self,
        profile: Optional[TechnologyProfile] = None,
        capacity_bytes: int = 1 * GiB,
        overprovision: float = 0.07,
        name: str = "",
    ) -> None:
        profile = profile or NAND_SLC
        if profile.erase_block_bytes is None:
            raise ValueError(f"{profile.name} has no erase block size; not Flash")
        super().__init__(
            profile,
            capacity_bytes,
            wear_block_bytes=profile.erase_block_bytes,
            name=name,
        )
        self.page_bytes = profile.access_granularity_bytes
        pages_per_block = profile.erase_block_bytes // self.page_bytes
        num_blocks = max(4, capacity_bytes // profile.erase_block_bytes)
        self.ftl = FlashTranslationLayer(
            num_blocks=num_blocks,
            pages_per_block=pages_per_block,
            overprovision=overprovision,
        )

    @property
    def logical_capacity_bytes(self) -> int:
        return self.ftl.logical_pages * self.page_bytes

    def _logical_pages_of(self, address: int, size_bytes: int) -> range:
        first = address // self.page_bytes
        last = (address + size_bytes - 1) // self.page_bytes
        return range(first, last + 1)

    def read(self, address: int, size_bytes: int):
        if address + size_bytes > self.logical_capacity_bytes:
            raise ValueError(
                f"{self.name}: read beyond logical capacity "
                f"{self.logical_capacity_bytes}"
            )
        return super().read(address, size_bytes)

    def write(self, address: int, size_bytes: int):
        """Host write: routed through the FTL page by page.

        Energy and wear are charged for *physical* flash writes, i.e.
        including GC copies — that is the write-amplification cost the
        paper's housekeeping argument is about.
        """
        if address < 0 or size_bytes <= 0:
            raise ValueError(f"bad access: address={address} size={size_bytes}")
        if address + size_bytes > self.logical_capacity_bytes:
            raise ValueError(
                f"{self.name}: write beyond logical capacity "
                f"{self.logical_capacity_bytes}"
            )
        flash_before = self.ftl.flash_pages_written
        for lpn in self._logical_pages_of(address, size_bytes):
            self.ftl.write(lpn)
        physical_pages = self.ftl.flash_pages_written - flash_before
        physical_bytes = physical_pages * self.page_bytes

        latency = self._write_time(physical_bytes)
        energy = physical_bytes * self.profile.write_energy_j_per_byte
        c = self.counters
        c.writes += 1
        c.bytes_written += physical_bytes
        c.write_energy_j += energy
        c.erases = self.ftl.erases
        from repro.devices.base import AccessKind, AccessResult

        return AccessResult(AccessKind.WRITE, address, size_bytes, latency, energy)

    def trim(self, address: int, size_bytes: int) -> None:
        """Invalidate a logical range (host knows the data is dead)."""
        for lpn in self._logical_pages_of(address, size_bytes):
            if self.ftl.is_mapped(lpn):
                self.ftl.trim(lpn)

    def write_amplification(self) -> float:
        return self.ftl.write_amplification()

    def lifetime_host_writes_bytes(self) -> float:
        """Total host bytes writable before rated wearout, given current
        write amplification (TBW-style figure)."""
        wa = self.write_amplification()
        return (
            self.capacity_bytes
            * self.profile.endurance_cycles
            / wa
        )
