"""Resistive RAM (RRAM / ReRAM) device model.

RRAM switches a conductive filament in a metal oxide (commonly HfOx).
The properties the paper leans on:

- the endurance/retention/window trade-off is explicit and well studied
  [15, 23, 34]: stronger SET/RESET pulses widen the resistance window
  (longer retention) but damage the filament (lower endurance);
- transistor-less crossbar layouts [56] enable very high density, at the
  cost of sneak currents (modeled as a read-energy tax growing with the
  crossbar size);
- shipped devices (Weebit [32]) are embedded-class with 1e5-cycle
  endurance, while cells have demonstrated 1e10+ [25].
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.devices.base import TechnologyProfile
from repro.devices.catalog import RRAM_WEEBIT
from repro.devices.resistive import ResistiveDevice
from repro.units import GiB


class RRAMDevice(ResistiveDevice):
    """An RRAM device, optionally in a crossbar organization."""

    def __init__(
        self,
        profile: Optional[TechnologyProfile] = None,
        capacity_bytes: int = 1 * GiB,
        bits_per_cell: int = 1,
        crossbar_rows: int = 0,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        super().__init__(
            profile or RRAM_WEEBIT,
            capacity_bytes,
            pulse_success_probability=0.85,  # filament formation is noisy
            max_pulses=16,  # filament-forming retry bound [15, 34]
            bits_per_cell=bits_per_cell,
            rng=rng,
            name=name,
        )
        if crossbar_rows < 0:
            raise ValueError("crossbar_rows must be >= 0")
        self.crossbar_rows = crossbar_rows

    def sneak_current_tax(self) -> float:
        """Read-energy multiplier from crossbar sneak paths.

        Grows with the log of the array dimension; 1.0 for a 1T1R array
        (``crossbar_rows == 0``).  Calibrated so a 1K x 1K crossbar costs
        ~2x the 1T1R read energy — the order reported by crossbar design
        studies [56].
        """
        if self.crossbar_rows == 0:
            return 1.0
        return 1.0 + 0.1 * math.log2(self.crossbar_rows)

    def _read_energy(self, size_bytes: int) -> float:
        return super()._read_energy(size_bytes) * self.sneak_current_tax()

    def crossbar_density_multiplier(self) -> float:
        """Areal density gain of crossbar (4F^2) over 1T1R (~12F^2)."""
        if self.crossbar_rows == 0:
            return 1.0
        return 3.0 * self.bits_per_cell
