"""Memory-technology device models.

This package is the substrate the paper's analysis runs on: parameterized
models of every memory/storage technology the paper compares —

- volatile: DRAM (:mod:`~repro.devices.dram`), 3D-stacked HBM
  (:mod:`~repro.devices.hbm`), LPDDR (:mod:`~repro.devices.lpddr`);
- non-volatile storage: NAND/NOR Flash (:mod:`~repro.devices.flash`);
- resistive SCM candidates: PCM (:mod:`~repro.devices.pcm`), RRAM
  (:mod:`~repro.devices.rram`), STT-MRAM (:mod:`~repro.devices.sttmram`).

Each technology has a :class:`~repro.devices.base.TechnologyProfile`
(constants: retention, endurance, latency, bandwidth, energy/bit, cost)
recorded in :mod:`~repro.devices.catalog` with the source of each number,
and a behavioural :class:`~repro.devices.base.MemoryDevice` subclass that
accounts accesses, wear, and energy.

The catalog distinguishes *product* endurance (what shipped devices
deliver) from *technology-potential* endurance (what the cell technology
has demonstrated in the literature) — the distinction Figure 1 of the
paper turns on.
"""

from repro.devices.base import (
    AccessKind,
    AccessResult,
    CellKind,
    MemoryDevice,
    TechnologyProfile,
)
from repro.devices.catalog import (
    PRODUCT_ENDURANCE,
    TECHNOLOGY_POTENTIAL_ENDURANCE,
    all_profiles,
    get_profile,
)
from repro.devices.dram import DRAMDevice
from repro.devices.flash import FlashDevice, FlashTranslationLayer
from repro.devices.hbm import HBMStack
from repro.devices.lpddr import LPDDRDevice
from repro.devices.pcm import PCMDevice
from repro.devices.rram import RRAMDevice
from repro.devices.sttmram import STTMRAMDevice

__all__ = [
    "AccessKind",
    "AccessResult",
    "CellKind",
    "DRAMDevice",
    "FlashDevice",
    "FlashTranslationLayer",
    "HBMStack",
    "LPDDRDevice",
    "MemoryDevice",
    "PCMDevice",
    "PRODUCT_ENDURANCE",
    "RRAMDevice",
    "STTMRAMDevice",
    "TECHNOLOGY_POTENTIAL_ENDURANCE",
    "TechnologyProfile",
    "all_profiles",
    "get_profile",
]
