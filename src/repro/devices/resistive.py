"""Shared behaviour for resistive (SCM-candidate) memory devices.

PCM, RRAM and STT-MRAM share the traits the paper builds MRM from:

- writes are *programmed*, not latched: a program pulse (or several)
  switches cell state, and devices commonly run program-and-verify loops
  to hit a target resistance window;
- write cost (energy, latency) and retention are coupled: a stronger
  program pulse buys a deeper/more stable state and therefore longer
  retention, at the cost of energy, latency and cell wear;
- cells support multi-level encoding (MLC) by targeting intermediate
  windows, trading density for margin.

:class:`ResistiveDevice` models program-verify with a per-pulse success
probability: expected pulses per write follow a geometric distribution,
and each pulse costs energy and wears the cell.  Deterministic by
default (expected values) so simulations are reproducible; a seeded RNG
mode exists for stochastic studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.base import AccessKind, AccessResult, MemoryDevice, TechnologyProfile


class ResistiveDevice(MemoryDevice):
    """A resistive-cell device with program-verify write behaviour.

    Parameters
    ----------
    pulse_success_probability:
        Probability one program pulse lands the cell in its target
        window.  Expected pulses per cell write is ``1/p``.
    max_pulses:
        Verify loop bound; exceeding it is a write failure (counted).
    bits_per_cell:
        MLC level count (1 = SLC).  More bits per cell shrinks the target
        window: success probability is derated by ``mlc_derate`` per
        extra bit.
    rng:
        If given, pulse counts are sampled; otherwise expected values are
        charged (deterministic mode).
    """

    MLC_DERATE_PER_BIT = 0.75

    def __init__(
        self,
        profile: TechnologyProfile,
        capacity_bytes: int,
        pulse_success_probability: float = 0.95,
        max_pulses: int = 8,
        bits_per_cell: int = 1,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        if not 0 < pulse_success_probability <= 1:
            raise ValueError("pulse success probability must be in (0, 1]")
        if bits_per_cell < 1:
            raise ValueError("bits_per_cell must be >= 1")
        if max_pulses < 1:
            raise ValueError("max_pulses must be >= 1")
        super().__init__(profile, capacity_bytes, name=name)
        self.base_pulse_success = pulse_success_probability
        self.max_pulses = max_pulses
        self.bits_per_cell = bits_per_cell
        self.rng = rng
        self.write_failures = 0
        self.total_pulses = 0.0

    @property
    def pulse_success_probability(self) -> float:
        """Per-pulse success after MLC derating."""
        derate = self.MLC_DERATE_PER_BIT ** (self.bits_per_cell - 1)
        return self.base_pulse_success * derate

    def expected_pulses_per_write(self) -> float:
        """Mean pulses of a truncated-geometric verify loop."""
        p = self.pulse_success_probability
        n = self.max_pulses
        q = 1.0 - p
        # E[min(Geometric(p), n)] = (1 - q^n) / p
        return (1.0 - q**n) / p

    def _pulses_for_write(self) -> float:
        if self.rng is None:
            return self.expected_pulses_per_write()
        p = self.pulse_success_probability
        draws = self.rng.geometric(p)
        return float(min(draws, self.max_pulses))

    def write(self, address: int, size_bytes: int) -> AccessResult:
        """Program-verify write: energy/latency scale with pulse count."""
        self._check_range(address, size_bytes)
        pulses = self._pulses_for_write()
        self.total_pulses += pulses
        if self.rng is not None:
            p = self.pulse_success_probability
            if (1.0 - p) ** self.max_pulses > self.rng.random():
                self.write_failures += 1
        latency = (
            self.profile.write_latency_s * pulses
            + size_bytes / self.profile.write_bandwidth
        )
        energy = size_bytes * self.profile.write_energy_j_per_byte * pulses
        c = self.counters
        c.writes += 1
        c.bytes_written += size_bytes
        c.write_energy_j += energy
        self._wear_blocks(address, size_bytes)
        return AccessResult(AccessKind.WRITE, address, size_bytes, latency, energy)

    def mean_pulses(self) -> float:
        """Observed mean pulses per write."""
        if self.counters.writes == 0:
            return 0.0
        return self.total_pulses / self.counters.writes

    def effective_density_multiplier(self) -> float:
        """Density gain from MLC encoding (bits stored per cell)."""
        return float(self.bits_per_cell)
