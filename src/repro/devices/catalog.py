"""Catalog of memory-technology constants, with sources.

Every number the paper's analysis consumes lives here, so experiments are
a function of an auditable table rather than magic constants scattered
through code.  Numbers come from public datasheets, the papers the MRM
paper cites, and widely reported product specs; each profile records its
source.  Absolute values are approximate — the experiments reproduce the
*shape* of the paper's comparisons (orders of magnitude, who wins), which
is robust to datasheet-level uncertainty.

Two views matter for Figure 1:

- :data:`PRODUCT_ENDURANCE` — write endurance of *shipped devices*
  (Intel Optane PCM, Weebit RRAM, Everspin STT-MRAM, NAND Flash, HBM).
- :data:`TECHNOLOGY_POTENTIAL_ENDURANCE` — endurance the *cell
  technology* has demonstrated in the literature (Meena et al. overview,
  Lee et al. HfOx, Sun's memory-hierarchy survey).

The paper's observation is precisely the gap between the two: products
were engineered for 10-year non-volatility and sacrificed endurance;
the cells themselves can do far better when retention is relaxed.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.base import CellKind, FaultRateSpec, TechnologyProfile
from repro.lint.effects.contracts import declared_pure
from repro.units import (
    KiB,
    MiB,
    MILLISECOND,
    MICROSECOND,
    NANOSECOND,
    YEAR,
    pj_per_bit_to_j_per_byte,
)

# A convenient alias: "non-volatile" in datasheets means >= 10 years.
TEN_YEARS = 10 * YEAR

_PROFILES: Dict[str, TechnologyProfile] = {}


def _register(profile: TechnologyProfile) -> TechnologyProfile:
    if profile.name in _PROFILES:
        raise ValueError(f"duplicate profile {profile.name!r}")
    _PROFILES[profile.name] = profile
    return profile


# ---------------------------------------------------------------------------
# DRAM family (volatile, refresh-bound)
# ---------------------------------------------------------------------------
DDR5 = _register(
    TechnologyProfile(
        name="ddr5",
        cell=CellKind.DRAM,
        retention_s=64 * MILLISECOND,
        endurance_cycles=1e16,  # effectively unlimited
        read_latency_s=50 * NANOSECOND,
        write_latency_s=50 * NANOSECOND,
        read_bandwidth=51.2e9,  # one DDR5-6400 channel
        write_bandwidth=51.2e9,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(15.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(15.0),
        refresh_interval_s=64 * MILLISECOND,
        static_power_w_per_gib=0.08,
        byte_addressable=True,
        access_granularity_bytes=64,
        cost_usd_per_gib=3.0,
        density_gbit_per_mm2=0.3,
        source="DDR5-6400 datasheets; ~15 pJ/bit off-package access energy",
    )
)

HBM3E = _register(
    TechnologyProfile(
        name="hbm3e",
        cell=CellKind.DRAM,
        retention_s=32 * MILLISECOND,  # hotter in-package -> faster refresh
        endurance_cycles=1e16,
        read_latency_s=100 * NANOSECOND,
        write_latency_s=100 * NANOSECOND,
        read_bandwidth=1.18e12,  # per 8-high stack (B200 carries 8 stacks -> 8 TB/s)
        write_bandwidth=1.18e12,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(3.9),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(3.9),
        refresh_interval_s=32 * MILLISECOND,
        static_power_w_per_gib=0.10,
        byte_addressable=True,
        access_granularity_bytes=64,
        cost_usd_per_gib=15.0,  # ~3-5x DDR per bit; yield-limited
        density_gbit_per_mm2=0.28,  # per layer; stacking multiplies capacity not area
        source="HBM3e stack specs (1.18 TB/s, 24 GB); B200 8 TB/s / 192 GB [51]",
    )
)

LPDDR5X = _register(
    TechnologyProfile(
        name="lpddr5x",
        cell=CellKind.DRAM,
        retention_s=64 * MILLISECOND,
        endurance_cycles=1e16,
        read_latency_s=60 * NANOSECOND,
        write_latency_s=60 * NANOSECOND,
        read_bandwidth=68.3e9,  # per x64 package at 8533 MT/s
        write_bandwidth=68.3e9,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(6.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(6.0),
        refresh_interval_s=64 * MILLISECOND,
        static_power_w_per_gib=0.04,
        byte_addressable=True,
        access_granularity_bytes=64,
        cost_usd_per_gib=2.5,
        density_gbit_per_mm2=0.35,
        source="LPDDR5X-8533 packages; GB200 LPDDR5 tier [35]",
    )
)

# ---------------------------------------------------------------------------
# Flash family (non-volatile storage)
# ---------------------------------------------------------------------------
NAND_SLC = _register(
    TechnologyProfile(
        name="nand-slc",
        cell=CellKind.NAND_FLASH,
        retention_s=TEN_YEARS,
        endurance_cycles=1e5,
        read_latency_s=25 * MICROSECOND,
        write_latency_s=200 * MICROSECOND,
        read_bandwidth=7.0e9,  # fast NVMe device, sequential
        write_bandwidth=4.0e9,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(60.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(500.0),
        refresh_interval_s=None,
        static_power_w_per_gib=0.005,
        byte_addressable=False,
        access_granularity_bytes=16 * KiB,  # page
        erase_block_bytes=4 * MiB,
        cost_usd_per_gib=0.30,
        density_gbit_per_mm2=1.0,
        source="SLC NAND: 100K P/E cycles [7]; NVMe-class device throughput",
    )
)

NAND_TLC = _register(
    TechnologyProfile(
        name="nand-tlc",
        cell=CellKind.NAND_FLASH,
        retention_s=1 * YEAR,  # retention drops as cells near rated cycles
        endurance_cycles=3e3,
        read_latency_s=60 * MICROSECOND,
        write_latency_s=600 * MICROSECOND,
        read_bandwidth=7.0e9,
        write_bandwidth=2.0e9,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(80.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(700.0),
        refresh_interval_s=None,
        byte_addressable=False,
        access_granularity_bytes=16 * KiB,
        erase_block_bytes=8 * MiB,
        static_power_w_per_gib=0.004,
        cost_usd_per_gib=0.05,
        density_gbit_per_mm2=3.0,
        source="Mainstream 3D TLC NAND: ~3K P/E cycles",
    )
)

NOR_FLASH = _register(
    TechnologyProfile(
        name="nor-flash",
        cell=CellKind.NOR_FLASH,
        retention_s=TEN_YEARS * 2,
        endurance_cycles=1e5,
        read_latency_s=100 * NANOSECOND,
        write_latency_s=10 * MICROSECOND,  # word program
        read_bandwidth=0.4e9,
        write_bandwidth=2.0e6,  # programming is very slow
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(30.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(2000.0),
        refresh_interval_s=None,
        byte_addressable=True,
        access_granularity_bytes=1,
        erase_block_bytes=64 * KiB,
        static_power_w_per_gib=0.002,
        cost_usd_per_gib=2.0,
        density_gbit_per_mm2=0.05,
        source="Embedded NOR datasheets: byte reads, slow sector-erase writes",
    )
)

# ---------------------------------------------------------------------------
# Resistive SCM candidates — products (engineered for 10-year retention)
# ---------------------------------------------------------------------------
PCM_OPTANE = _register(
    TechnologyProfile(
        name="pcm-optane",
        cell=CellKind.PCM,
        retention_s=TEN_YEARS,
        endurance_cycles=1e6,  # Optane DIMM media endurance [5]
        read_latency_s=300 * NANOSECOND,
        write_latency_s=1 * MICROSECOND,
        read_bandwidth=6.8e9,  # per 256 GB DC PMM DIMM, sequential read
        write_bandwidth=2.3e9,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(25.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(250.0),  # RESET melt current
        refresh_interval_s=None,
        byte_addressable=True,
        access_granularity_bytes=256,  # Optane internal 256 B access unit
        static_power_w_per_gib=0.02,
        cost_usd_per_gib=4.0,
        density_gbit_per_mm2=0.55,
        source="Intel Optane DC PMM specs [5, 16]; Lee et al. PCM energy [24]",
    )
)

RRAM_WEEBIT = _register(
    TechnologyProfile(
        name="rram-weebit",
        cell=CellKind.RRAM,
        retention_s=TEN_YEARS,
        endurance_cycles=1e5,  # Weebit embedded ReRAM product spec [32]
        read_latency_s=200 * NANOSECOND,
        write_latency_s=10 * MICROSECOND,  # program-verify loops for 10-y retention
        read_bandwidth=0.5e9,  # embedded-class macro
        write_bandwidth=0.02e9,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(10.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(400.0),
        refresh_interval_s=None,
        byte_addressable=True,
        access_granularity_bytes=32,
        static_power_w_per_gib=0.01,
        cost_usd_per_gib=8.0,
        density_gbit_per_mm2=0.4,
        source="Weebit embedded ReRAM [32]; high-temp retention trades endurance [34]",
    )
)

STTMRAM_EVERSPIN = _register(
    TechnologyProfile(
        name="sttmram-everspin",
        cell=CellKind.STT_MRAM,
        retention_s=TEN_YEARS,
        endurance_cycles=1e10,  # Everspin STT-MRAM rated cycles [39]
        read_latency_s=35 * NANOSECOND,
        write_latency_s=90 * NANOSECOND,
        read_bandwidth=3.2e9,  # xSPI/DDR-class part
        write_bandwidth=1.6e9,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(12.0),
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(150.0),
        refresh_interval_s=None,
        byte_addressable=True,
        access_granularity_bytes=32,
        static_power_w_per_gib=0.01,
        cost_usd_per_gib=100.0,  # MRAM remains low-density/expensive
        density_gbit_per_mm2=0.02,
        source="Everspin 2x nm STT-MRAM arrays [39]",
    )
)

# ---------------------------------------------------------------------------
# Resistive SCM candidates — technology potential (literature demonstrations)
# ---------------------------------------------------------------------------
# Read energy for the potential profiles reflects the paper's Section 3
# claim: "PCM, RRAM, and STT-MRAM have read performance and energy on
# par or better than DRAM or even SRAM [28]" — shipped products pay
# interface/periphery overheads the cell does not.
PCM_POTENTIAL = _register(
    PCM_OPTANE.with_overrides(
        name="pcm-potential",
        endurance_cycles=1e9,  # demonstrated cell endurance [24, 30]
        read_latency_s=50 * NANOSECOND,
        write_latency_s=150 * NANOSECOND,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(5.0),  # [28]
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(60.0),
        read_bandwidth=100e9,
        write_bandwidth=20e9,
        source="PCM cell demonstrations: 1e8-1e9 cycles [24, 30]; read energy [28]",
    )
)

RRAM_POTENTIAL = _register(
    RRAM_WEEBIT.with_overrides(
        name="rram-potential",
        endurance_cycles=1e12,  # HfOx sub-ns switching, high endurance [25, 30]
        read_latency_s=20 * NANOSECOND,
        write_latency_s=50 * NANOSECOND,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(3.0),  # [28]
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(20.0),
        read_bandwidth=200e9,
        write_bandwidth=50e9,
        density_gbit_per_mm2=0.9,  # crossbar, transistor-less [56]
        source="HfOx RRAM demos [25]; crossbar density [56]; read energy [28]",
    )
)

STTMRAM_POTENTIAL = _register(
    STTMRAM_EVERSPIN.with_overrides(
        name="sttmram-potential",
        endurance_cycles=1e15,  # near-unlimited demonstrated [30, 47]
        read_latency_s=5 * NANOSECOND,
        write_latency_s=10 * NANOSECOND,
        read_energy_j_per_byte=pj_per_bit_to_j_per_byte(3.0),  # [28]
        write_energy_j_per_byte=pj_per_bit_to_j_per_byte(30.0),
        read_bandwidth=400e9,
        write_bandwidth=100e9,
        source="STT-MRAM relaxed-retention designs [43, 48]; read energy [28]",
    )
)


# ---------------------------------------------------------------------------
# Fault rates (consumed by repro.faults)
# ---------------------------------------------------------------------------
# Soft-event rates are anchored to the field-study ballpark for DRAM-class
# parts (~25-70 correctable FIT/Mbit, i.e. order 1e-3 events/GiB/hour) and
# scaled by each family's relative error proneness; hard-failure rates are
# the ~2-4% AFR ballpark reported for deployed DIMMs/SSDs.  Like the
# profile numbers above, the absolute values are approximate — the fault
# experiments sweep a rate *multiplier*, so they reproduce shapes (how
# fast availability degrades, whether mitigations help), not field AFRs.
_DRAM_FAULTS = FaultRateSpec(
    retention_violations_per_gib_hour=1e-4,
    bit_error_bursts_per_gib_hour=2e-3,
    bank_failures_per_device_year=0.02,
    device_failures_per_device_year=0.01,
    source="DRAM field studies: Schroeder et al. SIGMETRICS'09 error rates",
)

_FLASH_FAULTS = FaultRateSpec(
    retention_violations_per_gib_hour=5e-4,
    bit_error_bursts_per_gib_hour=5e-3,
    bank_failures_per_device_year=0.04,
    device_failures_per_device_year=0.02,
    source="SSD field studies: Meza et al. SIGMETRICS'15 failure rates",
)

_RESISTIVE_FAULTS = FaultRateSpec(
    retention_violations_per_gib_hour=1e-3,
    bit_error_bursts_per_gib_hour=5e-3,
    bank_failures_per_device_year=0.03,
    device_failures_per_device_year=0.015,
    source="Resistive-memory drift/RTN literature [25, 34]; rates between "
    "DRAM and Flash since managed retention trades margin for cost",
)

#: Per-profile fault rates.  MRM derives from the resistive families, so
#: every resistive profile (product and potential) shares that spec.
FAULT_RATES: Dict[str, FaultRateSpec] = {
    "ddr5": _DRAM_FAULTS,
    "hbm3e": _DRAM_FAULTS,
    "lpddr5x": _DRAM_FAULTS,
    "nand-slc": _FLASH_FAULTS,
    "nand-tlc": _FLASH_FAULTS,
    "nor-flash": _FLASH_FAULTS,
    "pcm-optane": _RESISTIVE_FAULTS,
    "rram-weebit": _RESISTIVE_FAULTS,
    "sttmram-everspin": _RESISTIVE_FAULTS,
    "pcm-potential": _RESISTIVE_FAULTS,
    "rram-potential": _RESISTIVE_FAULTS,
    "sttmram-potential": _RESISTIVE_FAULTS,
}


@declared_pure
def get_fault_rates(name: str) -> FaultRateSpec:
    """Fault rates for a catalog profile.

    Raises ``KeyError`` with the list of valid names on a miss — same
    contract as :func:`get_profile`.
    """
    if name not in _PROFILES:
        raise KeyError(
            f"unknown technology {name!r}; known: {sorted(_PROFILES)}"
        )
    return FAULT_RATES[name]


@declared_pure
def get_profile(name: str) -> TechnologyProfile:
    """Look up a profile by catalog name.

    Raises ``KeyError`` with the list of valid names on a miss.
    """
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology {name!r}; known: {sorted(_PROFILES)}"
        ) from None


@declared_pure
def all_profiles() -> List[TechnologyProfile]:
    """All registered profiles, sorted by name."""
    return [_PROFILES[name] for name in sorted(_PROFILES)]


# ---------------------------------------------------------------------------
# Figure 1 endurance views
# ---------------------------------------------------------------------------
#: Endurance of shipped products (writes per cell). Sources per profile.
PRODUCT_ENDURANCE: Dict[str, float] = {
    "HBM / DRAM": HBM3E.endurance_cycles,
    "NAND Flash (SLC)": NAND_SLC.endurance_cycles,
    "NAND Flash (TLC)": NAND_TLC.endurance_cycles,
    "PCM (Intel Optane)": PCM_OPTANE.endurance_cycles,
    "RRAM (Weebit)": RRAM_WEEBIT.endurance_cycles,
    "STT-MRAM (Everspin)": STTMRAM_EVERSPIN.endurance_cycles,
}

#: Endurance the underlying cell technology has demonstrated [30, 47].
TECHNOLOGY_POTENTIAL_ENDURANCE: Dict[str, float] = {
    "HBM / DRAM": HBM3E.endurance_cycles,
    "NAND Flash": NAND_SLC.endurance_cycles,  # no credible path past ~1e5
    "PCM": PCM_POTENTIAL.endurance_cycles,
    "RRAM": RRAM_POTENTIAL.endurance_cycles,
    "STT-MRAM": STTMRAM_POTENTIAL.endurance_cycles,
}
