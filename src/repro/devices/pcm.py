"""Phase-Change Memory (PCM) device model.

PCM stores state in the amorphous/crystalline phase of a chalcogenide.
Its quirks relative to the other resistive technologies:

- *asymmetric writes*: RESET (melt-quench to amorphous) is a short,
  high-current pulse; SET (crystallize) is a longer, lower-current pulse.
  Write energy is dominated by RESET current — the reason PCM write
  energy is an order of magnitude above its read energy.
- *resistance drift*: the amorphous phase's resistance drifts upward as
  ``R(t) = R0 * (t/t0)^nu``, which erodes MLC read margins over time and
  couples data age to read reliability — exactly the retention-as-a-
  continuum point the paper makes.

Intel Optane / 3D XPoint [16] is the shipped instance (profile
``pcm-optane``); the cell literature [24, 30] supports far higher
endurance (profile ``pcm-potential``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.base import TechnologyProfile
from repro.devices.catalog import PCM_OPTANE
from repro.devices.resistive import ResistiveDevice
from repro.units import GiB


class PCMDevice(ResistiveDevice):
    """A PCM device with drift-aware read-margin modeling."""

    #: Typical amorphous drift exponent (literature: 0.05-0.11).
    DRIFT_EXPONENT = 0.1
    #: Reference time for the drift power law.
    DRIFT_T0_S = 1.0

    def __init__(
        self,
        profile: Optional[TechnologyProfile] = None,
        capacity_bytes: int = 1 * GiB,
        bits_per_cell: int = 1,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        super().__init__(
            profile or PCM_OPTANE,
            capacity_bytes,
            pulse_success_probability=0.9,  # SET/RESET verify yield, Lee et al. [24]
            max_pulses=8,  # iterative program-and-verify bound [24]
            bits_per_cell=bits_per_cell,
            rng=rng,
            name=name,
        )

    def drift_resistance_ratio(self, age_s: float) -> float:
        """Amorphous resistance multiplier after ``age_s`` seconds."""
        if age_s < 0:
            raise ValueError("age must be >= 0")
        if age_s < self.DRIFT_T0_S:
            return 1.0
        return (age_s / self.DRIFT_T0_S) ** self.DRIFT_EXPONENT

    def mlc_read_margin(self, age_s: float) -> float:
        """Remaining fraction of the MLC level window after drift.

        With ``2**bits_per_cell`` levels packed into a fixed log-resistance
        range, drift consumes margin proportionally to the log of the
        resistance ratio.  At 1.0 the window is pristine; at 0.0 levels
        have merged (reads are unreliable).
        """
        levels = 2**self.bits_per_cell
        window = 1.0 / levels
        drift = np.log10(self.drift_resistance_ratio(age_s)) * 0.25
        return float(max(0.0, window - drift) / window)
