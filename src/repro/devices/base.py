"""Base classes shared by every memory-technology model.

Two layers:

1. :class:`TechnologyProfile` — an immutable bundle of per-technology
   constants (retention, endurance, latency, bandwidth, energy, cost).
   The paper's Figure 1 and most of its in-text arithmetic are functions
   of these constants alone.
2. :class:`MemoryDevice` — a behavioural model of one device instance:
   it accounts reads/writes/refreshes, integrates energy, and tracks
   per-block wear so lifetime experiments can detect cell exhaustion.

Addresses are plain byte offsets within the device.  Wear is tracked at
``wear_block_bytes`` granularity (a cell line / page), which is the
granularity endurance is specified at.
"""

from __future__ import annotations

import enum
import math
from repro.lint.effects.contracts import declared_pure
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.units import (
    BITS_PER_BYTE,
    GiB,
    Joules,
    PICOJOULE,
    Ratio,
    Seconds,
    YEAR,
)


class CellKind(enum.Enum):
    """The underlying storage cell family."""

    DRAM = "dram"
    NAND_FLASH = "nand-flash"
    NOR_FLASH = "nor-flash"
    PCM = "pcm"
    RRAM = "rram"
    STT_MRAM = "stt-mram"
    MRM = "mrm"  # the paper's proposed managed-retention cell (resistive)


class AccessKind(enum.Enum):
    """What a device access did (read/write/refresh/erase)."""

    READ = "read"
    WRITE = "write"
    REFRESH = "refresh"
    ERASE = "erase"


@dataclass(frozen=True)
class TechnologyProfile:
    """Constants describing one memory technology or product.

    All units are SI: seconds, bytes, bytes/second, joules.  Datasheet
    energies quoted in pJ/bit should be converted with
    :func:`repro.units.pj_per_bit_to_j_per_byte` when building a profile.

    Attributes
    ----------
    name:
        Catalog key, e.g. ``"hbm3e"`` or ``"pcm-optane"``.
    cell:
        Cell family.
    retention_s:
        Time a cell holds data without refresh.  ``math.inf`` for
        10+-year non-volatile cells (the "effectively forever" regime the
        paper argues against).
    endurance_cycles:
        Write cycles a cell sustains before permanent degradation.
    read_latency_s / write_latency_s:
        Single-access latency at the device interface.
    read_bandwidth / write_bandwidth:
        Sustained device throughput, bytes/second.
    read_energy_j_per_byte / write_energy_j_per_byte:
        Dynamic access energy.
    refresh_interval_s:
        If not ``None``, every cell must be rewritten at least this often
        (DRAM-family).  The device model charges refresh energy.
    static_power_w_per_gib:
        Background power (peripheral circuitry, leakage) per GiB.
    byte_addressable:
        Whether the device supports fine-grained random access.
    access_granularity_bytes:
        Smallest efficient access unit (cache line, Flash page, MRM block).
    erase_block_bytes:
        For Flash-family devices: erase unit size (``None`` otherwise).
    cost_usd_per_gib:
        Acquisition cost, for TCO modeling.
    density_gbit_per_mm2:
        Areal density, for the scaling-wall analysis (E11).
    source:
        Citation for the headline numbers.
    """

    name: str
    cell: CellKind
    retention_s: Seconds
    endurance_cycles: float
    read_latency_s: Seconds
    write_latency_s: Seconds
    read_bandwidth: float
    write_bandwidth: float
    read_energy_j_per_byte: float
    write_energy_j_per_byte: float
    refresh_interval_s: Optional[Seconds] = None
    static_power_w_per_gib: float = 0.0
    byte_addressable: bool = True
    access_granularity_bytes: int = 64  # DDR cache-line burst default
    erase_block_bytes: Optional[int] = None
    cost_usd_per_gib: float = 0.0
    density_gbit_per_mm2: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        if self.retention_s <= 0:
            raise ValueError(f"{self.name}: retention must be positive")
        if self.endurance_cycles <= 0:
            raise ValueError(f"{self.name}: endurance must be positive")
        for attr in ("read_latency_s", "write_latency_s"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: {attr} must be >= 0")
        for attr in ("read_bandwidth", "write_bandwidth"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{self.name}: {attr} must be > 0")
        if self.access_granularity_bytes < 1:
            raise ValueError(f"{self.name}: access granularity must be >= 1 byte")

    @property
    @declared_pure
    def volatile(self) -> bool:
        """True for cells needing periodic refresh to hold data."""
        return self.refresh_interval_s is not None

    @property
    @declared_pure
    def non_volatile(self) -> bool:
        """True for 10+-year retention (the storage-class regime)."""
        return self.retention_s >= 10 * YEAR

    @property
    @declared_pure
    def read_energy_pj_per_bit(self) -> float:
        return self.read_energy_j_per_byte / (PICOJOULE * BITS_PER_BYTE)

    @property
    @declared_pure
    def write_energy_pj_per_bit(self) -> float:
        return self.write_energy_j_per_byte / (PICOJOULE * BITS_PER_BYTE)

    @declared_pure
    def with_overrides(self, **kwargs) -> "TechnologyProfile":
        """A copy of this profile with some fields replaced."""
        return replace(self, **kwargs)


@dataclass
class AccessResult:
    """Outcome of a single device access."""

    kind: AccessKind
    address: int
    size_bytes: int
    latency_s: Seconds
    energy_j: Joules


@dataclass
class DeviceCounters:
    """Aggregate access accounting for one device."""

    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    erases: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_refreshed: int = 0
    read_energy_j: Joules = 0.0
    write_energy_j: Joules = 0.0
    refresh_energy_j: Joules = 0.0
    static_energy_j: Joules = 0.0

    @property
    def total_energy_j(self) -> Joules:
        return (
            self.read_energy_j
            + self.write_energy_j
            + self.refresh_energy_j
            + self.static_energy_j
        )


class EnduranceExceeded(RuntimeError):
    """A cell block was written more times than its endurance allows."""

    def __init__(self, device: str, block: int, cycles: float, endurance: float) -> None:
        super().__init__(
            f"{device}: block {block} reached {cycles:.3g} writes "
            f"(endurance {endurance:.3g})"
        )
        self.device = device
        self.block = block
        self.cycles = cycles
        self.endurance = endurance


class DeviceFault(RuntimeError):
    """Base class for injected hardware failures (see :mod:`repro.faults`)."""


class BankFailure(DeviceFault):
    """A bank/zone of cells became unreadable; its data is lost."""

    def __init__(self, device: str, zone_id: int) -> None:
        super().__init__(f"{device}: zone {zone_id} failed (bank loss)")
        self.device = device
        self.zone_id = zone_id


class DeviceFailure(DeviceFault):
    """The whole device dropped off the fabric."""

    def __init__(self, device: str) -> None:
        super().__init__(f"{device}: device failed")
        self.device = device


@dataclass(frozen=True)
class FaultRateSpec:
    """Failure-event rates for one technology (see :mod:`repro.faults`).

    Rates use the units reliability datasheets use: soft events scale
    with capacity and time (per GiB per hour), hard failures are
    per-device (per year).  Zero everywhere means "never fails" — the
    happy-path model every experiment ran on before the fault framework.

    Attributes
    ----------
    retention_violations_per_gib_hour:
        Early-decay events (missed deadline / thermal excursion).
    bit_error_bursts_per_gib_hour:
        Transient raw-bit-error spikes on reads.
    bank_failures_per_device_year:
        Zone-granularity hard failures.
    device_failures_per_device_year:
        Whole-device losses.
    source:
        Citation for the numbers (RL008 provenance discipline).
    """

    retention_violations_per_gib_hour: float = 0.0
    bit_error_bursts_per_gib_hour: float = 0.0
    bank_failures_per_device_year: float = 0.0
    device_failures_per_device_year: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        for attr in (
            "retention_violations_per_gib_hour",
            "bit_error_bursts_per_gib_hour",
            "bank_failures_per_device_year",
            "device_failures_per_device_year",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")

    def scaled(self, multiplier: float) -> "FaultRateSpec":
        """All rates multiplied by ``multiplier`` (fault-rate sweeps)."""
        if multiplier < 0:
            raise ValueError("multiplier must be >= 0")
        return replace(
            self,
            retention_violations_per_gib_hour=(
                self.retention_violations_per_gib_hour * multiplier
            ),
            bit_error_bursts_per_gib_hour=(
                self.bit_error_bursts_per_gib_hour * multiplier
            ),
            bank_failures_per_device_year=(
                self.bank_failures_per_device_year * multiplier
            ),
            device_failures_per_device_year=(
                self.device_failures_per_device_year * multiplier
            ),
        )


class MemoryDevice:
    """Behavioural model of one memory device instance.

    Subclasses specialise timing/energy (refresh for DRAM, FTL for Flash,
    programmable retention for MRM) but share the accounting implemented
    here.

    Parameters
    ----------
    profile:
        The technology constants.
    capacity_bytes:
        Device capacity.
    wear_block_bytes:
        Granularity at which writes wear cells.  Defaults to the profile's
        access granularity.
    fail_on_wearout:
        If True, a write beyond a block's endurance raises
        :class:`EnduranceExceeded`; if False, it is merely counted
        (``worn_blocks``) so long simulations can keep running.
    """

    def __init__(
        self,
        profile: TechnologyProfile,
        capacity_bytes: int,
        wear_block_bytes: Optional[int] = None,
        fail_on_wearout: bool = False,
        name: str = "",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.profile = profile
        self.capacity_bytes = int(capacity_bytes)
        self.wear_block_bytes = int(wear_block_bytes or profile.access_granularity_bytes)
        if self.wear_block_bytes <= 0:
            raise ValueError("wear block size must be positive")
        self.fail_on_wearout = fail_on_wearout
        self.name = name or profile.name
        self.counters = DeviceCounters()
        self._wear: Dict[int, int] = {}
        self._worn_blocks = 0

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def num_wear_blocks(self) -> int:
        return math.ceil(self.capacity_bytes / self.wear_block_bytes)

    def _check_range(self, address: int, size_bytes: int) -> None:
        if address < 0 or size_bytes <= 0:
            raise ValueError(f"bad access: address={address} size={size_bytes}")
        if address + size_bytes > self.capacity_bytes:
            raise ValueError(
                f"{self.name}: access [{address}, {address + size_bytes}) "
                f"exceeds capacity {self.capacity_bytes}"
            )

    def _blocks_spanned(self, address: int, size_bytes: int) -> range:
        first = address // self.wear_block_bytes
        last = (address + size_bytes - 1) // self.wear_block_bytes
        return range(first, last + 1)

    # ------------------------------------------------------------------
    # Timing/energy hooks (subclasses may override)
    # ------------------------------------------------------------------
    def _read_time(self, size_bytes: int) -> Seconds:
        return self.profile.read_latency_s + size_bytes / self.profile.read_bandwidth

    def _write_time(self, size_bytes: int) -> Seconds:
        return self.profile.write_latency_s + size_bytes / self.profile.write_bandwidth

    def _read_energy(self, size_bytes: int) -> Joules:
        return size_bytes * self.profile.read_energy_j_per_byte

    def _write_energy(self, size_bytes: int) -> Joules:
        return size_bytes * self.profile.write_energy_j_per_byte

    # ------------------------------------------------------------------
    # The access API
    # ------------------------------------------------------------------
    def read(self, address: int, size_bytes: int) -> AccessResult:
        """Account a read of ``size_bytes`` at ``address``."""
        self._check_range(address, size_bytes)
        latency = self._read_time(size_bytes)
        energy = self._read_energy(size_bytes)
        c = self.counters
        c.reads += 1
        c.bytes_read += size_bytes
        c.read_energy_j += energy
        return AccessResult(AccessKind.READ, address, size_bytes, latency, energy)

    def write(self, address: int, size_bytes: int) -> AccessResult:
        """Account a write; wears every block the range touches."""
        self._check_range(address, size_bytes)
        latency = self._write_time(size_bytes)
        energy = self._write_energy(size_bytes)
        c = self.counters
        c.writes += 1
        c.bytes_written += size_bytes
        c.write_energy_j += energy
        self._wear_blocks(address, size_bytes)
        return AccessResult(AccessKind.WRITE, address, size_bytes, latency, energy)

    def _wear_blocks(self, address: int, size_bytes: int) -> None:
        endurance = self.profile.endurance_cycles
        for block in self._blocks_spanned(address, size_bytes):
            cycles = self._wear.get(block, 0) + 1
            self._wear[block] = cycles
            if cycles == int(endurance) + 1:
                self._worn_blocks += 1
                if self.fail_on_wearout:
                    raise EnduranceExceeded(self.name, block, cycles, endurance)

    # ------------------------------------------------------------------
    # Wear inspection
    # ------------------------------------------------------------------
    def wear_of(self, block: int) -> int:
        """Write cycles consumed by a wear block."""
        return self._wear.get(block, 0)

    @property
    def worn_blocks(self) -> int:
        """Blocks written beyond the profile endurance."""
        return self._worn_blocks

    @property
    def max_wear(self) -> int:
        return max(self._wear.values()) if self._wear else 0

    @property
    def mean_wear(self) -> float:
        """Average cycles over *all* blocks (untouched blocks count as 0)."""
        if not self._wear:
            return 0.0
        return sum(self._wear.values()) / self.num_wear_blocks

    def wear_imbalance(self) -> float:
        """max/mean wear ratio — 1.0 is perfectly level, large is skewed."""
        mean = self.mean_wear
        if mean == 0:
            return 1.0
        return self.max_wear / mean

    def remaining_lifetime_fraction(self) -> Ratio:
        """Fraction of endurance left on the most-worn block."""
        return max(0.0, 1.0 - self.max_wear / self.profile.endurance_cycles)

    # ------------------------------------------------------------------
    # Background costs
    # ------------------------------------------------------------------
    def accrue_static_energy(self, duration_s: Seconds) -> Joules:
        """Charge static (leakage/peripheral) power for ``duration_s``."""
        if duration_s < 0:
            raise ValueError("duration must be >= 0")
        energy = (
            self.profile.static_power_w_per_gib
            * (self.capacity_bytes / GiB)
            * duration_s
        )
        self.counters.static_energy_j += energy
        return energy

    def accrue_refresh_energy(self, duration_s: Seconds, occupancy: Ratio = 1.0) -> Joules:
        """Charge refresh energy for ``duration_s`` of wall time.

        Volatile devices must rewrite every occupied cell once per
        refresh interval; the energy is the write energy of the occupied
        capacity once per interval.  Non-volatile profiles charge zero —
        this asymmetry is the heart of experiment E3.
        """
        if not self.profile.volatile:
            return 0.0
        if not 0.0 <= occupancy <= 1.0:
            raise ValueError(f"occupancy {occupancy} outside [0, 1]")
        intervals = duration_s / self.profile.refresh_interval_s
        refreshed_bytes = self.capacity_bytes * occupancy * intervals
        energy = refreshed_bytes * self.profile.write_energy_j_per_byte
        c = self.counters
        c.refreshes += int(intervals)
        c.bytes_refreshed += int(refreshed_bytes)
        c.refresh_energy_j += energy
        return energy

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.name} "
            f"{self.capacity_bytes / GiB:.1f} GiB>"
        )
