"""LPDDR model: the low-power, lower-bandwidth DRAM tier.

LPDDR appears in the paper as the "slower tier" (GB200 integrates an
LPDDR5 controller for a higher-capacity, lower-bandwidth tier [35]) and
as the strawman the paper rejects in Section 3: pairing HBM with LPDDR
cuts cost but also cuts the bandwidth at which the data is available and
does nothing for HBM's read energy.

The model is a :class:`~repro.devices.dram.DRAMDevice` with the LPDDR5X
profile plus deep-sleep (self-refresh) state modeling, which is the
feature LPDDR actually adds over DDR.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.base import TechnologyProfile
from repro.devices.catalog import LPDDR5X
from repro.devices.dram import DRAMDevice
from repro.units import GiB


class LPDDRDevice(DRAMDevice):
    """An LPDDR package with self-refresh power states.

    States: ``active`` (normal), ``self-refresh`` (retains data at
    reduced power, cannot serve accesses).
    """

    #: Self-refresh consumes roughly this fraction of active refresh power
    #: (on-die refresh with slowed clocks).
    SELF_REFRESH_POWER_FRACTION = 0.25

    def __init__(
        self,
        profile: Optional[TechnologyProfile] = None,
        capacity_bytes: int = 32 * GiB,
        temperature_c: float = 55.0,
        name: str = "",
    ) -> None:
        super().__init__(profile or LPDDR5X, capacity_bytes, temperature_c, name)
        self._self_refresh = False

    @property
    def in_self_refresh(self) -> bool:
        return self._self_refresh

    def enter_self_refresh(self) -> None:
        self._self_refresh = True

    def exit_self_refresh(self) -> None:
        self._self_refresh = False

    def read(self, address: int, size_bytes: int):
        if self._self_refresh:
            raise RuntimeError(f"{self.name}: read while in self-refresh")
        return super().read(address, size_bytes)

    def write(self, address: int, size_bytes: int):
        if self._self_refresh:
            raise RuntimeError(f"{self.name}: write while in self-refresh")
        return super().write(address, size_bytes)

    def accrue_refresh_energy(self, duration_s: float, occupancy: float = 1.0) -> float:
        """Refresh energy; cheaper while parked in self-refresh."""
        energy = super().accrue_refresh_energy(duration_s, occupancy)
        if self._self_refresh:
            discount = energy * (1.0 - self.SELF_REFRESH_POWER_FRACTION)
            self.counters.refresh_energy_j -= discount
            energy -= discount
        return energy
