"""STT-MRAM device model.

Spin-transfer-torque MRAM stores state in the magnetization of a
magnetic tunnel junction (MTJ).  It is the technology where the
retention/write-energy trade-off is cleanest, because both are set by a
single parameter — the thermal stability factor Δ:

- retention: ``t_ret ≈ tau0 * exp(Δ)`` (tau0 ≈ 1 ns attempt period);
- write current must overcome the same barrier, so write energy and
  latency grow roughly linearly with Δ;
- endurance improves as write stress (voltage across the tunnel barrier)
  drops.

The relaxed-retention literature the paper cites [18, 43, 48] builds
exactly this knob; :mod:`repro.core.retention` implements the shared
quantitative model, and this device exposes it per-device.  Writes are
stochastic (write error rate), mitigated by write-verify-retry — modeled
by the :class:`~repro.devices.resistive.ResistiveDevice` pulse loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.base import TechnologyProfile
from repro.devices.catalog import STTMRAM_EVERSPIN
from repro.devices.resistive import ResistiveDevice
from repro.units import GiB


class STTMRAMDevice(ResistiveDevice):
    """An STT-MRAM device with read-disturb accounting.

    Read disturb: a read passes a (small) current through the MTJ, with a
    tiny probability of flipping it.  Relevant because the paper's
    workload is read-dominated at >1000:1 — a technology with meaningful
    read disturb would need scrubbing, which is housekeeping again.
    """

    #: Probability one read disturbs the cell (well-designed read voltage).
    READ_DISTURB_PROBABILITY = 1e-18

    def __init__(
        self,
        profile: Optional[TechnologyProfile] = None,
        capacity_bytes: int = 1 * GiB,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        super().__init__(
            profile or STTMRAM_EVERSPIN,
            capacity_bytes,
            pulse_success_probability=0.98,  # WER ~1e-2 per pulse, verify loop
            max_pulses=4,  # write-error-rate retry bound [39]
            bits_per_cell=1,  # MTJs are binary in shipped parts
            rng=rng,
            name=name,
        )

    def expected_read_disturbs(self, reads_per_cell: float) -> float:
        """Expected disturb events after ``reads_per_cell`` reads."""
        if reads_per_cell < 0:
            raise ValueError("reads_per_cell must be >= 0")
        return reads_per_cell * self.READ_DISTURB_PROBABILITY

    def scrub_interval_for_disturb_budget(
        self, read_rate_per_cell_hz: float, disturb_budget: float = 1e-9
    ) -> float:
        """How often cells would need scrubbing to keep the accumulated
        disturb probability under ``disturb_budget``.

        Returns ``inf`` when no scrubbing is ever needed at this read
        rate (the common case for well-margined MTJs) — supporting the
        paper's choice of read-dominated workloads for these cells.
        """
        if read_rate_per_cell_hz <= 0:
            return float("inf")
        disturb_rate = read_rate_per_cell_hz * self.READ_DISTURB_PROBABILITY
        if disturb_rate <= 0:
            return float("inf")
        return disturb_budget / disturb_rate
